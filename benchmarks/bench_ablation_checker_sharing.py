"""Experiment E7 (ablation) -- shared checker versus one checker per invariance.

Section IV-4 of the paper: "Alternatively, we can employ a single comparator
and switch it to check invariances sequentially.  This choice reduces the area
overhead at the expense of test time."  The ablation quantifies that trade-off
with the area and test-time models and verifies that the *coverage* is
unaffected by the choice (the same invariant signals are checked either way),
which is what makes it a pure area/time trade.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import (CheckingMode, TestTimeModel, area_overhead,
                        format_table)
from repro.defects import DefectCampaign, SamplingPlan

SEED = 20200309
N_SAMPLES = 60


def _coverage(deltas, mode):
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas, mode=mode,
                              stop_on_detection=True)
    result = campaign.run(SamplingPlan(exhaustive=False, n_samples=N_SAMPLES),
                          rng=np.random.default_rng(SEED))
    return result.overall_report().coverage.value


def test_checker_sharing_tradeoff(benchmark, adc, deltas):
    """Quantify the sequential-vs-parallel checker trade-off."""
    model = TestTimeModel()
    sequential_coverage = benchmark.pedantic(
        _coverage, args=(deltas, CheckingMode.SEQUENTIAL), rounds=1,
        iterations=1)
    parallel_coverage = _coverage(deltas, CheckingMode.PARALLEL)

    rows = []
    for label, mode, coverage in (
            ("sequential (1 shared checker)", CheckingMode.SEQUENTIAL,
             sequential_coverage),
            ("parallel (6 checkers)", CheckingMode.PARALLEL,
             parallel_coverage)):
        area = area_overhead(adc, mode=mode)
        rows.append([label,
                     f"{model.test_time(mode) * 1e6:.2f}",
                     f"{area.overhead_percent:.2f}%",
                     f"{100 * coverage:.1f}%"])
    print()
    print(format_table(
        ["checker configuration", "test time (us)", "area overhead",
         f"L-W coverage ({N_SAMPLES} LWRS samples)"],
        rows, title="Ablation -- checker sharing: area versus test time "
                    "(Section IV-4)"))

    # The trade-off of the paper: sharing costs test time, saves area ...
    assert model.test_time(CheckingMode.SEQUENTIAL) == pytest.approx(
        6 * model.test_time(CheckingMode.PARALLEL))
    assert area_overhead(adc, mode=CheckingMode.PARALLEL).overhead_percent > \
        area_overhead(adc, mode=CheckingMode.SEQUENTIAL).overhead_percent
    # ... while detection capability is unchanged.
    assert sequential_coverage == pytest.approx(parallel_coverage)
