"""Experiment E4 -- Section IV-4: SymBIST area overhead.

The paper estimates the area overhead of the SymBIST infrastructure (5-bit
counter, window comparator(s), non-intrusive switches and buffers) at less
than 5 % of the IP.  The benchmark reproduces that estimate from the area
model for both checker-sharing strategies and prints the infrastructure
breakdown.
"""

from __future__ import annotations

import pytest

from repro.core import CheckingMode, area_overhead, format_table
from repro.digital import digital_ip_gate_count


def test_area_overhead(benchmark, adc):
    """Regenerate the < 5 % area-overhead estimate."""
    digital_gates = digital_ip_gate_count()
    sequential = benchmark.pedantic(
        area_overhead, args=(adc,),
        kwargs={"mode": CheckingMode.SEQUENTIAL, "digital_gates": digital_gates},
        rounds=3, iterations=1)
    parallel = area_overhead(adc, mode=CheckingMode.PARALLEL,
                             digital_gates=digital_gates)

    rows = []
    for label, report in (("sequential (shared checker)", sequential),
                          ("parallel (6 checkers)", parallel)):
        rows.append([label, f"{report.ip_analog_ge:.0f}",
                     f"{report.ip_digital_ge:.0f}",
                     f"{report.bist_total_ge:.0f}",
                     f"{report.overhead_percent:.2f}%"])
    print()
    print(format_table(
        ["configuration", "IP analog area (GE)", "IP digital area (GE)",
         "SymBIST area (GE)", "overhead"],
        rows, title="Section IV-4 -- SymBIST area overhead (paper: < 5 %)"))
    breakdown_rows = [[name, f"{value:.0f}"]
                      for name, value in sequential.bist_breakdown.items()]
    print(format_table(["SymBIST infrastructure item", "area (GE)"],
                       breakdown_rows))

    assert sequential.overhead_percent < 5.0
    assert parallel.overhead_percent < 8.0
    assert parallel.bist_total_ge > sequential.bist_total_ge
