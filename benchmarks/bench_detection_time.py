"""Experiment E6 -- detection dynamics and the cost of defect simulation.

Table I of the paper reports per-block defect-simulation times and explains
that, with stop-on-detection enabled, the campaign cost depends on how many
defects are detected and *when* during the test they are detected (Fig. 5
shows some defects detectable during the whole test, others only in specific
conversion periods).  The benchmark reproduces those dynamics on a sampled
campaign: the distribution of first-detection cycles and the simulation-time
saving of stop-on-detection versus always running the full test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import format_table
from repro.defects import DefectCampaign, SamplingPlan

SEED = 20200309
N_SAMPLES = 70


def _campaign(deltas, stop_on_detection):
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=stop_on_detection)
    return campaign.run(SamplingPlan(exhaustive=False, n_samples=N_SAMPLES),
                        rng=np.random.default_rng(SEED))


def test_detection_time_and_stop_on_detection(benchmark, deltas):
    """Regenerate the stop-on-detection cost model of Section V / Table I."""
    with_stop = benchmark.pedantic(_campaign, args=(deltas, True),
                                   rounds=1, iterations=1)
    without_stop = _campaign(deltas, False)

    detected = [r for r in with_stop.records if r.detected]
    detection_cycles = [r.detection_cycle for r in detected]
    time_with = sum(r.modeled_sim_time for r in with_stop.records)
    time_without = sum(r.modeled_sim_time for r in without_stop.records)

    quartiles = np.percentile(detection_cycles, [25, 50, 75]) if detected else \
        [0, 0, 0]
    rows = [
        ["defects simulated", N_SAMPLES, N_SAMPLES],
        ["defects detected", len(detected),
         sum(1 for r in without_stop.records if r.detected)],
        ["modelled campaign time (s)", f"{time_with:.0f}", f"{time_without:.0f}"],
        ["mean cycles per defect",
         f"{np.mean([r.cycles_run for r in with_stop.records]):.1f}",
         f"{np.mean([r.cycles_run for r in without_stop.records]):.1f}"],
    ]
    print()
    print(format_table(["quantity", "stop-on-detection", "full test"],
                       rows, title="Defect-simulation cost with and without "
                                   "stop-on-detection"))
    print(f"first-detection counter cycle quartiles (detected defects): "
          f"{quartiles[0]:.0f} / {quartiles[1]:.0f} / {quartiles[2]:.0f} "
          f"(32 codes per pass)")
    by_inv = with_stop.detections_by_invariance()
    print("detections per invariance:", by_inv)

    # Stop-on-detection must save simulation time (the point of the option).
    assert time_with < time_without
    # Both campaigns agree on what is detected (the option only changes cost).
    assert [r.detected for r in with_stop.records] == \
        [r.detected for r in without_stop.records]
    # Detection cycles span the test: some defects fire immediately, others
    # only at specific counter codes (Fig. 5 behaviour).
    assert detected
    assert min(detection_cycles) <= 2
    assert max(detection_cycles) >= 8
