"""Experiment E9 (substrate) -- standard digital BIST of the digital blocks.

The paper's test strategy (Fig. 1 / Section IV-3) covers the A/M-S blocks with
SymBIST and assumes the purely digital blocks (SAR control, phase generator,
SAR logic) are covered "with standard digital BIST, i.e. with scan insertion
and ... ATPG".  This benchmark runs that flow on the gate-level models:
random ATPG over the scanned blocks and the LFSR/MISR logic-BIST wrapper, and
reports per-block stuck-at coverage and test time.
"""

from __future__ import annotations

import pytest

from repro.core import format_table
from repro.digital import (LogicBist, build_phase_generator, build_sar_control,
                           build_sar_logic, greedy_atpg, insert_scan,
                           random_atpg)

BLOCK_BUILDERS = (("sar_logic", build_sar_logic),
                  ("sar_control", build_sar_control),
                  ("phase_generator", build_phase_generator))
N_BIST_PATTERNS = 64


def _run_digital_bist():
    results = {}
    for name, builder in BLOCK_BUILDERS:
        netlist = builder()
        chain = insert_scan(netlist)
        atpg = random_atpg(netlist, chain, n_patterns=N_BIST_PATTERNS, seed=7)
        compacted = greedy_atpg(netlist, chain, candidate_patterns=128, seed=7)
        bist = LogicBist(netlist, chain).run(n_patterns=N_BIST_PATTERNS)
        results[name] = (netlist, chain, atpg, compacted, bist)
    return results


def test_digital_bist_coverage(benchmark):
    """Scan + ATPG + logic BIST coverage of the purely digital blocks."""
    results = benchmark.pedantic(_run_digital_bist, rounds=1, iterations=1)

    rows = []
    for name, (netlist, chain, atpg, compacted, bist) in results.items():
        rows.append([name, netlist.n_gates, netlist.n_flops,
                     f"{100 * atpg.coverage:.1f}%",
                     f"{100 * compacted.coverage:.1f}% "
                     f"({compacted.n_patterns} pat.)",
                     f"{100 * bist.fault_coverage:.1f}%",
                     f"{bist.test_time * 1e6:.2f}"])
    print()
    print(format_table(
        ["digital block", "gates", "flops",
         f"random ATPG ({N_BIST_PATTERNS} pat.)", "greedy ATPG",
         f"logic BIST ({N_BIST_PATTERNS} pat.)", "BIST time (us)"],
        rows, title="Standard digital BIST of the purely digital blocks "
                    "(Section II / IV-3)"))

    _, _, atpg_logic, _, bist_logic = results["sar_logic"]
    assert atpg_logic.coverage > 0.9
    assert bist_logic.fault_coverage > 0.85
    _, _, atpg_ctrl, _, bist_ctrl = results["sar_control"]
    assert atpg_ctrl.coverage > 0.5
    assert bist_ctrl.golden_signature != 0
    # Logic BIST signatures are deterministic for a given seed/pattern count.
    again = LogicBist(build_sar_control()).run(n_patterns=N_BIST_PATTERNS)
    assert again.golden_signature == bist_ctrl.golden_signature
