"""Engine scaling -- campaign throughput at workers=1 versus workers=N.

Measures the defect-campaign throughput of the execution engine
(:mod:`repro.engine`) on the serial backend and on sharded process pools
(multiprocess and shared-memory transports), plus the warm-cache replay
rate, compares the one-graph per-block sweep (the block-study shape) against
the historical one-engine-run-per-block loop, checks that compiling the
declarative block-study spec (``build_study``) costs under 1% of running
it, and compares the bytes each pool transport ships per task.  On
multi-core runners the pools should approach linear speedup (the per-defect
simulations are independent, exactly like the per-defect SPICE jobs an
industrial DefectSim farm distributes); on single-CPU runners the
wall-clock scaling cases are skipped but the payload comparison still runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import format_table
from repro.defects import DefectCampaign, SamplingPlan
from repro.engine import (MultiprocessBackend, ResultCache, SerialBackend,
                          SharedMemoryBackend)

BENCHMARK_SEED = 20200309

#: LWRS budget of the benchmark campaign (>=100 defects, like the paper's
#: whole-IP row).
N_DEFECTS = 120

#: Pool width of the parallel case.
N_WORKERS = min(4, os.cpu_count() or 1)


def _run(campaign, backend, cache=None, batch_size=1):
    rng = np.random.default_rng(BENCHMARK_SEED)
    return campaign.run(SamplingPlan(exhaustive=False, n_samples=N_DEFECTS),
                        rng=rng, backend=backend, cache=cache,
                        batch_size=batch_size)


def _coverage_key(result):
    return [(r.defect.defect_id, r.detected, r.detection_cycle)
            for r in result.records]


def test_engine_scaling(benchmark, deltas, tmp_path):
    """Throughput at workers=1 vs workers=N, plus warm-cache replay."""
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)

    serial = benchmark.pedantic(_run, args=(campaign, SerialBackend()),
                                rounds=1, iterations=1)
    rows = [["serial", 1, serial.engine_report.n_executed,
             f"{serial.engine_report.wall_time:.2f}",
             f"{serial.engine_report.tasks_per_second:.1f}"]]

    if N_WORKERS > 1:
        parallel = _run(campaign, MultiprocessBackend(max_workers=N_WORKERS))
        assert _coverage_key(parallel) == _coverage_key(serial)
        rows.append(["multiprocess", N_WORKERS,
                     parallel.engine_report.n_executed,
                     f"{parallel.engine_report.wall_time:.2f}",
                     f"{parallel.engine_report.tasks_per_second:.1f}"])

        shm = _run(campaign, SharedMemoryBackend(max_workers=N_WORKERS))
        assert _coverage_key(shm) == _coverage_key(serial)
        rows.append(["shm", N_WORKERS, shm.engine_report.n_executed,
                     f"{shm.engine_report.wall_time:.2f}",
                     f"{shm.engine_report.tasks_per_second:.1f}"])

    cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
    cold = _run(campaign, SerialBackend(), cache=cache)
    warm = _run(campaign, SerialBackend(), cache=cache)
    assert _coverage_key(warm) == _coverage_key(serial)
    assert warm.engine_report.n_cache_hits == warm.engine_report.n_tasks
    assert warm.engine_report.wall_time < 0.1 * cold.engine_report.wall_time
    rows.append(["serial + warm cache", 1, warm.engine_report.n_executed,
                 f"{warm.engine_report.wall_time:.2f}",
                 f"{warm.engine_report.tasks_per_second:.1f}"])

    print()
    print(format_table(
        ["backend", "workers", "#executed", "wall (s)", "defects/s"],
        rows, title=f"engine scaling ({N_DEFECTS} LWRS defects, whole IP)"))

    if N_WORKERS == 1:
        pytest.skip("single-CPU runner: parallel scaling not measurable")


#: Batch size of the batched-campaign comparison; chosen so the 120-defect
#: benchmark campaign collapses into two tasks.
BATCH_SIZE = 64


def test_batched_campaign_speedup(deltas):
    """batch_size=64 vs batch_size=1 at fixed workers: >=5x, bit-identical.

    Batching amortizes the per-defect hot path: each batch task simulates
    the defect-free golden trace once per stimulus and re-evaluates only
    the pipeline stage a defect is local to (plus the downstream codes
    whose inputs actually changed), where the unbatched path re-runs the
    full staged sweep per defect.  Same backend, same worker count, same
    seeds -- the records must match bit for bit and the batched run must
    be at least 5x faster (the full-resimulation fallback would show up
    here as a flat ratio).
    """
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
    rounds = 2

    def min_wall(batch_size):
        walls = []
        result = None
        for _ in range(rounds):
            result = _run(campaign, SerialBackend(), batch_size=batch_size)
            walls.append(result.engine_report.wall_time)
        return min(walls), result

    unbatched_wall, unbatched = min_wall(1)
    batched_wall, batched = min_wall(BATCH_SIZE)

    assert _coverage_key(batched) == _coverage_key(unbatched)
    speedup = unbatched_wall / batched_wall
    print()
    print(format_table(
        ["batch size", "#tasks", "wall (s)", "defects/s", "speedup"],
        [[1, unbatched.engine_report.n_tasks, f"{unbatched_wall:.2f}",
          f"{N_DEFECTS / unbatched_wall:.1f}", "-"],
         [BATCH_SIZE, batched.engine_report.n_tasks, f"{batched_wall:.2f}",
          f"{N_DEFECTS / batched_wall:.1f}", f"{speedup:.1f}x"]],
        title=f"batched campaign ({N_DEFECTS} LWRS defects, serial, "
              f"min of {rounds} rounds)"))
    assert speedup >= 5.0


#: Per-block sweep shape of the block-study comparison (Table I style).
BLOCK_SAMPLES = 60
BLOCK_EXHAUSTIVE_THRESHOLD = 120


def test_block_study_beats_sequential_per_block_loop(deltas):
    """One-graph per-block sweep vs the historical one-run-per-block loop.

    The sequential loop launches a separate serial engine run per block, so
    a 3-defect block's run cannot overlap a 300-defect block's; the
    block-study shape submits every block's tasks into one graph and keeps
    the pool saturated.  Same defects, same records -- the one-graph pooled
    sweep must finish faster than the summed sequential runs at >=2 workers.
    """
    if N_WORKERS < 2:
        pytest.skip("single-CPU runner: pool utilization not measurable")
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
    blocks = campaign.universe.block_paths()

    # The historical shape: one serial engine run per block (per-block seeds
    # match run_per_block's, so both flows simulate identical defects).
    from repro.defects import block_seed_sequence
    sequential_wall = 0.0
    sequential_key = []
    n_tasks = 0
    for block in blocks:
        size = len(campaign.universe.by_block(block))
        plan = SamplingPlan(exhaustive=size <= BLOCK_EXHAUSTIVE_THRESHOLD,
                            n_samples=BLOCK_SAMPLES)
        rng = np.random.default_rng(
            block_seed_sequence(BENCHMARK_SEED, block))
        result = campaign.run(plan, blocks=[block], rng=rng,
                              backend=SerialBackend())
        sequential_wall += result.engine_report.wall_time
        sequential_key.extend(_coverage_key(result))
        n_tasks += result.n_simulated

    pooled = campaign.run_per_block(
        n_samples_per_block=BLOCK_SAMPLES, seed=BENCHMARK_SEED,
        exhaustive_threshold=BLOCK_EXHAUSTIVE_THRESHOLD,
        backend=MultiprocessBackend(max_workers=N_WORKERS))
    pooled_key = [entry for block in blocks
                  for entry in _coverage_key(pooled[block])]
    report = next(iter(pooled.values())).engine_report

    print()
    print(format_table(
        ["sweep shape", "workers", "#tasks", "wall (s)", "defects/s"],
        [["sequential per-block loop", 1, n_tasks,
          f"{sequential_wall:.2f}", f"{n_tasks / sequential_wall:.1f}"],
         ["block-study (one graph)", N_WORKERS, report.n_tasks,
          f"{report.wall_time:.2f}", f"{report.tasks_per_second:.1f}"]],
        title=f"per-block sweep: one graph vs {len(blocks)} sequential runs"))

    assert pooled_key == sequential_key  # same defects, same records
    assert report.wall_time < sequential_wall


#: Variant corners of the multi-DUT sweep comparison.
SWEEP_VARIANTS = (("nominal", {}),
                  ("vdd-low", {"vdd": 1.08}),
                  ("vdd-high", {"vdd": 1.32}))
SWEEP_SAMPLES = 25
SWEEP_BLOCKS = ("vcm_generator", "rs_latch")


def _sweep_stages():
    from repro.engine import StageSpec
    return (
        StageSpec(stage="calibrate", params={"n_monte_carlo": 8}),
        StageSpec(stage="windows", after=("calibrate",),
                  params={"k": 5.0, "per_block": True}),
        StageSpec(stage="campaign", after=("windows",),
                  params={"samples": SWEEP_SAMPLES,
                          "exhaustive_threshold": 2 * SWEEP_SAMPLES,
                          "blocks": list(SWEEP_BLOCKS)}),
        StageSpec(stage="block-summary", name="summary",
                  after=("windows", "campaign")),
    )


def test_variant_sweep_beats_sequential_single_variant_runs():
    """3-variant DUT sweep in ONE task graph vs three sequential runs.

    The historical way to sweep device corners is three CLI invocations,
    one per device: each pays its own pool spin-up and serializes its own
    calibrate -> windows barrier with the pool mostly idle.  The
    ``[[variants]]`` fan-out submits all three variants' tasks into one
    graph, so one variant's campaign tasks fill the gaps of another's
    barriers.  Same derived seeds, same devices -- per-variant records
    must match bit for bit and the one-graph sweep must finish faster
    than the summed sequential runs at >=2 workers.
    """
    if N_WORKERS < 2:
        pytest.skip("single-CPU runner: pool utilization not measurable")
    from repro.defects import variant_seed
    from repro.engine import StudySpec, VariantSpec, build_study

    def digest(outcome):
        return {block: _coverage_key(outcome.results[block])
                for block in SWEEP_BLOCKS}

    # Three sequential single-variant runs, each with its own pool (what
    # three `repro-campaign run` invocations would do).
    sequential_wall = 0.0
    n_sequential_tasks = 0
    sequential = {}
    for name, dut in SWEEP_VARIANTS:
        spec = StudySpec(name=f"single-{name}",
                         seed=variant_seed(BENCHMARK_SEED, name),
                         stages=_sweep_stages(), dut=dut).validated()
        outcome = build_study(spec).run(
            backend=MultiprocessBackend(max_workers=N_WORKERS))
        assert outcome.ok
        sequential_wall += outcome.report.wall_time
        n_sequential_tasks += outcome.report.n_tasks
        sequential[name] = digest(outcome)

    sweep_spec = StudySpec(
        name="variant-sweep-bench", seed=BENCHMARK_SEED,
        stages=_sweep_stages(),
        variants=tuple(VariantSpec(name=name, dut=dut)
                       for name, dut in SWEEP_VARIANTS)).validated()
    swept = build_study(sweep_spec).run(
        backend=MultiprocessBackend(max_workers=N_WORKERS))
    assert swept.ok

    for name, _ in SWEEP_VARIANTS:
        assert digest(swept.variants[name]) == sequential[name]

    print()
    print(format_table(
        ["sweep shape", "workers", "#tasks", "wall (s)"],
        [[f"{len(SWEEP_VARIANTS)} sequential single-variant runs",
          N_WORKERS, n_sequential_tasks, f"{sequential_wall:.2f}"],
         ["variant sweep (one graph)", N_WORKERS,
          swept.report.n_tasks, f"{swept.report.wall_time:.2f}"]],
        title=f"DUT corner sweep: one graph vs "
              f"{len(SWEEP_VARIANTS)} sequential runs"))

    assert swept.report.wall_time < sequential_wall


def test_spec_compilation_overhead():
    """Declarative studies must compile for free next to running them.

    ``build_study`` resolves the canned block-study spec against the stage
    registry and emits the same ~600-task graph the hand-written builder
    used to: the DUT build, the LWRS selection and the task/spec
    construction dominate, and they are shared with the legacy path (now a
    thin wrapper).  Compiling the spec must stay under 1% of the default
    block study's serial wall-clock -- the composition layer is free, the
    simulations are the cost.
    """
    import time

    from repro.engine import BLOCK_STUDY, build_study
    from repro.engine.pipeline import build_block_study

    def min_wall(builder, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            plan = builder()
            times.append(time.perf_counter() - start)
        return min(times), plan

    spec_wall, plan = min_wall(lambda: build_study(BLOCK_STUDY))
    legacy_wall, _ = min_wall(build_block_study)

    outcome = plan.run(backend=SerialBackend())
    run_wall = outcome.report.wall_time

    print()
    print(format_table(
        ["path", "build (ms)", "run (s)", "overhead vs run"],
        [["build_study(BLOCK_STUDY)", f"{spec_wall * 1e3:.1f}",
          f"{run_wall:.2f}", f"{100.0 * spec_wall / run_wall:.2f}%"],
         ["build_block_study() wrapper", f"{legacy_wall * 1e3:.1f}",
          "-", f"{100.0 * legacy_wall / run_wall:.2f}%"]],
        title=f"spec compilation overhead "
              f"({outcome.report.n_tasks}-task default block study)"))

    assert outcome.ok
    assert spec_wall < 0.01 * run_wall


def test_telemetry_overhead_under_five_percent(deltas):
    """A fully-instrumented run must cost < 5% over an untraced one.

    The telemetry path adds one JSONL trace sink plus the in-process
    metrics registry -- the full ``--trace`` configuration -- to the
    serial benchmark campaign.  Per-event work is a dataclass, a dict and
    one buffered ``write``; against a campaign whose per-task cost is an
    ADC conversion sweep that must stay in the noise.  Min-of-rounds on
    both sides to suppress scheduler jitter.
    """
    import tempfile
    from pathlib import Path

    from repro.engine import JsonlTraceSink, MetricsSink, TelemetryBus

    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
    rounds = 3

    def min_wall(telemetry_factory):
        walls = []
        result = None
        for _ in range(rounds):
            rng = np.random.default_rng(BENCHMARK_SEED)
            telemetry = telemetry_factory()
            result = campaign.run(
                SamplingPlan(exhaustive=False, n_samples=N_DEFECTS),
                rng=rng, backend=SerialBackend(), telemetry=telemetry)
            if telemetry is not None:
                telemetry.close()
            walls.append(result.engine_report.wall_time)
        return min(walls), result

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bench-trace.jsonl"

        def traced_bus():
            return TelemetryBus([JsonlTraceSink(trace_path), MetricsSink()])

        campaign.run(SamplingPlan(exhaustive=False, n_samples=N_DEFECTS),
                     rng=np.random.default_rng(BENCHMARK_SEED),
                     backend=SerialBackend())  # warm-up round
        bare_wall, bare = min_wall(lambda: None)
        traced_wall, traced = min_wall(traced_bus)

    assert _coverage_key(traced) == _coverage_key(bare)
    overhead = 100.0 * (traced_wall - bare_wall) / bare_wall
    print()
    print(format_table(
        ["configuration", "#executed", "wall (s)", "overhead"],
        [["untraced", bare.engine_report.n_executed,
          f"{bare_wall:.3f}", "-"],
         ["--trace + metrics", traced.engine_report.n_executed,
          f"{traced_wall:.3f}", f"{overhead:+.1f}%"]],
        title=f"telemetry overhead ({N_DEFECTS} LWRS defects, "
              f"min of {rounds} rounds)"))
    assert overhead < 5.0


def test_payload_bytes_multiprocess_vs_shm(deltas):
    """Bytes shipped per task: re-pickled context versus shared segment.

    The multiprocess backend re-pickles the work function -- and the
    campaign context it closes over (the behavioral ADC, windows, defect
    universe) -- into every chunk submission; the shared-memory backend
    ships the context once through a segment and submits bare items.  On
    the default campaign the per-task payload must shrink by >=10x.
    """
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
    workers = max(2, N_WORKERS)
    mp_backend = MultiprocessBackend(max_workers=workers,
                                     measure_payload=True)
    shm_backend = SharedMemoryBackend(max_workers=workers,
                                      measure_payload=True)
    mp_result = _run(campaign, mp_backend)
    shm_result = _run(campaign, shm_backend)
    assert _coverage_key(shm_result) == _coverage_key(mp_result)

    mp_payload = mp_backend.last_payload
    shm_payload = shm_backend.last_payload
    rows = [
        ["multiprocess", mp_payload.n_items,
         f"{mp_payload.per_task_bytes:,.0f}", f"{mp_payload.task_bytes:,}",
         f"{mp_payload.context_bytes:,}"],
        ["shm", shm_payload.n_items,
         f"{shm_payload.per_task_bytes:,.0f}", f"{shm_payload.task_bytes:,}",
         f"{shm_payload.context_bytes:,}"],
    ]
    print()
    print(format_table(
        ["backend", "#tasks", "bytes/task", "task bytes total",
         "shared context bytes"],
        rows, title=f"pool payload bytes ({N_DEFECTS} LWRS defects)"))
    ratio = mp_payload.per_task_bytes / shm_payload.per_task_bytes
    print(f"per-task payload ratio (multiprocess / shm): {ratio:.1f}x")
    assert ratio >= 10.0


#: Artifact count of the warehouse-vs-crawl comparison (paper-scale: an
#: exhaustive whole-IP campaign caches ~10^4 per-defect records).
N_WAREHOUSE_ARTIFACTS = 10_000
WAREHOUSE_BLOCKS = ("sc_array", "subdac1", "subdac2", "vcm_generator",
                    "preamplifier", "comparator_latch", "rs_latch",
                    "offset_compensation")


def test_warehouse_query_beats_directory_crawl(tmp_path):
    """Per-block aggregation: SQLite index vs crawling the artifact store.

    Before the warehouse, answering "detections per block" over a cached
    campaign meant opening and JSON-parsing every artifact in the cache
    directory.  The warehouse pays that parse once at indexing time and
    answers the same question with one indexed SQL aggregate; at 10^4
    artifacts the query must be >=10x faster than the crawl (and return
    identical numbers).
    """
    import json
    import sqlite3
    import time

    from repro.warehouse import index_cache, open_warehouse

    rng = np.random.default_rng(BENCHMARK_SEED)
    cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
    for i in range(N_WAREHOUSE_ARTIFACTS):
        block = WAREHOUSE_BLOCKS[int(rng.integers(len(WAREHOUSE_BLOCKS)))]
        spec = {"driver": "symbist-block-defect",
                "defect_id": f"{block}:d{i}:short",
                "windows": {"driver": "symbist-block-windows",
                            "block": block, "seeds": "sha:bench"}}
        cache.put(cache.key_for(spec),
                  {"defect": {"defect_id": f"{block}:d{i}:short"},
                   "detected": bool(rng.integers(2)),
                   "modeled_sim_time": float(rng.uniform(0.5, 4.0)),
                   "wall_time": float(rng.uniform(0.001, 0.01))},
                  task_id=f"block/{block}/{i}/{block}:d{i}:short",
                  spec=spec)

    def crawl():
        """The pre-warehouse answer: parse every artifact, aggregate."""
        totals = {}
        for name in os.listdir(cache.cache_dir):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(cache.cache_dir, name),
                      encoding="utf-8") as handle:
                entry = json.load(handle)
            spec = entry.get("spec") or {}
            if spec.get("driver") != "symbist-block-defect":
                continue
            block = spec["windows"]["block"]
            simulated, detected = totals.get(block, (0, 0))
            totals[block] = (simulated + 1,
                             detected + int(entry["result"]["detected"]))
        return totals

    start = time.perf_counter()
    connection = open_warehouse(str(tmp_path / "wh.sqlite"))
    n_indexed = index_cache(connection, cache.cache_dir)
    index_wall = time.perf_counter() - start
    connection.close()
    assert n_indexed == N_WAREHOUSE_ARTIFACTS

    def query():
        connection = sqlite3.connect(str(tmp_path / "wh.sqlite"))
        rows = connection.execute(
            "SELECT block, SUM(n_simulated), SUM(n_detected) FROM results "
            "WHERE stage_kind = 'campaign' GROUP BY block").fetchall()
        connection.close()
        return {block: (simulated, detected)
                for block, simulated, detected in rows}

    rounds = 3
    crawl_wall = min(_timed(crawl) for _ in range(rounds))
    query_wall = min(_timed(query) for _ in range(rounds))
    assert query() == crawl()  # identical numbers either way

    speedup = crawl_wall / query_wall
    print()
    print(format_table(
        ["path", "wall (ms)", "speedup"],
        [["directory crawl (parse every artifact)",
          f"{crawl_wall * 1e3:.1f}", "-"],
         ["warehouse query (indexed SQL)",
          f"{query_wall * 1e3:.2f}", f"{speedup:.0f}x"],
         [f"one-time indexing of {n_indexed} artifacts",
          f"{index_wall * 1e3:.1f}", "-"]],
        title=f"per-block aggregation over {N_WAREHOUSE_ARTIFACTS} cached "
              f"artifacts"))
    assert speedup >= 10.0


def _timed(fn):
    import time
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


#: Tiny study of the daemon-latency comparison -- small enough that a
#: fully-cached replay is dominated by fixed costs, which is exactly what
#: the persistent service exists to amortize.
DAEMON_STUDY = {
    "name": "daemon-latency", "seed": BENCHMARK_SEED,
    "stages": [
        {"stage": "calibrate", "params": {"n_monte_carlo": 3}},
        {"stage": "windows", "after": ["calibrate"]},
        {"stage": "campaign", "after": ["windows"],
         "params": {"blocks": ["vcm_generator"], "samples": 4,
                    "exhaustive_threshold": 8}},
    ],
}


def test_daemon_warm_submission_beats_cold_cli_process(tmp_path):
    """Warm-cache submission latency: persistent daemon vs cold CLI run.

    The one-shot ``repro-campaign run`` pays a fresh interpreter, the
    numpy import, spec compilation and cache-dir open on every invocation
    even when every task replays from cache.  The ``serve`` daemon pays
    those once and keeps the compiled state, the warm ``ResultCache`` and
    the worker pool resident, so a fully-cached submission over the
    control socket is pure scheduling.  Both paths share one cache
    directory (same ``calibration`` namespace), return the same payload,
    and the daemon submission must be >=5x faster.
    """
    import json
    import subprocess
    import sys
    import time

    from repro.service import CampaignDaemon, client

    spec_path = tmp_path / "daemon-latency.json"
    spec_path.write_text(json.dumps(DAEMON_STUDY), encoding="utf-8")
    state_dir = tmp_path / "svc"
    cache_dir = state_dir / "cache"

    src_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    def cold_run(out_path):
        """One full `repro-campaign run` process against the warm cache."""
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro.engine.cli", "run",
             str(spec_path), "--cache-dir", str(cache_dir), "--quiet",
             "--json", str(out_path)],
            check=True, env=env, stdout=subprocess.DEVNULL)
        return time.perf_counter() - start

    rounds = 3
    with CampaignDaemon(str(state_dir), serial=True) as daemon:
        address = daemon.control_address
        # First submission computes everything and warms the shared cache.
        first = client.submit(address, DAEMON_STUDY, wait=True)
        assert first["state"] == "done"

        warm_wall, warm = min(
            (_timed_value(lambda: client.submit(address, DAEMON_STUDY,
                                                wait=True))
             for _ in range(rounds)), key=lambda pair: pair[0])
        assert warm["state"] == "done"
        assert ", 0 executed, " in warm["result"]["engine"]  # fully cached

        cold_wall = min(cold_run(tmp_path / f"cold-{i}.json")
                        for i in range(rounds))

    with open(tmp_path / f"cold-{rounds - 1}.json",
              encoding="utf-8") as handle:
        cold_payload = json.load(handle)

    def deterministic(payload):
        payload = json.loads(json.dumps(payload))  # deep copy
        payload.pop("engine", None)
        for block in payload.get("blocks", []):
            block.pop("timing", None)
        return payload

    assert deterministic(warm["result"]) == deterministic(cold_payload)

    speedup = cold_wall / warm_wall
    print()
    print(format_table(
        ["submission path", "wall (ms)", "speedup"],
        [["cold `repro-campaign run` process", f"{cold_wall * 1e3:.0f}",
          "-"],
         ["warm daemon submit (control socket)", f"{warm_wall * 1e3:.1f}",
          f"{speedup:.0f}x"]],
        title=f"fully-cached submission latency (min of {rounds} rounds)"))
    assert speedup >= 5.0


def _timed_value(fn):
    import time
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
