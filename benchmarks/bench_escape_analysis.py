"""Experiment E10 (extension) -- functional relevance of SymBIST escapes.

The paper's conclusion points out that "undetected defects should be analysed
carefully and it is also interesting to report the percentage of undetected
defects that result in at least one specification being violated", but leaves
that analysis out of scope.  This benchmark performs it on the behavioral
model: the SymBIST-undetected defects of a sampled campaign are re-simulated
with the functional (specification) test suite, splitting them into benign
escapes and true functional escapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.analysis import analyze_escapes
from repro.core import format_table
from repro.defects import DefectCampaign, SamplingPlan
from repro.functional_test import FunctionalBistBaseline

SEED = 20200309
CAMPAIGN_SAMPLES = 80
MAX_ESCAPES_ANALYZED = 16


def _run(deltas):
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=True)
    result = campaign.run(SamplingPlan(exhaustive=False,
                                       n_samples=CAMPAIGN_SAMPLES),
                          rng=np.random.default_rng(SEED))
    baseline = FunctionalBistBaseline(linearity_span_codes=48,
                                      samples_per_code=4, sine_samples=128)
    analysis = analyze_escapes(result, adc=campaign.adc,
                               injector=campaign.injector, baseline=baseline,
                               max_defects=MAX_ESCAPES_ANALYZED,
                               rng=np.random.default_rng(SEED))
    return result, analysis


def test_escape_analysis(benchmark, deltas):
    """Quantify how many SymBIST escapes actually violate a specification."""
    campaign_result, analysis = benchmark.pedantic(_run, args=(deltas,),
                                                   rounds=1, iterations=1)

    coverage = campaign_result.overall_report().coverage
    rows = [
        ["defects simulated (LWRS)", campaign_result.n_simulated],
        ["defects detected by SymBIST", campaign_result.n_detected],
        ["L-W coverage", coverage.formatted()],
        ["undetected defects (escapes)", analysis.n_undetected_total],
        ["escapes analysed functionally", analysis.n_analyzed],
        ["escapes violating >= 1 specification",
         analysis.n_functional_escapes],
        ["functionally benign escapes", analysis.n_benign],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Escape analysis (the paper's out-of-scope "
                             "follow-up): are undetected defects harmful?"))
    if analysis.n_analyzed:
        print("specification violations among escapes:",
              analysis.violations_histogram() or "none")
        print("escapes by block:",
              {block: len(records)
               for block, records in analysis.by_block().items()})

    assert analysis.n_analyzed > 0
    # The central qualitative finding: a substantial share of what SymBIST
    # misses is functionally benign (small deviations inside the datasheet),
    # so the likelihood-weighted coverage understates outgoing quality.
    assert analysis.n_benign > 0
    assert analysis.functional_escape_fraction <= 0.8
