"""Experiment E2 -- Fig. 5: the Eq. (3) invariance waveform under defects.

Fig. 5 of the paper shows the invariant signal ``DAC+ + DAC-`` (checked
against ``2*Vcm``) over the test duration for the defect-free circuit and for
three randomly chosen defects inside the blocks covered by that invariance
(the sub-DACs, the SC array and the Vcm generator), together with the
``+/- delta`` comparison window.  Key qualitative observations reproduced
here:

* the defect-free trace stays inside the window for the whole test (the
  switching glitches between settled samples do not trigger the clocked
  checker);
* the Vcm-generator defect is detectable during the entire test;
* the SUBDAC1 and SC-array defects are detectable only during specific
  conversion periods (code-dependent deviation).

The benchmark writes the four series to ``benchmarks/output/fig5_waveform.csv``
and prints a per-trace summary.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.adc import SarAdc
from repro.circuit import GlitchModel
from repro.core import (SymBistController, WindowComparator, build_invariances,
                        format_table)
from repro.defects import DefectKind, build_defect_universe, DefectInjector

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: The three defective cases of Fig. 5 (block, device, defect style).
FIG5_DEFECTS = [
    ("subdac1", "swp_24", "open"),        # defect within SUBDAC1
    ("sc_array", "cm_p", "passive_high"),  # defect within the SC array
    ("vcm_generator", "r_top", "passive_high"),  # defect within the Vcm gen.
]


def _controller(adc, deltas):
    checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
    return SymBistController(adc, checkers,
                             glitch_model=GlitchModel(samples_per_cycle=6))


def _dac_sum_series(adc, deltas):
    """Times, glitchy residual waveform and settled samples of Eq. (3)."""
    result = _controller(adc, deltas).run()
    trace = result.waveforms["dac_sum"]
    return result, list(trace.times), list(trace.values)


def _find_defect(universe, block, device, style):
    for defect in universe.by_block(block):
        if defect.device_name != device:
            continue
        if style == "open" and defect.kind is DefectKind.OPEN:
            return defect
        if style == "short" and defect.kind is DefectKind.SHORT:
            return defect
        if style == "passive_high" and defect.kind is DefectKind.PASSIVE_HIGH:
            return defect
    raise AssertionError(f"no defect found for {block}/{device}/{style}")


def test_fig5_invariance_waveform(benchmark, deltas):
    """Regenerate the Fig. 5 series and verify their qualitative shape."""
    adc = SarAdc()
    delta = deltas["dac_sum"]
    universe = build_defect_universe(adc.build_hierarchy())
    injector = DefectInjector(adc.build_hierarchy())

    # Benchmark the defect-free waveform generation (one full glitch-annotated
    # SymBIST run).
    result_free, times, free_values = benchmark.pedantic(
        _dac_sum_series, args=(adc, deltas), rounds=1, iterations=1)
    assert result_free.passed

    series = {"defect_free": free_values}
    detection_profile = {}
    for block, device, style in FIG5_DEFECTS:
        defect = _find_defect(universe, block, device, style)
        with injector.injected(defect):
            result, _, values = _dac_sum_series(adc, deltas)
        series[block] = values
        check = result.check_results["dac_sum"]
        detection_profile[block] = (result.detected, len(check.violations),
                                    check.n_cycles)

    # ------------------------------------------------------------- CSV output
    OUTPUT_DIR.mkdir(exist_ok=True)
    csv_path = OUTPUT_DIR / "fig5_waveform.csv"
    header = ["time_s", "window_low", "window_high"] + list(series)
    lines = [",".join(header)]
    for index, time in enumerate(times):
        row = [f"{time:.9g}", f"{-delta:.6g}", f"{delta:.6g}"]
        row += [f"{series[name][index]:.6g}" for name in series]
        lines.append(",".join(row))
    csv_path.write_text("\n".join(lines) + "\n")

    # ------------------------------------------------------------- reporting
    rows = []
    for name, values in series.items():
        worst = max(abs(v) for v in values)
        detected, n_violations, n_cycles = detection_profile.get(
            name, (False, 0, 32))
        rows.append([name, f"{worst * 1e3:.2f}", f"{delta * 1e3:.2f}",
                     "yes" if detected else "no",
                     f"{n_violations}/{n_cycles}"])
    print()
    print(format_table(
        ["trace", "worst |residual| (mV)", "delta (mV)", "detected",
         "violating cycles"],
        rows, title="Fig. 5 -- DAC+ + DAC- - 2*Vcm invariance under defects"))
    print(f"series written to {csv_path}")

    # ------------------------------------------------------- shape assertions
    # Defect-free: all settled samples inside the window.
    settled_free = result_free.settled_residuals["dac_sum"]
    assert all(abs(v) <= delta for v in settled_free)
    # Vcm generator defect: detectable during the entire test duration.
    vcm_detected, vcm_violations, vcm_cycles = detection_profile["vcm_generator"]
    assert vcm_detected and vcm_violations == vcm_cycles
    # SUBDAC1 / SC-array defects: detected, but only in some conversion periods.
    for block in ("subdac1", "sc_array"):
        detected, violations, cycles = detection_profile[block]
        assert detected
        assert 0 < violations < cycles
