"""Experiment E8 (baseline) -- SymBIST versus functional (specification) test.

The introduction of the paper motivates SymBIST by the cost of functional,
conversion-based ADC testing (and the resulting absence of defect-oriented ADC
BIST: "the long ADC simulation time ... prohibits a defect simulation
campaign").  This benchmark runs both approaches on the same LWRS defect
sample and compares:

* defect-detection capability (defects flagged by an invariance violation
  versus defects that violate at least one datasheet specification);
* per-device test time (1.23 us for SymBIST versus hundreds of conversions
  for the functional suite);
* campaign cost (wall-clock per simulated defect), which is exactly the
  argument for why the fast SymBIST test enables whole-IP defect simulation.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import TestTimeModel, format_table, run_symbist
from repro.defects import DefectInjector, SamplingPlan, build_defect_universe, \
    lwrs_sample
from repro.functional_test import FunctionalBistBaseline

SEED = 20200309
N_DEFECTS = 24  # functional simulation of a defect costs hundreds of conversions


def _compare(deltas):
    adc = SarAdc()
    hierarchy = adc.build_hierarchy()
    universe = build_defect_universe(hierarchy)
    injector = DefectInjector(hierarchy)
    sample = lwrs_sample(universe, N_DEFECTS, np.random.default_rng(SEED))
    baseline = FunctionalBistBaseline(linearity_span_codes=48,
                                      samples_per_code=4, sine_samples=128)

    rows = []
    symbist_detected = functional_detected = 0
    symbist_wall = functional_wall = 0.0
    functional_conversions = 0
    for defect in sample:
        with injector.injected(defect):
            start = time.perf_counter()
            sym = run_symbist(adc, deltas, stop_on_detection=True)
            symbist_wall += time.perf_counter() - start
            start = time.perf_counter()
            func = baseline.run(adc)
            functional_wall += time.perf_counter() - start
        symbist_detected += int(sym.detected)
        functional_detected += int(func.detected)
        functional_conversions += func.conversions_used
        rows.append((defect, sym.detected, func.detected))
    return (rows, symbist_detected, functional_detected, symbist_wall,
            functional_wall, functional_conversions)


def test_symbist_vs_functional_baseline(benchmark, deltas):
    """Compare detection and cost of SymBIST against the functional baseline."""
    (rows, symbist_detected, functional_detected, symbist_wall,
     functional_wall, functional_conversions) = benchmark.pedantic(
        _compare, args=(deltas,), rounds=1, iterations=1)

    model = TestTimeModel()
    symbist_time = model.test_time()
    functional_time = model.functional_test_time(
        functional_conversions // max(len(rows), 1))

    table = [
        ["defects simulated", len(rows), len(rows)],
        ["defects detected", symbist_detected, functional_detected],
        ["on-chip test time per device",
         f"{symbist_time * 1e6:.2f} us",
         f"{functional_time * 1e6:.1f} us"],
        ["campaign wall-clock (s, behavioral model)",
         f"{symbist_wall:.1f}", f"{functional_wall:.1f}"],
    ]
    print()
    print(format_table(["quantity", "SymBIST (defect-oriented)",
                        "functional baseline (spec-based)"],
                       table, title="SymBIST versus functional test on the "
                                    "same LWRS defect sample"))
    both = sum(1 for _, s, f in rows if s and f)
    only_symbist = sum(1 for _, s, f in rows if s and not f)
    only_functional = sum(1 for _, s, f in rows if f and not s)
    print(f"agreement: both={both}, only SymBIST={only_symbist}, "
          f"only functional={only_functional}")

    # SymBIST's on-chip test is an order of magnitude (or more) faster.
    assert functional_time > 10 * symbist_time
    # The behavioral campaign cost mirrors the paper's argument: simulating a
    # functional test per defect is far more expensive than simulating SymBIST.
    assert functional_wall > 2 * symbist_wall
    # Both methods must catch a substantial share of the sampled defects and
    # SymBIST must not be grossly inferior to the specification test.
    assert symbist_detected >= 0.5 * len(rows)
    assert symbist_detected >= functional_detected - len(rows) // 4
