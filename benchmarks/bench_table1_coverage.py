"""Experiment E1 -- Table I: likelihood-weighted defect coverage with SymBIST.

Regenerates the per-block and whole-IP rows of Table I of the paper: number of
defects, number of defects simulated, (modelled) defect-simulation time, and
the L-W defect coverage with its 95 % confidence interval where LWRS sampling
is used.  Small blocks are simulated exhaustively (like the paper, where
``#defects == #defects simulated`` for them); large blocks and the whole-IP
row use LWRS.

Paper reference values (65 nm IP + SPICE-level DefectSim):

    bandgap 94.22 %, reference buffer 1 %, SUBDAC1 80.58 +/- 6.68 %,
    SUBDAC2 84.22 +/- 5.89 %, SC array 97.7 %, Vcm generator 30.88 %,
    pre-amplifier 94.12 %, comparator latch 87.79 %, RS latch 68.09 %,
    offset compensation 15.15 %, complete A/M-S part 86.96 +/- 3.67 %.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import format_confidence, format_table
from repro.defects import DefectCampaign, SamplingPlan

#: Seed of the campaign's LWRS draws (fixed for reproducibility).
BENCHMARK_SEED = 20200309

#: Paper Table I coverage values, for side-by-side reporting.
PAPER_TABLE1 = {
    "bandgap": "94.22%",
    "reference_buffer": "1%",
    "subdac1": "80.58% +/- 6.68%",
    "subdac2": "84.22% +/- 5.89%",
    "sc_array": "97.7%",
    "vcm_generator": "30.88%",
    "preamplifier": "94.12%",
    "comparator_latch": "87.79%",
    "rs_latch": "68.09%",
    "offset_compensation": "15.15%",
    "complete_ams_part": "86.96% +/- 3.67%",
}

#: LWRS sample budget per large block and for the whole-IP row (the paper
#: simulated 101 defects for the whole A/M-S part).
SAMPLES_PER_BLOCK = 80
WHOLE_IP_SAMPLES = 250
EXHAUSTIVE_THRESHOLD = 120


def _run_table1(deltas):
    campaign = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=True)
    # One engine run spans the whole per-block sweep; per-block LWRS draws
    # derive from the seed + block path, so the rows do not depend on block
    # order (and the whole-IP row below gets its own independent stream).
    per_block = campaign.run_per_block(n_samples_per_block=SAMPLES_PER_BLOCK,
                                       seed=BENCHMARK_SEED,
                                       exhaustive_threshold=EXHAUSTIVE_THRESHOLD)
    whole_ip = campaign.run(SamplingPlan(exhaustive=False,
                                         n_samples=WHOLE_IP_SAMPLES),
                            rng=np.random.default_rng(BENCHMARK_SEED))
    return campaign, per_block, whole_ip


def _render_table(campaign, per_block, whole_ip) -> str:
    rows = []
    for block, result in per_block.items():
        report = result.overall_report()
        rows.append([block, report.n_defects, report.n_simulated,
                     f"{report.modeled_sim_time:.0f}",
                     format_confidence(report.coverage.value,
                                       report.coverage.ci_half_width),
                     PAPER_TABLE1[block]])
    overall = whole_ip.overall_report()
    rows.append(["complete_ams_part", len(campaign.universe),
                 overall.n_simulated, f"{overall.modeled_sim_time:.0f}",
                 format_confidence(overall.coverage.value,
                                   overall.coverage.ci_half_width),
                 PAPER_TABLE1["complete_ams_part"]])
    return format_table(
        ["A/M-S block", "#defects", "#simulated", "model sim time (s)",
         "L-W coverage (this repro)", "L-W coverage (paper)"],
        rows, title="Table I -- L-W defect coverage results with SymBIST")


def test_table1_coverage(benchmark, deltas):
    """Regenerate Table I and check its qualitative shape."""
    campaign, per_block, whole_ip = benchmark.pedantic(
        _run_table1, args=(deltas,), rounds=1, iterations=1)

    print()
    print(_render_table(campaign, per_block, whole_ip))

    coverage = {block: result.overall_report().coverage.value
                for block, result in per_block.items()}
    overall = whole_ip.overall_report().coverage.value

    # Shape checks mirroring the paper's findings.
    assert coverage["sc_array"] > 0.9                       # ~98 % in the paper
    assert coverage["bandgap"] > 0.7                        # ~94 % in the paper
    assert coverage["reference_buffer"] < 0.2               # ~1 % in the paper
    assert coverage["offset_compensation"] < 0.4            # ~15 % in the paper
    assert 0.5 < coverage["subdac1"] <= 1.0                 # ~81 % in the paper
    assert 0.5 < coverage["subdac2"] <= 1.0                 # ~84 % in the paper
    assert overall > 0.65                                   # ~87 % in the paper
    # The low-L-W blocks must rank below the well-observed blocks.
    assert max(coverage["reference_buffer"], coverage["offset_compensation"]) \
        < min(coverage["sc_array"], coverage["bandgap"])
