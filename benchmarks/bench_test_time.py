"""Experiment E3 -- Section IV-5: SymBIST test time.

The paper computes the sequential-checking test time as
``6 * 2^5 * (1 / f_clk) = 1.23 us`` at 156 MHz and notes it equals about 16x
the time to convert one analog input sample.  The benchmark reproduces that
arithmetic from the test-time model *and* from an actual simulated run of the
BIST controller, and reports the parallel-checking variant for comparison.
"""

from __future__ import annotations

import pytest

from repro.adc import SarAdc
from repro.core import (CheckingMode, SymBistController, TestTimeModel,
                        WindowComparator, format_table)


def _simulated_test_time(adc, deltas, mode):
    checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
    controller = SymBistController(adc, checkers, mode=mode)
    return controller.run()


def test_symbist_test_time(benchmark, adc, deltas):
    """Regenerate the test-time numbers of Section IV-5."""
    model = TestTimeModel()
    result = benchmark.pedantic(_simulated_test_time,
                                args=(adc, deltas, CheckingMode.SEQUENTIAL),
                                rounds=3, iterations=1)
    parallel = _simulated_test_time(adc, deltas, CheckingMode.PARALLEL)

    rows = [
        ["sequential (paper scenario)", model.test_cycles(CheckingMode.SEQUENTIAL),
         f"{model.test_time(CheckingMode.SEQUENTIAL) * 1e6:.3f}",
         f"{result.test_time * 1e6:.3f}",
         f"{model.test_time_in_conversions(CheckingMode.SEQUENTIAL):.1f}x"],
        ["parallel (one checker per invariance)",
         model.test_cycles(CheckingMode.PARALLEL),
         f"{model.test_time(CheckingMode.PARALLEL) * 1e6:.3f}",
         f"{parallel.test_time * 1e6:.3f}",
         f"{model.test_time_in_conversions(CheckingMode.PARALLEL):.1f}x"],
    ]
    print()
    print(format_table(
        ["checking mode", "clock cycles", "model test time (us)",
         "simulated test time (us)", "vs one conversion"],
        rows, title="Section IV-5 -- SymBIST test time at f_clk = 156 MHz "
                    "(paper: 1.23 us, ~16x one conversion)"))

    # Paper claims.
    assert model.test_time(CheckingMode.SEQUENTIAL) * 1e6 == pytest.approx(
        1.23, abs=0.01)
    assert result.test_time * 1e6 == pytest.approx(1.23, abs=0.01)
    assert model.test_time_in_conversions(CheckingMode.SEQUENTIAL) == \
        pytest.approx(16.0, abs=0.1)
    assert parallel.test_time == pytest.approx(result.test_time / 6, rel=1e-9)
