"""Experiment E5 -- window calibration: yield loss versus the k multiplier.

The paper sets ``delta = k * sigma`` with ``k = 5`` "so as to guarantee that
yield loss is negligible" (Section VI).  The benchmark sweeps k, reporting the
analytic Gaussian yield-loss model and the empirical estimate over the
calibration Monte Carlo population, and checks that k = 5 indeed gives
(essentially) zero defect-free failures while small k values would cost yield.
"""

from __future__ import annotations

import pytest

from repro.analysis import yield_loss_sweep
from repro.core import format_table

K_VALUES = (2.0, 3.0, 4.0, 5.0, 6.0)


def test_yield_loss_versus_k(benchmark, calibration):
    """Regenerate the yield-loss-versus-k trade-off behind the k = 5 choice."""
    points = benchmark.pedantic(yield_loss_sweep,
                                args=(calibration,),
                                kwargs={"k_values": K_VALUES},
                                rounds=1, iterations=1)

    rows = []
    for point in points:
        empirical = "n/a" if point.empirical is None else \
            f"{100 * point.empirical:.2f}%"
        rows.append([f"{point.k:.0f}",
                     f"{point.analytic_single_check:.3g}",
                     f"{point.analytic_ppm:.3g}",
                     empirical])
    print()
    print(format_table(
        ["k", "P(|residual| > k*sigma) per check", "analytic yield loss (ppm)",
         f"empirical yield loss ({calibration.n_samples} MC instances)"],
        rows, title="delta = k * sigma calibration -- yield loss versus k "
                    "(paper uses k = 5)"))
    print("calibrated windows:",
          {name: f"{delta * 1e3:.2f} mV" if delta < 1 else f"{delta:.2f} V"
           for name, delta in calibration.deltas.items()})

    by_k = {point.k: point for point in points}
    # k = 5: negligible yield loss, empirically zero failures.
    assert by_k[5.0].empirical == 0.0
    assert by_k[5.0].analytic_ppm < 10.0
    # Small windows would fail good parts.
    assert by_k[2.0].analytic_per_run > by_k[5.0].analytic_per_run * 100
    # Yield loss decreases monotonically with k.
    analytic = [by_k[k].analytic_per_run for k in K_VALUES]
    assert all(b <= a for a, b in zip(analytic, analytic[1:]))
