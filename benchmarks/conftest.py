"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table, figure or claim of the paper (see
DESIGN.md section 4 and EXPERIMENTS.md).  The window calibration is shared
across benchmarks (it corresponds to the one-off design-time Monte Carlo the
paper performs before its experiments).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import WindowCalibration, calibrate_windows

#: Seed used by every stochastic piece of the benchmark harness.
BENCHMARK_SEED = 20200309  # DATE 2020 conference date


@pytest.fixture(scope="session")
def calibration() -> WindowCalibration:
    """Design-time window calibration (delta = 5 sigma, as in the paper)."""
    return calibrate_windows(n_monte_carlo=40,
                             rng=np.random.default_rng(BENCHMARK_SEED),
                             keep_pools=True)


@pytest.fixture(scope="session")
def deltas(calibration: WindowCalibration) -> dict:
    return dict(calibration.deltas)


@pytest.fixture
def adc() -> SarAdc:
    return SarAdc()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(BENCHMARK_SEED)
