#!/usr/bin/env python3
"""Characterise the behavioral SAR ADC with the functional-test suite.

Uses the device-under-test model on its own (no BIST involved): static
linearity from a reduced-code ramp, dynamic performance from a coherent sine
capture, and servo-loop measurements of the major-carry transitions.  This is
the kind of bench characterisation the functional-BIST literature cited in the
paper's introduction tries to move on-chip -- and the number of conversions it
needs is the reason the paper argues defect-oriented testing must be faster.

Run with::

    python examples/adc_characterization.py [--defective]
"""

from __future__ import annotations

import argparse

from repro.adc import SarAdc, check_specification
from repro.core import TestTimeModel, format_table
from repro.functional_test import (major_transition_codes,
                                   reduced_code_linearity_test,
                                   servo_linearity_probe, sine_fit_test)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--defective", action="store_true",
                        help="inject a capacitor mismatch defect first")
    parser.add_argument("--span-codes", type=int, default=64)
    parser.add_argument("--sine-samples", type=int, default=512)
    args = parser.parse_args()

    adc = SarAdc()
    if args.defective:
        adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.value_scale = 1.5
        print("injected defect: +50 % deviation of the MSB capacitor "
              "(positive side) in the SC array\n")

    conversions = 0

    print("== static linearity (reduced-code ramp) ==")
    linearity = reduced_code_linearity_test(adc, span_codes=args.span_codes,
                                            samples_per_code=4)
    conversions += args.span_codes * 4
    print(format_table(["metric", "value"], [
        ["DNL max (LSB)", f"{linearity.dnl_max_lsb:.3f}"],
        ["INL max (LSB)", f"{linearity.inl_max_lsb:.3f}"],
        ["offset (LSB)", f"{linearity.offset_lsb:.2f}"],
        ["gain error (%)", f"{linearity.gain_error_percent:.3f}"],
        ["missing codes", linearity.missing_codes],
    ]))

    print("\n== dynamic performance (coherent sine capture) ==")
    dynamic = sine_fit_test(adc, n_samples=args.sine_samples)
    conversions += args.sine_samples
    print(format_table(["metric", "value"], [
        ["SNDR (dB)", f"{dynamic.sndr_db:.1f}"],
        ["ENOB (bits)", f"{dynamic.enob_bits:.2f}"],
        ["SFDR (dB)", f"{dynamic.sfdr_db:.1f}"],
    ]))

    print("\n== servo-loop probe of the major-carry transitions ==")
    codes = major_transition_codes()[:4]
    servo = servo_linearity_probe(adc, codes, tolerance=1e-3)
    rows = [[code, f"{m.level * 1e3:.2f}", m.conversions_used]
            for code, m in servo.items()]
    conversions += sum(m.conversions_used for m in servo.values())
    print(format_table(["code", "transition level (mV, differential)",
                        "conversions used"], rows))

    performance = linearity.as_performance()
    performance.enob_bits = dynamic.enob_bits
    violations = check_specification(performance)
    verdict = "PASS" if not violations else f"FAIL ({', '.join(violations)})"
    model = TestTimeModel()
    total_time = model.functional_test_time(conversions)
    print(f"\nspecification check: {verdict}")
    print(f"total conversions: {conversions}  "
          f"(~{total_time * 1e6:.1f} us of converter time, versus 1.23 us "
          f"for the SymBIST test)")


if __name__ == "__main__":
    main()
