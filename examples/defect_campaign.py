#!/usr/bin/env python3
"""Defect-simulation campaign: reproduce a Table-I-style coverage report.

Runs the full defect-oriented flow of the paper on the behavioral IP model:
defect-universe extraction, likelihood weighting, LWRS sampling (or exhaustive
simulation of small blocks), stop-on-detection SymBIST runs and
likelihood-weighted coverage with 95 % confidence intervals.

The per-block sweep is one engine run: every block's defect tasks are
submitted together and each block's LWRS draws derive from the root seed +
the block path, so the rows are identical for any block order, subset or
worker count (pass ``--workers`` to shard the sweep across a process pool).

Run with::

    python examples/defect_campaign.py --samples-per-block 60
    python examples/defect_campaign.py --blocks sc_array vcm_generator
    python examples/defect_campaign.py --workers 4

The same sweep -- with per-block window calibration and per-block summary
reductions folded into the one graph -- is the canned ``block-study``
study: ``repro-campaign run examples/studies/block_study.toml`` (see
``docs/studies.md``).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adc import SarAdc
from repro.core import calibrate_windows, format_confidence, format_table
from repro.defects import DefectCampaign, SamplingPlan
from repro.engine import MultiprocessBackend, SerialBackend


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples-per-block", type=int, default=60,
                        help="LWRS budget for blocks too large to exhaust")
    parser.add_argument("--whole-ip-samples", type=int, default=101,
                        help="LWRS budget for the complete A/M-S part row")
    parser.add_argument("--monte-carlo", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes of the sweep (1 = serial)")
    parser.add_argument("--blocks", nargs="*", default=None,
                        help="restrict the campaign to these block paths")
    args = parser.parse_args()
    backend = SerialBackend() if args.workers <= 1 \
        else MultiprocessBackend(max_workers=args.workers)

    print("calibrating comparison windows (delta = 5 sigma)...")
    calibration = calibrate_windows(n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas,
                              stop_on_detection=True)

    print(f"defect universe: {len(campaign.universe)} defects across "
          f"{len(campaign.universe.block_paths())} A/M-S blocks")

    # One task graph spans every block: small blocks exhaustively, large
    # ones with a per-block LWRS budget, all interleaved in one engine run.
    results = campaign.run_per_block(
        n_samples_per_block=args.samples_per_block, seed=args.seed,
        exhaustive_threshold=2 * args.samples_per_block,
        blocks=args.blocks, backend=backend)

    rows = []
    for block, result in results.items():
        report = result.block_report(block)
        rows.append([block, report.n_defects, report.n_simulated,
                     f"{report.wall_time:.1f}",
                     format_confidence(report.coverage.value,
                                       report.coverage.ci_half_width)])

    if args.blocks is None:
        whole = campaign.run(SamplingPlan(exhaustive=False,
                                          n_samples=args.whole_ip_samples),
                             rng=np.random.default_rng(args.seed),
                             backend=backend)
        overall = whole.overall_report()
        rows.append(["complete A/M-S part", len(campaign.universe),
                     overall.n_simulated, f"{overall.wall_time:.1f}",
                     format_confidence(overall.coverage.value,
                                       overall.coverage.ci_half_width)])

    print()
    print(format_table(
        ["A/M-S block", "#defects", "#simulated", "wall time (s)",
         "L-W defect coverage"],
        rows, title="SymBIST defect-simulation campaign (Table I style)"))
    engine_report = next(iter(results.values())).engine_report
    print()
    print(f"engine (per-block sweep): {engine_report.summary()}")


if __name__ == "__main__":
    main()
