#!/usr/bin/env python3
"""Field/ATE view: drive SymBIST through the 2-pin TAM and diagnose failures.

Shows the two extensions built on top of the paper's flow:

* the 2-pin digital test access mechanism (Section IV-4 mentions SymBIST is
  compatible with one): an ATE-style session that launches the self-test and
  reads back the sticky status, the per-invariance fail map and the first
  detection cycle;
* invariance-signature diagnosis: ranking the candidate blocks from the fail
  map and the violation timing, the information a product engineer would use
  to steer failure analysis.

Run with::

    python examples/diagnosis_and_tam.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adc import SarAdc
from repro.core import (SymBistTam, calibrate_windows, format_table,
                        run_symbist)
from repro.defects import DefectKind, DefectInjector, build_defect_universe, \
    diagnose

SHOWCASE = [
    ("vcm_generator", "r_top", DefectKind.PASSIVE_HIGH),
    ("subdac1", "swp_24", DefectKind.OPEN),
    ("sc_array", "cm_p", DefectKind.PASSIVE_HIGH),
    ("comparator_latch", "mn_clk", DefectKind.OPEN),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--monte-carlo", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    calibration = calibrate_windows(n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    adc = SarAdc()
    hierarchy = adc.build_hierarchy()
    universe = build_defect_universe(hierarchy)
    injector = DefectInjector(hierarchy)

    print("== ATE session over the 2-pin TAM (defect-free part) ==")
    report = SymBistTam(adc, calibration.deltas).run_and_report()
    print(f"  pass = {report['passed']}, TCK cycles = {report['tck_cycles']}, "
          f"session time = {report['session_time'] * 1e6:.2f} us")

    print("\n== Failing parts: TAM readout + diagnosis ==")
    rows = []
    for block, device, kind in SHOWCASE:
        defect = next(d for d in universe.by_block(block)
                      if d.device_name == device and d.kind is kind)
        with injector.injected(defect):
            tam_report = SymBistTam(adc, calibration.deltas).run_and_report()
            result = run_symbist(adc, calibration.deltas)
            diagnosis = diagnose(result)
        rows.append([
            f"{block}/{device}",
            "FAIL" if not tam_report["passed"] else "PASS",
            ",".join(tam_report["failing_invariances"]),
            str(tam_report["first_detection_cycle"]),
            " > ".join(diagnosis.ranked_blocks()[:3]),
        ])
    print(format_table(
        ["injected defect", "TAM status", "fail map", "first cycle",
         "diagnosis (top-3 blocks)"], rows))

    print("\nThe true defective block appears in the top-3 diagnosis for each "
          "case; the fail map and first-cycle readout are exactly what the "
          "2-pin interface exposes to the tester.")


if __name__ == "__main__":
    main()
