#!/usr/bin/env python3
"""Standard digital BIST flow for the purely digital blocks of the IP.

The paper's IP-level strategy (Fig. 1) pairs SymBIST on the A/M-S blocks with
"standard digital BIST" on the purely digital ones.  This example runs that
digital side: scan insertion, random and greedy ATPG, and the LFSR/MISR logic
BIST, for the SAR logic, the SAR control and the phase generator.

Run with::

    python examples/digital_bist_flow.py [--patterns 64]
"""

from __future__ import annotations

import argparse

from repro.core import format_table
from repro.digital import (LogicBist, build_phase_generator, build_sar_control,
                           build_sar_logic, greedy_atpg, insert_scan,
                           random_atpg)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patterns", type=int, default=64,
                        help="pseudo-random patterns per block")
    args = parser.parse_args()

    rows = []
    for name, builder in (("sar_logic", build_sar_logic),
                          ("sar_control", build_sar_control),
                          ("phase_generator", build_phase_generator)):
        netlist = builder()
        chain = insert_scan(netlist)
        atpg = random_atpg(netlist, chain, n_patterns=args.patterns, seed=7)
        compact = greedy_atpg(netlist, chain, candidate_patterns=2 * args.patterns,
                              seed=7)
        bist = LogicBist(netlist, chain).run(n_patterns=args.patterns)
        rows.append([name,
                     f"{netlist.n_gates}/{netlist.n_flops}",
                     chain.length,
                     f"{100 * atpg.coverage:.1f}%",
                     f"{100 * compact.coverage:.1f}% ({compact.n_patterns})",
                     f"{100 * bist.fault_coverage:.1f}%",
                     f"0x{bist.golden_signature:04x}",
                     f"{bist.test_time * 1e6:.2f}"])

    print(format_table(
        ["block", "gates/flops", "scan cells",
         f"random ATPG ({args.patterns})", "greedy ATPG (patterns)",
         "logic BIST", "golden signature", "BIST time (us)"],
        rows, title="Standard digital BIST of the SAR ADC's digital blocks"))

    print("\nUndetected faults are dominated by random-pattern-resistant "
          "sites (one-hot pulse decoders); a deterministic ATPG pass or "
          "test-point insertion would close them, as in production flows.")


if __name__ == "__main__":
    main()
