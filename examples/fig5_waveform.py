#!/usr/bin/env python3
"""Reproduce Fig. 5: the Eq. (3) invariance waveform with and without defects.

Generates the invariant signal ``DAC+ + DAC- - 2*Vcm`` over the 32-code test
stimulus for the defect-free IP and for three defective IPs (defects inside
SUBDAC1, the SC array and the Vcm generator), including the switching-glitch
samples and the ``+/- delta`` comparison window, and writes everything to a
CSV that can be plotted with any tool.

Run with::

    python examples/fig5_waveform.py --output fig5.csv
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adc import SarAdc
from repro.circuit import GlitchModel
from repro.core import SymBistController, calibrate_windows, WindowComparator
from repro.defects import DefectKind, DefectInjector, build_defect_universe

CASES = [
    ("defect_free", None),
    ("subdac1_defect", ("subdac1", "swp_24", DefectKind.OPEN)),
    ("sc_array_defect", ("sc_array", "cm_p", DefectKind.PASSIVE_HIGH)),
    ("vcm_generator_defect", ("vcm_generator", "r_top", DefectKind.PASSIVE_HIGH)),
]


def dac_sum_trace(adc, deltas):
    checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
    controller = SymBistController(adc, checkers,
                                   glitch_model=GlitchModel(samples_per_cycle=8))
    result = controller.run()
    trace = result.waveforms["dac_sum"]
    return result, list(trace.times), list(trace.values)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="fig5_waveform.csv")
    parser.add_argument("--monte-carlo", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    calibration = calibrate_windows(n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    delta = calibration.deltas["dac_sum"]
    adc = SarAdc()
    hierarchy = adc.build_hierarchy()
    universe = build_defect_universe(hierarchy)
    injector = DefectInjector(hierarchy)

    series = {}
    times = None
    for label, spec in CASES:
        if spec is None:
            result, times, values = dac_sum_trace(adc, calibration.deltas)
        else:
            block, device, kind = spec
            defect = next(d for d in universe.by_block(block)
                          if d.device_name == device and d.kind is kind)
            with injector.injected(defect):
                result, times, values = dac_sum_trace(adc, calibration.deltas)
            print(f"{label:<22s} detected={result.detected!s:<5s} "
                  f"({defect.description})")
        series[label] = values
    print(f"comparison window: +/- {delta * 1e3:.2f} mV")

    with open(args.output, "w") as handle:
        handle.write("time_s,window_low,window_high,"
                     + ",".join(series) + "\n")
        for index, time in enumerate(times):
            row = [f"{time:.9g}", f"{-delta:.6g}", f"{delta:.6g}"]
            row += [f"{series[label][index]:.6g}" for label in series]
            handle.write(",".join(row) + "\n")
    print(f"wrote {len(times)} samples per trace to {args.output}")


if __name__ == "__main__":
    main()
