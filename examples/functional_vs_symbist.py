#!/usr/bin/env python3
"""Compare SymBIST against the specification-based functional test.

For a handful of representative defects (one per A/M-S block class), run both
the SymBIST test and the functional baseline and report which approach detects
the defect and at what on-chip test cost.  This is the experiment behind the
paper's motivation: defect-oriented SymBIST reaches comparable detection at a
tiny fraction of the test time.

Run with::

    python examples/functional_vs_symbist.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adc import SarAdc
from repro.core import TestTimeModel, calibrate_windows, format_table, run_symbist
from repro.defects import DefectKind, DefectInjector, build_defect_universe
from repro.functional_test import FunctionalBistBaseline

#: Representative defects: (label, block, device, defect kind).
SHOWCASE = [
    ("reference ladder short", "reference_buffer", "rlad_10", DefectKind.SHORT),
    ("sub-DAC switch open", "subdac1", "swp_16", DefectKind.OPEN),
    ("SC-array cap +50%", "sc_array", "cm_p", DefectKind.PASSIVE_HIGH),
    ("Vcm divider +50%", "vcm_generator", "r_top", DefectKind.PASSIVE_HIGH),
    ("pre-amp tail open", "preamplifier", "mn_tail", DefectKind.OPEN),
    ("latch clock open", "comparator_latch", "mn_clk", DefectKind.OPEN),
    ("auto-zero cap open", "offset_compensation", "c_az_p", DefectKind.OPEN),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--monte-carlo", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    calibration = calibrate_windows(n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    adc = SarAdc()
    hierarchy = adc.build_hierarchy()
    universe = build_defect_universe(hierarchy)
    injector = DefectInjector(hierarchy)
    baseline = FunctionalBistBaseline(linearity_span_codes=48,
                                      samples_per_code=4, sine_samples=128)
    model = TestTimeModel()

    rows = []
    for label, block, device, kind in SHOWCASE:
        defect = next(d for d in universe.by_block(block)
                      if d.device_name == device and d.kind is kind)
        with injector.injected(defect):
            sym = run_symbist(adc, calibration.deltas, stop_on_detection=True)
            func = baseline.run(adc)
        sym_status = (f"detected ({sym.first_detection[0]})"
                      if sym.detected else "escaped")
        func_status = ("detected (" + ", ".join(func.violations) + ")"
                       if func.violations else
                       "detected (gross failure)" if func.gross_failure
                       else "escaped")
        rows.append([label, block, sym_status, func_status])

    print(format_table(
        ["defect", "block", "SymBIST (1.23 us)",
         f"functional test "
         f"({model.functional_test_time(baseline.ramp_points + 128) * 1e6:.0f} us)"],
        rows, title="Defect detection: SymBIST versus the functional baseline"))

    speedup = model.speedup_vs_functional(baseline.ramp_points + 128)
    print(f"\nSymBIST test-time advantage over this functional suite: "
          f"{speedup:.0f}x per device")
    print("Undetected cases (if any) illustrate the paper's closing remark: "
          "escapes should be analysed for whether they violate any "
          "specification at all.")


if __name__ == "__main__":
    main()
