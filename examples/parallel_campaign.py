#!/usr/bin/env python3
"""Parallel + cached defect campaign through the execution engine.

Demonstrates the campaign-execution subsystem (:mod:`repro.engine`):

* the same defect campaign run on the serial backend and on a sharded
  process pool, with byte-identical coverage results;
* a warm re-run against the content-addressed result cache, replaying the
  stored per-defect artifacts instead of simulating.

Run with::

    python examples/parallel_campaign.py --workers 4
    python examples/parallel_campaign.py --workers 4 --cache-dir .repro-cache
    python examples/parallel_campaign.py --blocks sc_array vcm_generator

The equivalent shell one-liner is::

    repro-campaign campaign --workers 4 --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.adc import SarAdc
from repro.core import calibrate_windows, format_confidence, format_table
from repro.defects import DefectCampaign, SamplingPlan
from repro.engine import MultiprocessBackend, ResultCache, SerialBackend


def run_campaign(campaign, blocks, samples, rng_seed, backend, cache):
    rng = np.random.default_rng(rng_seed)
    rows = []
    for block in blocks:
        exhaustive = len(campaign.universe.by_block(block)) <= 2 * samples
        plan = SamplingPlan(exhaustive=exhaustive, n_samples=samples)
        result = campaign.run(plan, blocks=[block], rng=rng,
                              backend=backend, cache=cache)
        report = result.block_report(block)
        rows.append([block, report.n_simulated,
                     f"{result.engine_report.wall_time:.2f}",
                     f"{100.0 * result.engine_report.cache_hit_rate:.0f}%",
                     format_confidence(report.coverage.value,
                                       report.coverage.ci_half_width)])
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool width of the parallel run")
    parser.add_argument("--samples", type=int, default=40,
                        help="LWRS budget for blocks too large to exhaust")
    parser.add_argument("--monte-carlo", type=int, default=20)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--blocks", nargs="*",
                        default=["vcm_generator", "sc_array"],
                        help="block paths to campaign over")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent cache directory (defaults to a "
                             "temporary one)")
    args = parser.parse_args()

    print("calibrating comparison windows (delta = 5 sigma)...")
    calibration = calibrate_windows(n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cache-")
    cache = ResultCache(cache_dir, namespace="defects")
    headers = ["block", "#simulated", "engine wall (s)", "cache hits",
               "L-W coverage"]

    serial = run_campaign(campaign, args.blocks, args.samples, args.seed,
                          SerialBackend(), None)
    print()
    print(format_table(headers, serial, title="serial backend (no cache)"))

    parallel = run_campaign(campaign, args.blocks, args.samples, args.seed,
                            MultiprocessBackend(max_workers=args.workers),
                            cache)
    print()
    print(format_table(
        headers, parallel,
        title=f"multiprocess backend ({args.workers} workers, cold cache)"))

    warm = run_campaign(campaign, args.blocks, args.samples, args.seed,
                        SerialBackend(), cache)
    print()
    print(format_table(headers, warm, title="warm cache replay"))

    identical = all(s[-1] == p[-1] == w[-1]
                    for s, p, w in zip(serial, parallel, warm))
    print()
    print(f"coverage identical across serial / parallel / cached: "
          f"{identical}")
    print(f"cache directory: {cache_dir}")


if __name__ == "__main__":
    main()
