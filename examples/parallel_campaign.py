#!/usr/bin/env python3
"""Calibrate -> campaign as one task graph, parallel + cached.

Demonstrates the dependency-aware pipeline executor (:mod:`repro.engine`):

* the paper's two-phase workflow (window calibration on defect-free
  circuits, then the defect campaign against those windows) running as ONE
  task graph via :func:`repro.engine.calibrate_then_campaign` -- Monte Carlo
  samples feed a ``windows`` reduction task, which feeds one task per
  defect, with no stage barrier in between;
* the same workflow run the historical way (two separate invocations with
  hand-carried state), asserting the two are **bit-identical**: same window
  deltas, same per-defect detections, same coverage;
* a sharded multiprocess run and a warm cache replay, both again
  bit-identical, with cached calibration parents unblocking the campaign
  stage immediately.

Run with::

    python examples/parallel_campaign.py --workers 4
    python examples/parallel_campaign.py --workers 4 --cache-dir .repro-cache
    python examples/parallel_campaign.py --blocks sc_array vcm_generator

The equivalent shell one-liners are::

    repro-campaign pipeline --workers 4 --cache-dir .repro-cache
    repro-campaign run examples/studies/calibrate_then_campaign.toml \\
        --workers 4 --cache-dir .repro-cache

(the second runs the same canned study from its declarative spec -- see
``docs/studies.md``; :func:`repro.engine.calibrate_then_campaign` itself is
a thin wrapper compiling that spec).
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.adc import SarAdc
from repro.core import calibrate_windows, format_confidence, format_table
from repro.defects import DefectCampaign, SamplingPlan, block_seed_sequence
from repro.engine import (MultiprocessBackend, ResultCache,
                          calibrate_then_campaign)


def manual_two_invocation_flow(args):
    """The historical flow: calibrate, then campaign, state carried by hand.

    Each block's LWRS draws come from ``block_seed_sequence(seed, block)``
    -- the scheme every per-block sweep (``run_per_block``, the pipeline and
    block-study graphs) uses, so the draws never depend on block order.
    """
    calibration = calibrate_windows(
        n_monte_carlo=args.monte_carlo, rng=np.random.default_rng(args.seed))
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
    results = {}
    for block in args.blocks:
        block_universe = campaign.universe.by_block(block)
        exhaustive = len(block_universe) <= args.exhaustive_threshold
        plan = SamplingPlan(exhaustive=exhaustive, n_samples=args.samples)
        rng = np.random.default_rng(block_seed_sequence(args.seed, block))
        results[block] = campaign.run(plan, blocks=[block], rng=rng)
    return calibration, results


def record_digest(result):
    """Everything that must match bit-for-bit between the two flows."""
    return [(r.defect.defect_id, r.detected, r.detecting_invariance,
             r.detection_cycle, r.cycles_run) for r in result.records]


def rows_for(outcome_results):
    rows = []
    for block, result in outcome_results.items():
        report = result.block_report(block)
        rows.append([block, report.n_simulated, result.n_detected,
                     format_confidence(report.coverage.value,
                                       report.coverage.ci_half_width)])
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool width of the parallel run")
    parser.add_argument("--samples", type=int, default=40,
                        help="LWRS budget for blocks too large to exhaust")
    parser.add_argument("--exhaustive-threshold", type=int, default=80)
    parser.add_argument("--monte-carlo", type=int, default=20)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--blocks", nargs="*",
                        default=["vcm_generator", "sc_array"],
                        help="block paths to campaign over")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent cache directory (defaults to a "
                             "temporary one)")
    args = parser.parse_args()
    headers = ["block", "#simulated", "#detected", "L-W coverage"]
    pipeline_kwargs = dict(
        n_monte_carlo=args.monte_carlo, seed=args.seed, blocks=args.blocks,
        samples=args.samples, exhaustive_threshold=args.exhaustive_threshold)

    print("1) manual two-invocation flow (calibrate, then campaign)...")
    calibration, manual = manual_two_invocation_flow(args)

    print("2) the same workflow as ONE task graph, serial...")
    serial = calibrate_then_campaign(**pipeline_kwargs)
    print()
    print(format_table(headers, rows_for(serial.results),
                       title="pipeline, serial"))
    print(f"   {serial.report.summary()}")

    assert serial.calibration.deltas == calibration.deltas, \
        "pipeline windows differ from calibrate_windows"
    for block in args.blocks:
        assert record_digest(serial.results[block]) == \
            record_digest(manual[block]), f"records differ for {block}"
    print("   bit-identical to the manual flow "
          "(windows, detections, cycle counts)")

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cache-")
    print(f"3) sharded across {args.workers} workers, cold cache...")
    parallel = calibrate_then_campaign(
        backend=MultiprocessBackend(max_workers=args.workers),
        cache=ResultCache(cache_dir, namespace="pipeline"),
        **pipeline_kwargs)
    print(f"   {parallel.report.summary()}")

    print("4) warm cache replay (parents short-circuit instantly)...")
    warm = calibrate_then_campaign(
        cache=ResultCache(cache_dir, namespace="pipeline"),
        **pipeline_kwargs)
    print(f"   {warm.report.summary()}")

    for block in args.blocks:
        assert record_digest(parallel.results[block]) == \
            record_digest(manual[block])
        assert record_digest(warm.results[block]) == \
            record_digest(manual[block])
    assert warm.report.n_cache_hits == warm.report.n_tasks
    print()
    print("serial / parallel / cached pipeline all bit-identical to the "
          "manual two-invocation flow")
    print(f"cache directory: {cache_dir}")


if __name__ == "__main__":
    main()
