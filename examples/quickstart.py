#!/usr/bin/env python3
"""Quickstart: calibrate the SymBIST windows, test a good and a defective IP.

This is the smallest end-to-end use of the library:

1. run the design-time Monte Carlo calibration (``delta = k * sigma``),
2. run the SymBIST test on a defect-free instance of the SAR ADC IP,
3. inject one manufacturing defect and show how an invariance catches it.

Run with::

    python examples/quickstart.py [--monte-carlo 40] [--k 5]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adc import SarAdc
from repro.core import calibrate_windows, run_symbist, summarize_symbist_result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--monte-carlo", type=int, default=40,
                        help="Monte Carlo samples for the window calibration")
    parser.add_argument("--k", type=float, default=5.0,
                        help="window multiplier delta = k * sigma")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("== 1. Window calibration (design time) ==")
    calibration = calibrate_windows(k=args.k, n_monte_carlo=args.monte_carlo,
                                    rng=np.random.default_rng(args.seed))
    for name, delta in calibration.deltas.items():
        sigma = calibration.sigmas[name]
        print(f"  {name:<10s} sigma = {sigma * 1e3:7.3f} mV   "
              f"delta = {delta * 1e3:7.2f} mV")

    print("\n== 2. SymBIST on a defect-free IP ==")
    adc = SarAdc()
    result = run_symbist(adc, calibration.deltas)
    print(summarize_symbist_result(result))

    print("\n== 3. SymBIST on a defective IP ==")
    # Short one segment of the reference ladder: the complementary sub-DAC
    # outputs no longer sum to VREF[32] (paper Eq. (2)).
    device = adc.reference_buffer.netlist.device("rlad_10")
    device.defect.shorted_terminals = ("p", "n")
    print(f"injected defect: 10-ohm short across {device.name} "
          f"in {adc.reference_buffer.block_path}")
    result = run_symbist(adc, calibration.deltas, stop_on_detection=True)
    print(summarize_symbist_result(result))
    adc.clear_defects()

    print("\nDone: the defect-free IP passes, the defective IP is caught by "
          "the symmetry invariances.")


if __name__ == "__main__":
    main()
