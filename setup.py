"""Setup shim for environments where PEP 660 editable installs are unavailable."""
from setuptools import setup

setup()
