"""SymBIST reproduction: symmetry-based A/M-S BIST on a behavioral SAR ADC IP.

Reproduction of "Symmetry-based A/M-S BIST (SymBIST): Demonstration on a SAR
ADC IP" (Pavlidis, Louerat, Faehn, Kumar, Stratigopoulos -- DATE 2020).

Subpackages
-----------
``repro.circuit``
    Behavioral circuit-simulation substrate: devices, netlists, nodal solver,
    cycle-based transient engine, process variations.
``repro.adc``
    The device under test: a structural + behavioral model of the 65 nm
    10-bit SAR ADC IP (bandgap, reference buffer, sub-DACs, SC array,
    comparator chain, Vcm generator, SAR logic / control).
``repro.core``
    The paper's contribution: the six invariances, the clocked window
    comparator, the counter stimulus, the BIST controller, delta = k*sigma
    calibration, test-time and area models.
``repro.defects``
    Defect model, defect-universe extraction, likelihood weighting, LWRS
    sampling, campaign runner, likelihood-weighted coverage (Table I).
``repro.digital``
    Gate-level substrate and standard digital BIST (scan, ATPG, LFSR/MISR)
    for the purely digital blocks.
``repro.functional_test``
    Functional ADC test baseline (ramp/histogram linearity, sine-fit ENOB,
    servo loop, specification-based detection).
``repro.analysis``
    Monte Carlo driver, statistics helpers and the yield-loss-versus-k model.
``repro.engine``
    Campaign-execution engine: task graphs, serial/multiprocess backends,
    deterministic per-task seeding, content-addressed result caching, the
    declarative study layer (``StudySpec`` documents compiled against a
    stage registry) and the ``repro-campaign`` CLI (``repro-campaign run
    STUDY.toml``).

Quickstart
----------
>>> import numpy as np
>>> from repro.adc import SarAdc
>>> from repro.core import calibrate_windows, run_symbist
>>> calibration = calibrate_windows(n_monte_carlo=25,
...                                 rng=np.random.default_rng(0))
>>> adc = SarAdc()
>>> result = run_symbist(adc, calibration.deltas)
>>> result.passed
True

Scaling campaigns
-----------------
Every heavyweight workload (window calibration, defect campaigns, Monte
Carlo analyses, the yield-loss sweep) routes through the campaign engine and
accepts ``backend=`` / ``cache=`` arguments:

>>> from repro.engine import MultiprocessBackend, ResultCache
>>> backend = MultiprocessBackend(max_workers=4)        # shard over 4 procs
>>> cache = ResultCache(".repro-cache", namespace="calibration")
>>> calibration = calibrate_windows(n_monte_carlo=25,
...                                 rng=np.random.default_rng(0),
...                                 backend=backend, cache=cache)

Each unit of work (one defect injection + test, one Monte Carlo sample, one
``(k, yield)`` point) is a :class:`~repro.engine.Task` with its own
``np.random.SeedSequence`` child, so results are byte-identical whatever the
worker count or completion order; cached artifacts are keyed by task spec +
seed + library version, so repeated runs are near-free.  The same machinery
is available from the shell as ``repro-campaign`` (see
:mod:`repro.engine.cli`), e.g.::

    repro-campaign campaign --workers 4 --cache-dir .repro-cache
"""

from . import (adc, analysis, circuit, core, defects, digital, engine,
               functional_test)
from .adc import SarAdc
from .circuit import ReproError
from .core import (SymBistController, SymBistResult, SymBistStimulus,
                   WindowCalibration, calibrate_windows, run_symbist)
from .defects import DefectCampaign, SamplingPlan, build_defect_universe
from .engine import (CampaignEngine, CampaignReport, MultiprocessBackend,
                     ResultCache, SerialBackend, Task, TaskGraph)

__version__ = "1.1.0"

__all__ = [
    "CampaignEngine", "CampaignReport", "DefectCampaign",
    "MultiprocessBackend", "ReproError", "ResultCache", "SamplingPlan",
    "SarAdc", "SerialBackend", "SymBistController", "SymBistResult",
    "SymBistStimulus", "Task", "TaskGraph", "WindowCalibration",
    "__version__", "adc", "analysis", "build_defect_universe",
    "calibrate_windows", "circuit", "core", "defects", "digital", "engine",
    "functional_test", "run_symbist",
]
