"""SymBIST reproduction: symmetry-based A/M-S BIST on a behavioral SAR ADC IP.

Reproduction of "Symmetry-based A/M-S BIST (SymBIST): Demonstration on a SAR
ADC IP" (Pavlidis, Louerat, Faehn, Kumar, Stratigopoulos -- DATE 2020).

Subpackages
-----------
``repro.circuit``
    Behavioral circuit-simulation substrate: devices, netlists, nodal solver,
    cycle-based transient engine, process variations.
``repro.adc``
    The device under test: a structural + behavioral model of the 65 nm
    10-bit SAR ADC IP (bandgap, reference buffer, sub-DACs, SC array,
    comparator chain, Vcm generator, SAR logic / control).
``repro.core``
    The paper's contribution: the six invariances, the clocked window
    comparator, the counter stimulus, the BIST controller, delta = k*sigma
    calibration, test-time and area models.
``repro.defects``
    Defect model, defect-universe extraction, likelihood weighting, LWRS
    sampling, campaign runner, likelihood-weighted coverage (Table I).
``repro.digital``
    Gate-level substrate and standard digital BIST (scan, ATPG, LFSR/MISR)
    for the purely digital blocks.
``repro.functional_test``
    Functional ADC test baseline (ramp/histogram linearity, sine-fit ENOB,
    servo loop, specification-based detection).
``repro.analysis``
    Monte Carlo driver, statistics helpers and the yield-loss-versus-k model.

Quickstart
----------
>>> import numpy as np
>>> from repro.adc import SarAdc
>>> from repro.core import calibrate_windows, run_symbist
>>> calibration = calibrate_windows(n_monte_carlo=25,
...                                 rng=np.random.default_rng(0))
>>> adc = SarAdc()
>>> result = run_symbist(adc, calibration.deltas)
>>> result.passed
True
"""

from . import adc, analysis, circuit, core, defects, digital, functional_test
from .adc import SarAdc
from .circuit import ReproError
from .core import (SymBistController, SymBistResult, SymBistStimulus,
                   WindowCalibration, calibrate_windows, run_symbist)
from .defects import DefectCampaign, SamplingPlan, build_defect_universe

__version__ = "1.0.0"

__all__ = [
    "DefectCampaign", "ReproError", "SamplingPlan", "SarAdc",
    "SymBistController", "SymBistResult", "SymBistStimulus",
    "WindowCalibration", "__version__", "adc", "analysis",
    "build_defect_universe", "calibrate_windows", "circuit", "core",
    "defects", "digital", "functional_test", "run_symbist",
]
