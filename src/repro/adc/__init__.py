"""Behavioral model of the 65 nm 10-bit SAR ADC IP (the SymBIST demonstrator).

The package mirrors the block diagram of the paper (Figs. 2-4): the top-level
:class:`SarAdc` composes the bandgap, the reference buffer, the SAR control
and the SARCELL; the SARCELL composes the 10-bit DAC (two 5-bit sub-DACs plus
the switched-capacitor array), the comparator chain (pre-amplifier, comparator
latch, RS latch, offset compensation), the Vcm generator, the phase generator
and the SAR logic.  Every analog block couples a structural netlist (the
defect surface) with a behavioral evaluation.
"""

from .bandgap import Bandgap, BandgapOutput
from .behavioral import (MosState, PassiveState, StageEffect, combine_effects,
                         diff_stage_effect, effective_capacitance,
                         effective_resistance, mos_state, passive_state,
                         switch_state)
from .block import AnalogBlock
from .comparator import (Comparator, ComparatorLatch, ComparatorOutput,
                         LatchOutput, OffsetCompensation, Preamplifier,
                         PreampOutput, RsLatch)
from .dac import DacOutput, TenBitDac, split_code
from .phase_generator import CYCLES_PER_CONVERSION, Phase, PhaseGenerator
from .reference_buffer import ReferenceBuffer
from .sar_adc import (DEFAULT_TEST_INPUT_DIFF, DutAdcFactory,
                      OperatingPoint, SarAdc)
from .sar_control import N_PULSES, SarControl
from .sar_logic import SarLogic
from .sarcell import SarCell, SarCellOutputs
from .sc_array import ScArray, ScArrayInputs, ScArrayOutput
from .spec import AdcSpecification, MeasuredPerformance, check_specification
from .subdac import SubDac, SubDacOutput, make_subdac1, make_subdac2
from .vcm_generator import VcmGenerator

__all__ = [
    "AnalogBlock", "AdcSpecification", "Bandgap", "BandgapOutput",
    "CYCLES_PER_CONVERSION", "Comparator", "ComparatorLatch",
    "ComparatorOutput", "DEFAULT_TEST_INPUT_DIFF", "DacOutput",
    "DutAdcFactory", "LatchOutput",
    "MeasuredPerformance", "MosState", "N_PULSES", "OffsetCompensation",
    "OperatingPoint", "PassiveState", "Phase", "PhaseGenerator",
    "Preamplifier", "PreampOutput", "ReferenceBuffer", "RsLatch", "SarAdc",
    "SarCell", "SarCellOutputs", "SarControl", "SarLogic", "ScArray",
    "ScArrayInputs", "ScArrayOutput", "StageEffect", "SubDac", "SubDacOutput",
    "TenBitDac", "VcmGenerator", "check_specification", "combine_effects",
    "diff_stage_effect", "effective_capacitance", "effective_resistance",
    "make_subdac1", "make_subdac2", "mos_state", "passive_state",
    "split_code", "switch_state",
]
