"""Bandgap reference -- the bias generator of the SAR ADC IP.

Paper context (Section III): "Bandgap: It creates the required biasing for all
ADC blocks."  The bandgap output feeds the reference buffer (which derives the
``VREF<0:32>`` ladder), the Vcm generator and the comparator bias, which is
why defects inside it are observable through the SymBIST invariances even
though no invariance taps the bandgap directly: a shifted bandgap voltage
moves Vcm (invariance Eq. (3)) and a collapsed bias current kills the
pre-amplifier common mode and the latch (invariances Eqs. (4)-(5)).

The model is a classic first-order bandgap:

``V_BG = V_BE + (R2 / R1) * V_T * ln(N)``

with ``N`` the emitter-area ratio of the two bipolars, implemented around a
differential amplifier and PMOS mirror.  The structural netlist contains the
two PNPs, three resistors and eight MOS devices; defects are translated into
shifts of ``V_BG`` and of the bias current through the resistor network
equations and the amplifier defect mapping of :mod:`repro.adc.behavioral`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..dut import DutSpec, default_dut
from .behavioral import (MosState, PassiveState, combine_effects,
                         diff_stage_effect, mos_state, passive_state)
from .block import AnalogBlock

#: Thermal voltage at room temperature.
_VT = 0.02585
#: Emitter-area ratio between the two bandgap bipolars.
_AREA_RATIO = 8.0
#: Nominal base-emitter voltage of the unit bipolar.
_VBE_NOMINAL = 0.65


@dataclass
class BandgapOutput:
    """Outputs of the bandgap block.

    Attributes
    ----------
    vbg:
        Bandgap reference voltage (nominally ~1.2 V, here scaled so that the
        derived full-scale reference equals the supply).
    ibias:
        Master bias current distributed to the analog blocks, in amperes.
    """

    vbg: float
    ibias: float


class Bandgap(AnalogBlock):
    """Behavioral bandgap reference with a structural defect surface."""

    block_path = "bandgap"

    #: Nominal bandgap voltage targeted by the design (scaled to VDD here so
    #: that the reference-buffer full scale is rail-to-rail, as is common for
    #: low-voltage SAR ADC references).
    VBG_NOMINAL = 1.2
    #: Nominal master bias current.
    IBIAS_NOMINAL = 20e-6

    def __init__(self, name: str = "bandgap",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        # Nominal output / bias of *this instance*: the class attributes
        # above describe the paper's device, the DutSpec the variant's.
        self.vbg_nominal = self.dut.vbg
        self.ibias_nominal = self.dut.ibias
        # The resistor-network model is dimensioned for the paper's 1.2 V /
        # 20 uA operating point; a variant retargets it through a trim shift
        # and a bias scale (both exactly neutral at the defaults).
        self._vbg_shift = self.dut.vbg - type(self).VBG_NOMINAL
        self._ibias_scale = self.dut.ibias / type(self).IBIAS_NOMINAL
        nl = self.netlist
        # Bipolar core: Q1 (unit area) and Q2 (N x area) with the PTAT resistor.
        nl.add_pnp("q1", c="vss", b="vss", e="ve1", area=1.0)
        nl.add_pnp("q2", c="vss", b="vss", e="ve2", area=_AREA_RATIO)
        nl.add_resistor("r1", p="vx2", n="ve2", value=20e3)     # PTAT resistor
        nl.add_resistor("r2", p="vbg", n="vx2", value=204.6e3)  # gain resistor
        nl.add_resistor("r3", p="vbg", n="ibias_node", value=60e3)  # I_bias set
        # Error amplifier (differential pair + mirror) and output / mirror PMOS.
        # The amplifier and mirror devices are drawn long and wide for matching
        # and low flicker noise, so their area (and defect likelihood) is
        # large compared to digital-style devices elsewhere in the IP.
        nl.add_nmos("mn_in_p", d="na", g="ve1", s="ntail", w=8e-6, l=0.4e-6)
        nl.add_nmos("mn_in_n", d="nb", g="vx2", s="ntail", w=8e-6, l=0.4e-6)
        nl.add_nmos("mn_tail", d="ntail", g="nbias", s="vss", w=10e-6, l=0.4e-6)
        nl.add_pmos("mp_load_p", d="na", g="na", s="vdd", w=12e-6, l=0.5e-6)
        nl.add_pmos("mp_load_n", d="nb", g="na", s="vdd", w=12e-6, l=0.5e-6)
        nl.add_pmos("mp_out", d="vbg", g="nb", s="vdd", w=16e-6, l=0.5e-6)
        nl.add_pmos("mp_mirror", d="ibias_out", g="nb", s="vdd", w=16e-6,
                    l=0.5e-6)
        nl.add_nmos("mn_start", d="nbias", g="vbg", s="vss", w=2e-6)

        # Behavioral parameters subject to process variation.
        self.declare_parameter("vbe", _VBE_NOMINAL, sigma=2e-3)
        self.declare_parameter("vbg_trim", 0.0, sigma=1.5e-3)
        self.declare_parameter("ibias_mismatch", 1.0, sigma=0.005)

    # ------------------------------------------------------------------ model
    def evaluate(self) -> BandgapOutput:
        """Compute the bandgap voltage and bias current, defects included."""
        nl = self.netlist
        vbe = self.parameter("vbe")
        trim = self.parameter("vbg_trim")

        # Effective resistor values (defects map to short / open / +-50 %).
        r1_state, r1 = passive_state(nl.device("r1"))
        r2_state, r2 = passive_state(nl.device("r2"))
        r3_state, r3 = passive_state(nl.device("r3"))

        # Bipolar defects.
        q1, q2 = nl.device("q1"), nl.device("q2")
        vbe_eff = vbe
        ptat_scale = 1.0
        core_dead = False
        for q, is_unit in ((q1, True), (q2, False)):
            defect = q.defect
            if defect.is_clean:
                continue
            pair = defect.shorted_terminals
            if pair is not None:
                terms = set(pair)
                if terms == {"b", "e"}:
                    # Base-emitter short removes the junction voltage.
                    if is_unit:
                        vbe_eff = 0.05
                    else:
                        ptat_scale = 0.0
                elif terms == {"c", "e"}:
                    core_dead = True
                else:  # collector-base short: diode-connected, degraded PTAT
                    ptat_scale *= 0.6
            elif defect.open_terminal is not None:
                if defect.open_terminal == "e":
                    core_dead = True
                else:
                    ptat_scale *= 0.3

        # PTAT term through the resistor ratio.
        if r1_state is PassiveState.SHORTED:
            ptat = 0.0 if r1 <= 0 else (r2 / max(r1, 1e-3)) * _VT * math.log(_AREA_RATIO)
            ptat = min(ptat, self.dut.vdd)  # ratio explodes -> output saturates
        elif r1_state is PassiveState.OPEN:
            ptat = 0.0
            core_dead = True
        else:
            if r2_state is PassiveState.SHORTED:
                ptat = 0.0
            elif r2_state is PassiveState.OPEN:
                # Feedback broken: output runs to the supply.
                return self._railed_output(self.dut.vdd)
            else:
                ptat = (r2 / r1) * _VT * math.log(_AREA_RATIO) * ptat_scale

        # Error amplifier / mirror defects.
        # mp_mirror only feeds the distributed bias branch; its defects are
        # handled separately below and must not disturb the core loop.
        roles = {
            "mn_in_p": "input_pos", "mn_in_n": "input_neg",
            "mn_tail": "tail", "mp_load_p": "load_pos",
            "mp_load_n": "load_neg", "mp_out": "bias",
            "mn_start": "bias",
        }
        effects = []
        for dev_name, role in roles.items():
            dev = nl.device(dev_name)
            if dev.has_defect:
                effects.append(diff_stage_effect(role, dev,
                                                 vdd=self.dut.vdd,
                                                 severity=0.5))
        amp = combine_effects(effects)

        if core_dead or amp.bias_scale == 0.0:
            return self._railed_output(self.dut.vss if core_dead
                                        else self.dut.vdd)

        vbg = (vbe_eff + ptat) * amp.gain_scale ** 0.1 + amp.offset * 0.2 \
            + amp.cm_shift * 0.5 + trim + self._vbg_shift
        vbg = min(max(vbg, 0.0), self.dut.vdd * 1.05)

        # The master bias current mirrors vbg across R3.
        if r3_state is PassiveState.OPEN:
            ibias = 0.0
        elif r3_state is PassiveState.SHORTED:
            ibias = self.ibias_nominal * 5.0
        else:
            ibias = (vbg / r3) * self.parameter("ibias_mismatch") \
                * amp.bias_scale * self._ibias_scale
        # mp_mirror stuck off kills the distributed bias even if vbg is fine.
        if mos_state(nl.device("mp_mirror")) is MosState.STUCK_OFF:
            ibias = 0.0

        return BandgapOutput(vbg=vbg, ibias=max(ibias, 0.0))

    def _railed_output(self, rail: float) -> BandgapOutput:
        """Output when the core is dead or the loop has run away."""
        ibias = 0.0 if rail <= 0.1 else self.ibias_nominal * 3.0
        return BandgapOutput(vbg=rail, ibias=ibias)

    # -------------------------------------------------------------- observers
    def observables(self) -> Dict[str, float]:
        """Signals exported to the waveform recorder."""
        out = self.evaluate()
        return {"VBG": out.vbg, "IBIAS": out.ibias}
