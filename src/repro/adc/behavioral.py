"""Mapping from structural device defects to behavioral block parameters.

The SAR ADC blocks in this package are *behavioral* models sitting on top of
*structural* netlists: every block owns a
:class:`~repro.circuit.netlist.Netlist` of primitive devices and, when it is
evaluated, it converts the defect state of those devices into changes of its
behavioral parameters (gain loss, offsets, stuck nodes, missing ladder taps,
switch stuck-on/off, ...).

This module collects the generic pieces of that translation so that every
block uses the same conventions:

* :func:`mos_state` classifies the defect of a MOS transistor into a small set
  of behavioral conduction states,
* :func:`switch_state` decides whether a (MOS) switch is effectively on or off
  given its intended control value,
* :func:`passive_state` returns the effective electrical role of a resistor or
  capacitor (value, shorted, or open),
* :class:`StageEffect` accumulates the behavioral consequences of several
  device defects inside one amplifier/buffer stage.

The mappings are deliberately conservative and documented: they follow the
standard reasoning used in defect-oriented A/M-S test (a drain-source short
makes the device permanently conducting, an open terminal removes it from the
circuit, a gate-source short turns an enhancement device off, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Tuple

from ..circuit.components import Device, DeviceKind, PullDirection
from ..circuit.errors import DefectError
from ..circuit.units import VDD, VSS


class MosState(str, Enum):
    """Behavioral conduction state of a (possibly defective) MOS transistor."""

    NORMAL = "normal"          # defect-free, or a defect with negligible effect
    STUCK_ON = "stuck_on"      # permanently conducting (e.g. drain-source short)
    STUCK_OFF = "stuck_off"    # permanently off (open drain/source, gate-source short)
    DEGRADED = "degraded"      # still works but with altered strength / leakage


class PassiveState(str, Enum):
    """Effective electrical role of a (possibly defective) passive device."""

    VALUE = "value"    # behaves as a resistor/capacitor with ``effective_value``
    SHORTED = "shorted"
    OPEN = "open"


def mos_state(device: Device) -> MosState:
    """Classify the behavioral effect of the defect injected into a MOS device.

    The classification follows the usual defect-oriented reasoning:

    * ``d``-``s`` short: channel permanently conducting -> ``STUCK_ON``;
    * ``g``-``s`` short: V_gs = 0 for an enhancement device -> ``STUCK_OFF``;
    * ``g``-``d`` short: diode-connected -> ``DEGRADED`` (still conducts);
    * bulk shorts: forward-biased junctions / body effect -> ``DEGRADED``;
    * ``d`` or ``s`` open: device removed from the signal path -> ``STUCK_OFF``;
    * ``g`` open: gate floats to the weak pull -> ``STUCK_ON`` when the pull
      direction turns the device on, ``STUCK_OFF`` otherwise, ``DEGRADED``
      when no pull is recorded;
    * ``b`` open: body floats -> ``DEGRADED``.
    """
    if device.kind not in (DeviceKind.NMOS, DeviceKind.PMOS):
        raise DefectError(f"mos_state() expects an NMOS/PMOS, got {device.kind}")
    defect = device.defect
    if defect.is_clean:
        return MosState.NORMAL

    pair = defect.shorted_terminals
    if pair is not None:
        terms = set(pair)
        if terms == {"d", "s"}:
            return MosState.STUCK_ON
        if terms == {"g", "s"}:
            return MosState.STUCK_OFF
        if terms == {"g", "d"}:
            return MosState.DEGRADED
        # any short involving the bulk
        return MosState.DEGRADED

    term = defect.open_terminal
    if term in ("d", "s"):
        return MosState.STUCK_OFF
    if term == "g":
        pull = defect.open_pull
        if pull is None:
            return MosState.DEGRADED
        turns_on = (pull is PullDirection.UP) == (device.kind is DeviceKind.NMOS)
        return MosState.STUCK_ON if turns_on else MosState.STUCK_OFF
    if term == "b":
        return MosState.DEGRADED
    return MosState.NORMAL


def switch_state(device: Device, nominal_on: bool) -> bool:
    """Return whether a switch effectively conducts given its intended state.

    ``device`` may be a :data:`DeviceKind.SWITCH` or a MOS transistor used as
    a switch.  The mapping is:

    * ``p``-``n`` (or ``d``-``s``) short: always on;
    * ``p``/``n`` (or ``d``/``s``) open: always off;
    * control terminal shorted to a signal terminal: control corrupted, the
      switch follows the signal and is treated as stuck on;
    * control terminal open: the gate floats to the weak pull -- stuck on when
      the pull direction closes the switch, stuck off otherwise (stuck off
      when no pull is recorded);
    * passive-value defects do not apply to switches.
    """
    if device.kind is DeviceKind.SWITCH:
        signal_terms, ctrl_term = ("p", "n"), "ctrl"
    elif device.kind in (DeviceKind.NMOS, DeviceKind.PMOS):
        signal_terms, ctrl_term = ("d", "s"), "g"
    else:
        raise DefectError(
            f"switch_state() expects a switch or MOS device, got {device.kind}")

    defect = device.defect
    if defect.is_clean:
        return nominal_on

    pair = defect.shorted_terminals
    if pair is not None:
        terms = set(pair)
        if terms == set(signal_terms):
            return True
        if ctrl_term in terms:
            return True
        return nominal_on  # e.g. bulk short on a MOS switch: keeps switching

    term = defect.open_terminal
    if term in signal_terms:
        return False
    if term == ctrl_term:
        pull = defect.open_pull
        if pull is None:
            return False
        closes = (pull is PullDirection.UP)
        if device.kind is DeviceKind.PMOS:
            closes = not closes
        return closes
    return nominal_on


def switch_conductance(device: Device, nominal_on: bool,
                       ron_nominal: float) -> float:
    """Conductance contributed by a (possibly defective) tap/sampling switch.

    A switch that is effectively off (see :func:`switch_state`) contributes
    zero conductance; an effectively-on switch contributes ``1 / ron`` with
    the on-resistance read from the device parameters (falling back to
    ``ron_nominal``) and floored at 1 mOhm.  This is the shared arithmetic of
    every conductance-weighted multiplexer/sampler in the ADC model, kept in
    one place so the scalar and the batched evaluation paths agree
    bit-for-bit.
    """
    if not switch_state(device, nominal_on):
        return 0.0
    ron = float(device.params.get("ron", ron_nominal))
    return 1.0 / max(ron, 1e-3)


def passive_state(device: Device) -> Tuple[PassiveState, float]:
    """Return the effective role and value of a resistor or capacitor.

    The returned value is the defect-scaled value for ``VALUE`` devices, the
    short resistance for ``SHORTED`` devices and the open resistance for
    ``OPEN`` devices (callers that model capacitors typically treat ``OPEN``
    as "capacitance removed" and ``SHORTED`` as "top and bottom plate tied").
    """
    if not device.kind.is_passive:
        raise DefectError(
            f"passive_state() expects a resistor/capacitor, got {device.kind}")
    defect = device.defect
    if defect.shorted_terminals is not None:
        return PassiveState.SHORTED, defect.short_resistance
    if defect.open_terminal is not None:
        return PassiveState.OPEN, defect.open_resistance
    return PassiveState.VALUE, device.effective_value()


def effective_resistance(device: Device) -> float:
    """Resistance presented by a (possibly defective) resistor."""
    state, value = passive_state(device)
    if state is PassiveState.VALUE:
        return value
    return value  # short resistance or open resistance


def effective_capacitance(device: Device) -> Tuple[float, bool]:
    """Capacitance presented by a (possibly defective) capacitor.

    Returns ``(capacitance, plates_shorted)``.  An open capacitor contributes
    zero capacitance; a shorted capacitor keeps its value but ties its plates
    (the caller must honour the ``plates_shorted`` flag).
    """
    state, value = passive_state(device)
    if state is PassiveState.OPEN:
        return 0.0, False
    if state is PassiveState.SHORTED:
        return device.effective_value(), True
    return value, False


@dataclass
class StageEffect:
    """Aggregate behavioral effect of defects inside one amplifier stage.

    Attributes
    ----------
    gain_scale:
        Multiplicative change of the stage differential gain (1.0 = nominal).
    offset:
        Additional input-referred offset in volts.
    cm_shift:
        Shift of the stage output common-mode voltage in volts.
    stuck_positive / stuck_negative:
        When not ``None``, the positive / negative output is stuck at the
        given voltage regardless of the input.
    bias_scale:
        Multiplicative change of the stage bias current (propagates to speed
        and, for the behavioral model, to gain and common mode).
    """

    gain_scale: float = 1.0
    offset: float = 0.0
    cm_shift: float = 0.0
    stuck_positive: Optional[float] = None
    stuck_negative: Optional[float] = None
    bias_scale: float = 1.0

    def combine(self, other: "StageEffect") -> "StageEffect":
        """Merge two effects (used when several devices are defective)."""
        return StageEffect(
            gain_scale=self.gain_scale * other.gain_scale,
            offset=self.offset + other.offset,
            cm_shift=self.cm_shift + other.cm_shift,
            stuck_positive=(other.stuck_positive
                            if other.stuck_positive is not None
                            else self.stuck_positive),
            stuck_negative=(other.stuck_negative
                            if other.stuck_negative is not None
                            else self.stuck_negative),
            bias_scale=self.bias_scale * other.bias_scale,
        )

    @property
    def is_nominal(self) -> bool:
        return (self.gain_scale == 1.0 and self.offset == 0.0
                and self.cm_shift == 0.0 and self.stuck_positive is None
                and self.stuck_negative is None and self.bias_scale == 1.0)


#: Roles a MOS transistor can play inside a differential amplifier stage.
#: Used by :func:`diff_stage_effect` to translate a device defect into a
#: :class:`StageEffect`.
DIFF_STAGE_ROLES = (
    "input_pos",    # input device of the positive half
    "input_neg",    # input device of the negative half
    "load_pos",     # load / mirror device of the positive half
    "load_neg",     # load / mirror device of the negative half
    "tail",         # tail current source
    "bias",         # bias distribution device
)


def _bulk_short_effect(role: str, device: Device, half: Optional[str],
                       vdd: float) -> Optional[StageEffect]:
    """Effect of a short involving the bulk terminal, resolved per role.

    In the stages modelled here the NMOS bulks sit at ground and the PMOS
    bulks at the supply, so most bulk shorts are catastrophic rather than
    benign: a drain-bulk short ties the output node to that rail, a gate-bulk
    short switches the device permanently off, and a source-bulk short on an
    input device grounds the tail node.  Only the source-bulk short of a
    device whose source already sits at its bulk potential is benign.
    """
    pair = device.defect.shorted_terminals
    if pair is None or "b" not in pair:
        return None
    terms = set(pair)
    is_nmos = device.kind is DeviceKind.NMOS
    bulk_rail = VSS if is_nmos else vdd

    if role.startswith("input"):
        if terms == {"d", "b"}:
            stuck = {"stuck_positive": bulk_rail} if half == "pos" else \
                    {"stuck_negative": bulk_rail}
            return StageEffect(gain_scale=0.2, **stuck)
        if terms == {"g", "b"}:
            # Gate tied to the bulk rail: the device is off, its output rails.
            stuck = {"stuck_positive": vdd} if half == "pos" else \
                    {"stuck_negative": vdd}
            return StageEffect(gain_scale=0.0, **stuck)
        if terms == {"s", "b"}:
            # The common source (tail) node is tied to the bulk rail: the tail
            # current source is bypassed and the common mode collapses.
            return StageEffect(gain_scale=0.5, cm_shift=-0.3 * vdd,
                               bias_scale=2.0)
    elif role.startswith("load"):
        if terms == {"d", "b"}:
            stuck = {"stuck_positive": bulk_rail} if half == "pos" else \
                    {"stuck_negative": bulk_rail}
            return StageEffect(gain_scale=0.2, **stuck)
        if terms == {"g", "b"}:
            stuck = {"stuck_positive": VSS} if half == "pos" else \
                    {"stuck_negative": VSS}
            return StageEffect(gain_scale=0.2, **stuck)
        if terms == {"s", "b"}:
            return StageEffect()  # source already at the bulk rail: benign
    elif role in ("tail", "bias"):
        if terms == {"d", "b"}:
            # The tail node is tied to the bulk rail: current runs away.
            return StageEffect(gain_scale=0.5, cm_shift=-0.3 * vdd,
                               bias_scale=2.0)
        if terms == {"g", "b"}:
            return StageEffect(gain_scale=0.0, bias_scale=0.0,
                               stuck_positive=vdd, stuck_negative=vdd)
        if terms == {"s", "b"}:
            return StageEffect()  # benign
    return None


def diff_stage_effect(role: str, device: Device, vdd: float = VDD,
                      severity: float = 1.0) -> StageEffect:
    """Behavioral effect of one defective MOS inside a differential stage.

    ``severity`` scales the magnitude of offset / common-mode shifts and is
    used by blocks to reflect device sizing.
    """
    if role not in DIFF_STAGE_ROLES:
        raise DefectError(f"unknown differential-stage role {role!r}")
    state = mos_state(device)
    if state is MosState.NORMAL:
        return StageEffect()

    half = "pos" if role.endswith("_pos") else "neg" if role.endswith("_neg") else None

    bulk_effect = _bulk_short_effect(role, device, half, vdd)
    if bulk_effect is not None:
        return bulk_effect

    if role == "tail":
        if state is MosState.STUCK_OFF:
            # No bias current: both outputs collapse to the supply through the
            # loads, the stage has no gain.
            return StageEffect(gain_scale=0.0, bias_scale=0.0,
                               stuck_positive=vdd, stuck_negative=vdd)
        if state is MosState.STUCK_ON:
            # Tail behaves like a short: current roughly doubles, the common
            # mode drops and the gain degrades.
            return StageEffect(gain_scale=0.5 * severity if severity < 1 else 0.5,
                               bias_scale=2.0, cm_shift=-0.25 * vdd * severity)
        return StageEffect(gain_scale=0.8, bias_scale=0.8,
                           cm_shift=-0.05 * vdd * severity)

    if role == "bias":
        if state is MosState.STUCK_OFF:
            return StageEffect(gain_scale=0.0, bias_scale=0.0,
                               stuck_positive=vdd, stuck_negative=vdd)
        if state is MosState.STUCK_ON:
            return StageEffect(gain_scale=0.6, bias_scale=1.8,
                               cm_shift=-0.2 * vdd * severity)
        return StageEffect(gain_scale=0.85, bias_scale=0.85)

    if role.startswith("input"):
        if state is MosState.STUCK_OFF:
            # One input device gone: all the tail current flows in the other
            # half, the dead half output goes to the supply.
            stuck = {"stuck_positive": vdd} if half == "pos" else \
                    {"stuck_negative": vdd}
            return StageEffect(gain_scale=0.0, offset=0.3 * severity, **stuck)
        if state is MosState.STUCK_ON:
            sign = 1.0 if half == "pos" else -1.0
            return StageEffect(gain_scale=0.3,
                               offset=sign * 0.2 * severity,
                               cm_shift=-0.1 * vdd * severity)
        sign = 1.0 if half == "pos" else -1.0
        return StageEffect(gain_scale=0.8, offset=sign * 0.02 * severity)

    # load_pos / load_neg
    if state is MosState.STUCK_OFF:
        stuck = {"stuck_positive": VSS} if half == "pos" else \
                {"stuck_negative": VSS}
        return StageEffect(gain_scale=0.2, **stuck)
    if state is MosState.STUCK_ON:
        stuck = {"stuck_positive": vdd} if half == "pos" else \
                {"stuck_negative": vdd}
        return StageEffect(gain_scale=0.2, **stuck)
    sign = 1.0 if half == "pos" else -1.0
    return StageEffect(gain_scale=0.85, offset=sign * 0.015 * severity,
                       cm_shift=0.03 * vdd * severity * sign)


def combine_effects(effects: Iterable[StageEffect]) -> StageEffect:
    """Fold an iterable of :class:`StageEffect` into one."""
    total = StageEffect()
    for effect in effects:
        total = total.combine(effect)
    return total
