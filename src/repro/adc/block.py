"""Base class shared by all analog / mixed-signal blocks of the SAR ADC IP.

An :class:`AnalogBlock` couples a *structural* netlist (the surface on which
the defect model enumerates and injects defects) with a *behavioral*
evaluation implemented by the concrete subclasses in this package.  The base
class provides the common plumbing: access to the netlist, defect clearing,
and per-block Monte Carlo process-variation sampling built from
:class:`~repro.circuit.variation.GaussianParameter` declarations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuit.netlist import Netlist
from ..circuit.variation import GaussianParameter, VariationSpec, vary_netlist


class AnalogBlock:
    """Common behaviour of the behavioral A/M-S blocks.

    Subclasses must populate ``self.netlist`` in their constructor and may
    register behavioral Gaussian parameters with :meth:`declare_parameter`.
    """

    #: Hierarchy path used when the block registers into the IP hierarchy.
    block_path: str = "block"

    def __init__(self, name: str) -> None:
        self.name = name
        self.netlist = Netlist(name)
        self._parameters: Dict[str, GaussianParameter] = {}
        self._sampled: Dict[str, float] = {}

    # ----------------------------------------------------------- parameters
    def declare_parameter(self, name: str, nominal: float,
                          sigma: float) -> GaussianParameter:
        """Register a behavioral parameter subject to process variation."""
        param = GaussianParameter(name=f"{self.name}.{name}", nominal=nominal,
                                  sigma=sigma)
        self._parameters[name] = param
        self._sampled[name] = nominal
        return param

    def parameter(self, name: str) -> float:
        """Current (possibly Monte-Carlo-sampled) value of a parameter."""
        return self._sampled[name]

    def set_parameter(self, name: str, value: float) -> None:
        """Override a behavioral parameter (used by tests and what-if studies)."""
        if name not in self._parameters:
            raise KeyError(f"block {self.name!r} has no parameter {name!r}")
        self._sampled[name] = float(value)

    def override_nominal(self, name: str, value: float) -> None:
        """Retarget a parameter's *nominal* (design) value.

        Unlike :meth:`set_parameter`, the override survives
        :meth:`reset_variation` and recentres Monte Carlo draws, which is
        what a ``DutSpec`` per-block parameter override means: the variant's
        design value differs, not one sampled instance.
        """
        if name not in self._parameters:
            raise KeyError(
                f"block {self.name!r} has no parameter {name!r}; available: "
                f"{sorted(self._parameters)}")
        self._parameters[name].nominal = float(value)
        self._sampled[name] = float(value)

    @property
    def parameter_names(self) -> List[str]:
        return list(self._parameters.keys())

    def variation_state(self) -> Dict[str, float]:
        """Current sampled values of every behavioral parameter.

        Used (together with the structural netlist) to fingerprint the IP
        state for campaign result caching.
        """
        return dict(self._sampled)

    # -------------------------------------------------------------- variation
    def sample_variation(self, rng: np.random.Generator,
                         spec: Optional[VariationSpec] = None) -> None:
        """Apply one Monte Carlo draw to this block.

        Passive devices of the structural netlist get value-scale draws and
        every declared behavioral parameter is re-sampled from its Gaussian.
        """
        vary_netlist(self.netlist, rng, spec)
        for name, param in self._parameters.items():
            self._sampled[name] = param.sample(rng)

    def reset_variation(self) -> None:
        """Return all behavioral parameters to their nominal values."""
        for name, param in self._parameters.items():
            self._sampled[name] = param.nominal

    # ----------------------------------------------------------- defect state
    def clear_defects(self) -> None:
        """Remove any injected defect from this block's devices."""
        self.netlist.clear_defects()

    @property
    def has_defect(self) -> bool:
        return self.netlist.has_defect

    @property
    def device_count(self) -> int:
        return len(self.netlist)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"devices={self.device_count})")
