"""Comparator chain: pre-amplifier, comparator latch, RS latch, offset compensation.

Paper context (Section III): "Comparator: It compares the two outputs of the
DAC and the outcome of the comparison is driven to the SAR Logic block in
order to set the corresponding digital bit.  It comprises a pre-amplifier, a
comparator latch, an RS latch, and an offset compensation circuit for the
pre-amplifier."  Table I of the paper reports defect coverage for each of the
four pieces separately, so each is modelled as its own block here.

SymBIST observes the chain through three invariances (Eqs. (4)-(5)):

* ``LIN+ + LIN- = 2*Vcm2`` -- the pre-amplifier is fully differential, so its
  output common mode is constant;
* ``sgn(Q+ - Q-) = sgn(LIN+ - LIN-)`` -- the latched decision must agree with
  the pre-amplifier polarity;
* ``Q+ + Q- = VDD`` -- the latch outputs are complementary.

The pre-amplifier output saturation is modelled with an odd (tanh) limiter, so
the common-mode invariance holds by construction even when the outputs clip,
exactly like a well-designed fully-differential stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dut import DutSpec, default_dut
from .behavioral import (MosState, PassiveState, combine_effects,
                         diff_stage_effect, mos_state, passive_state,
                         switch_state)
from .block import AnalogBlock


@dataclass
class PreampOutput:
    """Fully-differential pre-amplifier outputs (``LIN+`` / ``LIN-``)."""

    lin_p: float
    lin_m: float

    @property
    def differential(self) -> float:
        return self.lin_p - self.lin_m

    @property
    def common_mode(self) -> float:
        return 0.5 * (self.lin_p + self.lin_m)


class OffsetCompensation(AnalogBlock):
    """Auto-zero network that cancels most of the pre-amplifier offset.

    Structure: two storage capacitors and two sampling switches.  The benign
    defects (capacitor opens and value deviations, stuck-open switches) merely
    disable the compensation and leave a small residual offset -- which no
    SymBIST invariance observes, because a pure differential offset does not
    move the output common mode nor break the decision/polarity consistency.
    Only the catastrophic defects (a shorted storage capacitor pinning one
    pre-amplifier output, a stuck-on switch leaking charge into the signal
    path) are observable.  This is the behaviour behind the very low
    likelihood-weighted coverage of the block in Table I of the paper.
    """

    block_path = "offset_compensation"

    #: Fraction of the raw pre-amplifier offset cancelled by the network.
    COMPENSATION_FACTOR = 0.95

    def __init__(self, name: str = "offset_compensation",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        nl = self.netlist
        nl.add_capacitor("c_az_p", p="az_p", n="preamp_out_p", value=1e-12)
        nl.add_capacitor("c_az_n", p="az_n", n="preamp_out_n", value=1e-12)
        nl.add_switch("sw_az_p", p="az_p", n="vcm2", ctrl="phi_az", ron=1e3)
        nl.add_switch("sw_az_n", p="az_n", n="vcm2", ctrl="phi_az", ron=1e3)
        self.declare_parameter("residual_offset", 0.0, sigma=0.2e-3)

    def evaluate(self) -> Tuple[float, float, Optional[str]]:
        """Return ``(compensation_factor, extra_offset, stuck_output)``.

        ``stuck_output`` identifies a pre-amplifier output pinned by a shorted
        auto-zero capacitor (``"p"`` or ``"n"``), or ``None``.
        """
        factor = self.COMPENSATION_FACTOR
        extra_offset = self.parameter("residual_offset")
        stuck: Optional[str] = None

        for side in ("p", "n"):
            cap = self.netlist.device(f"c_az_{side}")
            state, _ = passive_state(cap)
            if state is PassiveState.SHORTED:
                stuck = side
            elif state is PassiveState.OPEN:
                factor = 0.0
            elif cap.defect.value_scale != 1.0:
                factor = min(factor, 0.90)

            sw = self.netlist.device(f"sw_az_{side}")
            closed_during_az = switch_state(sw, nominal_on=True)
            closed_during_compare = switch_state(sw, nominal_on=False)
            if not closed_during_az:
                factor = 0.0
            if closed_during_compare:
                # The auto-zero switch leaks during the comparison and injects
                # charge into one side of the signal path.
                sign = 1.0 if side == "p" else -1.0
                extra_offset += sign * 0.08
        return factor, extra_offset, stuck


class Preamplifier(AnalogBlock):
    """Fully-differential pre-amplifier in front of the comparator latch."""

    block_path = "preamplifier"

    #: Nominal differential gain.
    GAIN_NOMINAL = 12.0
    #: Maximum single-ended output excursion around the common mode.
    SWING_LIMIT = 0.45

    def __init__(self, name: str = "preamplifier",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        nl = self.netlist
        # Matched input pair and tail source: large-area analog devices.
        nl.add_nmos("mn_in_p", d="out_n", g="dac_p", s="tail", w=12e-6,
                    l=0.25e-6)
        nl.add_nmos("mn_in_n", d="out_p", g="dac_m", s="tail", w=12e-6,
                    l=0.25e-6)
        nl.add_nmos("mn_tail", d="tail", g="nbias", s="vss", w=16e-6,
                    l=0.25e-6)
        nl.add_resistor("r_load_p", p="vdd", n="out_p", value=30e3)
        nl.add_resistor("r_load_n", p="vdd", n="out_n", value=30e3)

        self.declare_parameter("raw_offset", 0.0, sigma=4e-3)
        self.declare_parameter("vcm2", self.dut.vcm2, sigma=2e-3)
        self.declare_parameter("gain", self.GAIN_NOMINAL, sigma=0.4)

    # ------------------------------------------------------------------ model
    def evaluate(self, dac_p: float, dac_m: float, ibias: float,
                 offset_comp: OffsetCompensation) -> PreampOutput:
        """Amplify the DAC differential voltage into ``LIN+`` / ``LIN-``."""
        return self.sweep(((dac_p, dac_m),), ibias, offset_comp)[0]

    def sweep(self, pairs: "Sequence[Tuple[float, float]]", ibias: float,
              offset_comp: OffsetCompensation) -> "List[PreampOutput]":
        """Amplify many ``(dac_p, dac_m)`` pairs against one defect state.

        Everything except the final differential arithmetic -- the offset
        compensation, the bias point, and the structural stage effects -- is
        a pure function of the netlist state, the block parameters and
        ``ibias``, so it is resolved once for the whole sweep.  This is the
        pre-amplifier hot path of the batched defect evaluator.
        """
        comp_factor, extra_offset, stuck_side = offset_comp.evaluate()
        offset = self.parameter("raw_offset") * (1.0 - comp_factor) \
            + extra_offset

        # Bias-current dependence: the output common mode sits at
        # VDD - I*R/2 per side; losing the bias pushes both outputs to VDD.
        vdd = self.dut.vdd
        bias_ratio = max(ibias, 0.0) / self.dut.ibias
        vcm2 = vdd - bias_ratio * (vdd - self.parameter("vcm2"))
        gain = self.parameter("gain") * math.sqrt(max(bias_ratio, 0.0))

        # Structural defects of the stage.
        roles = {"mn_in_p": "input_pos", "mn_in_n": "input_neg",
                 "mn_tail": "tail"}
        effects = []
        for dev_name, role in roles.items():
            dev = self.netlist.device(dev_name)
            if dev.has_defect:
                effects.append(diff_stage_effect(role, dev, vdd=vdd,
                                                 severity=1.0))
        # Resistive loads: a short pins that output to VDD, an open lets the
        # input device pull it to ground, value deviations shift the CM and
        # create offset.
        load_effects = []
        for side in ("p", "n"):
            dev = self.netlist.device(f"r_load_{side}")
            if not dev.has_defect:
                continue
            state, value = passive_state(dev)
            key = "stuck_positive" if side == "p" else "stuck_negative"
            if state is PassiveState.SHORTED:
                load_effects.append(_stage_stuck(key, vdd))
            elif state is PassiveState.OPEN:
                load_effects.append(_stage_stuck(key, self.dut.vss))
            else:
                # The voltage drop across that load changes, which moves the
                # stage common mode and creates a differential imbalance.
                scale = dev.defect.value_scale
                sign = 1.0 if side == "p" else -1.0
                shift = (1.0 - scale) * (vdd - vcm2) * 0.5
                load_effects.append(_stage_shift(cm_shift=shift,
                                                 offset=sign * shift * 0.2))
        amp = combine_effects(effects + load_effects)

        gain *= max(amp.gain_scale, 0.0)
        vcm2 += amp.cm_shift
        offset += amp.offset

        swing = self.SWING_LIMIT
        outputs = []
        for dac_p, dac_m in pairs:
            diff_in = dac_p - dac_m + offset
            diff_out = 2.0 * swing * math.tanh(gain * diff_in / (2.0 * swing))

            lin_p = vcm2 + 0.5 * diff_out
            lin_m = vcm2 - 0.5 * diff_out
            if amp.stuck_positive is not None:
                lin_p = amp.stuck_positive
            if amp.stuck_negative is not None:
                lin_m = amp.stuck_negative
            if stuck_side == "p":
                lin_p = 0.2
            elif stuck_side == "n":
                lin_m = 0.2
            lin_p = min(max(lin_p, self.dut.vss), vdd)
            lin_m = min(max(lin_m, self.dut.vss), vdd)
            outputs.append(PreampOutput(lin_p=lin_p, lin_m=lin_m))
        return outputs


def _stage_stuck(key: str, value: float):
    """Build a StageEffect with one stuck output (helper for load defects)."""
    from .behavioral import StageEffect

    return StageEffect(**{key: value, "gain_scale": 0.3})


def _stage_shift(cm_shift: float, offset: float):
    from .behavioral import StageEffect

    return StageEffect(cm_shift=cm_shift, offset=offset, gain_scale=0.95)


@dataclass
class LatchOutput:
    """Complementary latch outputs."""

    q_p: float
    q_m: float

    @property
    def decision(self) -> int:
        """The logical decision: 1 when the positive output is high."""
        return 1 if self.q_p > self.q_m else 0


class ComparatorLatch(AnalogBlock):
    """Clocked regenerative latch converting ``LIN+/-`` into logic levels."""

    block_path = "comparator_latch"

    def __init__(self, name: str = "comparator_latch",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        nl = self.netlist
        nl.add_nmos("mn_cross_p", d="ql_p", g="ql_n", s="latch_tail", w=3e-6)
        nl.add_nmos("mn_cross_n", d="ql_n", g="ql_p", s="latch_tail", w=3e-6)
        nl.add_pmos("mp_cross_p", d="ql_p", g="ql_n", s="vdd", w=6e-6)
        nl.add_pmos("mp_cross_n", d="ql_n", g="ql_p", s="vdd", w=6e-6)
        nl.add_nmos("mn_clk", d="latch_tail", g="clk", s="vss", w=4e-6)

        self.declare_parameter("latch_offset", 0.0, sigma=1.5e-3)

    def evaluate(self, lin_p: float, lin_m: float) -> LatchOutput:
        """Resolve the pre-amplifier differential into complementary rails."""
        return self.sweep(((lin_p, lin_m),))[0]

    def sweep(self, pairs: Sequence[Tuple[float, float]]) -> List[LatchOutput]:
        """Resolve many ``(lin_p, lin_m)`` pairs against one defect state.

        The clock and cross-coupled device states are a pure function of the
        netlist state and are resolved once for the whole sweep; the per-pair
        arithmetic is unchanged.
        """
        offset = self.parameter("latch_offset")
        clk_state = mos_state(self.netlist.device("mn_clk"))
        nmos_states = [(mos_state(self.netlist.device(name)), target)
                       for name, target in (("mn_cross_p", "p"),
                                            ("mn_cross_n", "n"))]
        pmos_states = [(mos_state(self.netlist.device(name)), target)
                       for name, target in (("mp_cross_p", "p"),
                                            ("mp_cross_n", "n"))]
        vdd, vss = self.dut.vdd, self.dut.vss
        outputs = []
        for lin_p, lin_m in pairs:
            decision_high = (lin_p - lin_m) > offset
            q_p = vdd if decision_high else vss
            q_m = vss if decision_high else vdd

            if clk_state is MosState.STUCK_OFF:
                # The latch never evaluates: both outputs stay precharged high.
                outputs.append(LatchOutput(q_p=vdd, q_m=vdd))
                continue
            if clk_state is MosState.STUCK_ON:
                # The latch is always evaluating; behaviourally it still
                # resolves but with degraded levels.
                q_p, q_m = q_p * 0.9, q_m * 0.9

            # Cross-coupled devices: losing one of the four regeneration
            # devices leaves the affected output fighting its precharge, so
            # it settles at a defect-dependent intermediate level instead of
            # a clean rail.
            for state, target in nmos_states:
                if state is MosState.STUCK_ON:
                    if target == "p":
                        q_p = vss
                    else:
                        q_m = vss
                elif state is MosState.STUCK_OFF:
                    if target == "p":
                        q_p = max(q_p, 0.7 * vdd)
                    else:
                        q_m = max(q_m, 0.7 * vdd)
                elif state is MosState.DEGRADED:
                    # Weakened pull-down: the high level is unaffected but a
                    # low output cannot be fully discharged.
                    if target == "p":
                        q_p = max(q_p, 0.45 * vdd)
                    else:
                        q_m = max(q_m, 0.45 * vdd)
            for state, target in pmos_states:
                if state is MosState.STUCK_ON:
                    if target == "p":
                        q_p = vdd
                    else:
                        q_m = vdd
                elif state is MosState.STUCK_OFF:
                    if target == "p":
                        q_p = min(q_p, 0.3 * vdd)
                    else:
                        q_m = min(q_m, 0.3 * vdd)
                elif state is MosState.DEGRADED:
                    # Weakened pull-up: the high level droops.
                    if target == "p":
                        q_p = min(q_p, 0.62 * vdd)
                    else:
                        q_m = min(q_m, 0.62 * vdd)
            outputs.append(LatchOutput(q_p=min(max(q_p, vss), vdd),
                                       q_m=min(max(q_m, vss), vdd)))
        return outputs


class RsLatch(AnalogBlock):
    """RS latch that holds the comparator decision for the SAR logic."""

    block_path = "rs_latch"

    def __init__(self, name: str = "rs_latch",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        #: Threshold used to interpret the comparator-latch outputs as
        #: set/reset.
        self._threshold = 0.5 * self.dut.vdd
        #: Band of comparator-latch levels considered "weak" (neither a clean
        #: low nor a clean high); weak levels propagate through the RS gates
        #: instead of being regenerated, like they would through real,
        #: ratioed logic.
        self._weak_low = 0.25 * self.dut.vdd
        self._weak_high = 0.8 * self.dut.vdd
        nl = self.netlist
        # Two cross-coupled NAND gates, two transistors modelled per gate.
        nl.add_pmos("mp_nand_a", d="q_p", g="q_n", s="vdd", w=2e-6)
        nl.add_nmos("mn_nand_a", d="q_p", g="q_n", s="vss", w=1e-6)
        nl.add_pmos("mp_nand_b", d="q_n", g="q_p", s="vdd", w=2e-6)
        nl.add_nmos("mn_nand_b", d="q_n", g="q_p", s="vss", w=1e-6)
        self._state = 0

    def reset_state(self) -> None:
        """Forget the stored decision (used between simulation runs)."""
        self._state = 0

    def evaluate(self, latch: LatchOutput) -> LatchOutput:
        """Latch the comparator decision and drive complementary outputs."""
        return self._evaluate_with_actions(latch,
                                           self._resolve_defect_actions())

    def replay(self, latches: Sequence[LatchOutput]) -> List[LatchOutput]:
        """Reset, then evaluate every input in order.

        Bit-identical to :meth:`reset_state` followed by :meth:`evaluate`
        per input: the defect actions are a pure function of the netlist
        state and are resolved once for the whole replay.  This is the
        RS-latch hot path of the batched defect evaluator.
        """
        self.reset_state()
        actions = self._resolve_defect_actions()
        return [self._evaluate_with_actions(latch, actions)
                for latch in latches]

    def _evaluate_with_actions(self, latch: LatchOutput,
                               actions: list) -> LatchOutput:
        set_high = latch.q_p > self._threshold
        reset_high = latch.q_m > self._threshold
        if set_high and not reset_high:
            self._state = 1
        elif reset_high and not set_high:
            self._state = 0
        elif set_high and reset_high:
            # Invalid input (both comparator outputs high): both RS outputs
            # are driven high, which the complementary-output invariance sees.
            return self._apply_actions(self.dut.vdd, self.dut.vdd, actions)
        # else: hold the previous state.
        q_p = self.dut.vdd if self._state else self.dut.vss
        q_m = self.dut.vss if self._state else self.dut.vdd
        # A weak (mid-rail) comparator-latch level does not switch the RS gate
        # cleanly; the corresponding output degrades instead of regenerating,
        # which keeps such upstream defects observable at the checker.
        if self._weak_low < latch.q_p < self._weak_high:
            q_p = latch.q_p
        if self._weak_low < latch.q_m < self._weak_high:
            q_m = latch.q_m
        return self._apply_actions(q_p, q_m, actions)

    def _resolve_defect_actions(self) -> list:
        """Input-independent ``(target, value)`` overrides of the NAND devices.

        ``value is None`` marks the one input-dependent case: a stuck-off
        pull-up leaves its output at a level derived from the opposite
        output, so it is resolved per evaluation in
        :meth:`_apply_actions`.
        """
        vdd, vss = self.dut.vdd, self.dut.vss
        actions = []
        for name, target, rail in (("mp_nand_a", "p", vdd),
                                   ("mn_nand_a", "p", vss),
                                   ("mp_nand_b", "n", vdd),
                                   ("mn_nand_b", "n", vss)):
            device = self.netlist.device(name)
            state = mos_state(device)
            if state is MosState.NORMAL:
                continue
            pair = device.defect.shorted_terminals
            if state is MosState.DEGRADED:
                if pair is not None and "b" in pair or \
                        device.defect.open_terminal == "b":
                    # Bulk-related degradation: the static levels still reach
                    # the rails; the defect is benign for this latch.
                    continue
                # Gate-drain short: the output is loaded by the opposite
                # output through the shorted gate and settles at a weak level.
                actions.append((target, 0.7 * vdd))
            elif state is MosState.STUCK_ON:
                actions.append((target, rail))
            else:  # STUCK_OFF: the output loses one of its drivers
                actions.append((target,
                                vdd - rail if rail == vss else None))
        return actions

    def _apply_actions(self, q_p: float, q_m: float,
                       actions: list) -> LatchOutput:
        vdd, vss = self.dut.vdd, self.dut.vss
        for target, value in actions:
            if value is None:
                value = q_p * 0.5 + 0.25 * vdd
            if target == "p":
                q_p = value
            else:
                q_m = value
        return LatchOutput(q_p=min(max(q_p, vss), vdd),
                           q_m=min(max(q_m, vss), vdd))


@dataclass
class ComparatorOutput:
    """All comparator-chain signals observed by SymBIST."""

    lin_p: float
    lin_m: float
    ql_p: float
    ql_m: float
    q_p: float
    q_m: float

    @property
    def decision(self) -> int:
        return 1 if self.q_p > self.q_m else 0

    def as_signals(self) -> Dict[str, float]:
        return {"LIN+": self.lin_p, "LIN-": self.lin_m,
                "QL+": self.ql_p, "QL-": self.ql_m,
                "Q+": self.q_p, "Q-": self.q_m}


class Comparator:
    """The full comparator chain of the SARCELL."""

    def __init__(self, dut: Optional[DutSpec] = None) -> None:
        self.dut = dut or default_dut()
        self.preamplifier = Preamplifier(dut=self.dut)
        self.latch = ComparatorLatch(dut=self.dut)
        self.rs_latch = RsLatch(dut=self.dut)
        self.offset_compensation = OffsetCompensation(dut=self.dut)

    @property
    def blocks(self):
        """The analog sub-blocks, in Table I order."""
        return (self.preamplifier, self.latch, self.rs_latch,
                self.offset_compensation)

    def clear_defects(self) -> None:
        for block in self.blocks:
            block.clear_defects()

    def evaluate(self, dac_p: float, dac_m: float,
                 ibias: float) -> ComparatorOutput:
        """Run one comparison through the chain."""
        pre = self.preamplifier.evaluate(dac_p, dac_m, ibias,
                                         self.offset_compensation)
        latched = self.latch.evaluate(pre.lin_p, pre.lin_m)
        stored = self.rs_latch.evaluate(latched)
        return ComparatorOutput(lin_p=pre.lin_p, lin_m=pre.lin_m,
                                ql_p=latched.q_p, ql_m=latched.q_m,
                                q_p=stored.q_p, q_m=stored.q_m)
