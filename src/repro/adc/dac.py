"""10-bit DAC: two 5-bit sub-DACs plus the switched-capacitor array.

Paper context (Section III, Fig. 4): "The DAC sets the comparison level to
which the input is compared at each conversion cycle.  It has a resistive plus
charge redistribution architecture."  SUBDAC1 converts the five MSBs
``B<5:9>`` into ``M+/M-``, SUBDAC2 converts the five LSBs ``B<0:4>`` into
``L+/L-`` and the SC array combines those levels with the sampled input into
the differential comparator inputs ``DAC+`` / ``DAC-``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..circuit.errors import SimulationError
from ..dut import DutSpec, default_dut
from .sc_array import ScArray, ScArrayInputs
from .subdac import SubDac, make_subdac1, make_subdac2


@dataclass
class DacOutput:
    """All DAC node voltages observed by the SymBIST invariances."""

    m_p: float
    m_m: float
    l_p: float
    l_m: float
    dac_p: float
    dac_m: float

    def as_signals(self) -> Dict[str, float]:
        """Export with the signal names used throughout the package."""
        return {"M+": self.m_p, "M-": self.m_m, "L+": self.l_p,
                "L-": self.l_m, "DAC+": self.dac_p, "DAC-": self.dac_m}


def split_code(code: int, bits: int = 10) -> Tuple[int, int]:
    """Split a ``bits``-wide code into its (MSB half, LSB half) sub-DAC codes
    (``B<5:9>`` and ``B<0:4>`` for the paper's 10-bit device)."""
    full = (1 << bits) - 1
    if not 0 <= code <= full:
        raise SimulationError(
            f"{bits}-bit code must be in [0, {full}], got {code}")
    half = bits // 2
    return code >> half, code & ((1 << half) - 1)


class TenBitDac:
    """The complete 10-bit DAC of the SARCELL (Fig. 4 of the paper)."""

    def __init__(self, dut: Optional[DutSpec] = None) -> None:
        self.dut = dut or default_dut()
        self.subdac1: SubDac = make_subdac1(dut=self.dut)
        self.subdac2: SubDac = make_subdac2(dut=self.dut)
        self.sc_array = ScArray(dut=self.dut)

    # ------------------------------------------------------------------ model
    def evaluate(self, msb_code: int, lsb_code: int, in_p: float, in_m: float,
                 vcm: float, vref: Sequence[float]) -> DacOutput:
        """Evaluate the DAC for one conversion cycle.

        Parameters
        ----------
        msb_code, lsb_code:
            The 5-bit codes applied to SUBDAC1 (``B<5:9>``) and SUBDAC2
            (``B<0:4>``).  During the SymBIST test both receive the same
            counter value; during a conversion they come from the SAR logic.
        in_p, in_m:
            The sampled fully-differential input.
        vcm:
            The common-mode voltage from the Vcm generator.
        vref:
            The reference levels from the reference buffer (33 for the
            paper's 10-bit device).
        """
        sub1 = self.subdac1.evaluate(msb_code, vref)
        sub2 = self.subdac2.evaluate(lsb_code, vref)
        sc_out = self.sc_array.evaluate(ScArrayInputs(
            in_p=in_p, in_m=in_m,
            m_p=sub1.out_p, m_m=sub1.out_n,
            l_p=sub2.out_p, l_m=sub2.out_n,
            vcm=vcm, vref_mid=vref[self.dut.mid_tap]))
        return DacOutput(m_p=sub1.out_p, m_m=sub1.out_n,
                         l_p=sub2.out_p, l_m=sub2.out_n,
                         dac_p=sc_out.dac_p, dac_m=sc_out.dac_m)

    def evaluate_code(self, code: int, in_p: float, in_m: float, vcm: float,
                      vref: Sequence[float]) -> DacOutput:
        """Evaluate the DAC for a full-resolution code ``B<0:9>``."""
        msb, lsb = split_code(code, self.dut.resolution_bits)
        return self.evaluate(msb, lsb, in_p, in_m, vcm, vref)

    # ----------------------------------------------------------------- blocks
    @property
    def blocks(self):
        """The analog sub-blocks owned by the DAC, in hierarchy order."""
        return (self.subdac1, self.subdac2, self.sc_array)

    def clear_defects(self) -> None:
        for block in self.blocks:
            block.clear_defects()
