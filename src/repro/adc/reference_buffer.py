"""Reference buffer -- generates the comparison levels ``VREF<0:32>``.

Paper context (Section III): "Reference Buffer: It creates the comparison
levels VREF<0:32> used during the conversion."  The block is modelled as a
unity-gain buffer driving a 32-segment resistor ladder whose 33 taps are the
``VREF[j]`` levels used by the two sub-DACs (Eq. (1) of the paper) and by the
switched-capacitor array.

Defect behaviour worth noting (it is what produces the strikingly low L-W
coverage of this block in Table I of the paper): defects in the *buffer*
scale or rail the whole ladder uniformly, and because the SymBIST invariances
``M+ + M- = VREF[32]`` and ``L+ + L- = VREF[32]`` are *ratiometric* (they
compare sums of taps against another tap of the same ladder), a uniform scale
is not observable.  Only defects that break the ladder symmetry -- individual
segment shorts, opens and value deviations -- move the invariant signals.  The
buffer devices are physically large (low output impedance), so they carry a
high defect likelihood, and the likelihood-weighted coverage of the block ends
up very low even though many ladder defects are detected.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuit.errors import SolverError
from ..circuit.solver import LinearNetwork
from ..dut import DutSpec, default_dut
from .behavioral import (PassiveState, combine_effects, diff_stage_effect,
                         passive_state)
from .block import AnalogBlock


class ReferenceBuffer(AnalogBlock):
    """Behavioral reference buffer + 33-tap reference ladder."""

    block_path = "reference_buffer"

    def __init__(self, name: str = "reference_buffer",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        #: Ladder taps of this instance (``VREF<0:2**half_bits>``).
        self.n_levels = self.dut.n_ref_levels
        nl = self.netlist
        # Unity-gain buffer between the bandgap output and the ladder top.
        # The devices are sized large (wide W) which gives them a large area
        # proxy and hence a high defect likelihood.
        nl.add_nmos("mn_in_p", d="ba", g="vbg", s="btail", w=4e-6)
        nl.add_nmos("mn_in_n", d="bb", g="vref_top", s="btail", w=4e-6)
        nl.add_nmos("mn_tail", d="btail", g="nbias", s="vss", w=5e-6)
        nl.add_pmos("mp_load_p", d="ba", g="ba", s="vdd", w=6e-6)
        nl.add_pmos("mp_load_n", d="bb", g="ba", s="vdd", w=6e-6)
        nl.add_pmos("mp_out", d="vref_top", g="bb", s="vdd", w=8e-6)
        # Compensation / decoupling around the buffer output.
        nl.add_capacitor("c_comp", p="vref_top", n="vss", value=5e-12)
        nl.add_resistor("r_fb", p="vref_top", n="bb", value=10e3)
        top = self.n_levels - 1
        nl.add_resistor("r_out", p="vref_top", n=f"tap_{top}", value=20.0)
        # The reference ladder: tap_0 (bottom, VSS) ... tap_<top> (top).
        for seg in range(top):
            nl.add_resistor(f"rlad_{seg:02d}", p=f"tap_{seg + 1}",
                            n=f"tap_{seg}", value=self.dut.r_ladder)

        self.declare_parameter("buffer_gain", 1.0, sigma=0.001)
        self.declare_parameter("buffer_offset", 0.0, sigma=1e-3)

    # ------------------------------------------------------------------ model
    def _buffer_output(self, vbg: float) -> float:
        """Voltage driven onto the top of the ladder by the buffer."""
        roles = {
            "mn_in_p": "input_pos", "mn_in_n": "input_neg", "mn_tail": "tail",
            "mp_load_p": "load_pos", "mp_load_n": "load_neg", "mp_out": "bias",
        }
        effects = []
        for dev_name, role in roles.items():
            dev = self.netlist.device(dev_name)
            if dev.has_defect:
                effects.append(diff_stage_effect(role, dev,
                                                 vdd=self.dut.vdd,
                                                 severity=0.8))
        amp = combine_effects(effects)

        v_top = vbg * self.parameter("buffer_gain") + \
            self.parameter("buffer_offset")
        if amp.stuck_positive is not None:
            v_top = amp.stuck_positive
        elif amp.stuck_negative is not None:
            v_top = amp.stuck_negative
        else:
            v_top = v_top * max(amp.gain_scale, 0.0) ** 0.2 \
                + amp.offset * 0.5 + amp.cm_shift

        # Feedback resistor open breaks the loop -> output runs to the supply.
        fb_state, _ = passive_state(self.netlist.device("r_fb"))
        if fb_state is PassiveState.OPEN:
            v_top = self.dut.vdd
        # Decoupling capacitor shorted pulls the reference to ground.
        comp_state, _ = passive_state(self.netlist.device("c_comp"))
        if comp_state is PassiveState.SHORTED:
            v_top = self.dut.vss
        return min(max(v_top, self.dut.vss), self.dut.vdd)

    def evaluate(self, vbg: float) -> List[float]:
        """Return the 33 reference levels ``VREF[0] .. VREF[32]``.

        The ladder is solved by nodal analysis so that segment defects (10 ohm
        shorts, opens with weak pulls, +-50 % deviations) redistribute the tap
        voltages physically.
        """
        v_top = self._buffer_output(vbg)

        top = self.n_levels - 1
        net = LinearNetwork()
        net.set_voltage("tap_0", self.dut.vss)
        net.set_voltage("vdrive", v_top)
        # The buffer drives the top tap through its (possibly defective)
        # output resistance.
        rout_state, rout_value = passive_state(self.netlist.device("r_out"))
        if rout_state is PassiveState.OPEN:
            # Ladder top floats: a weak pull to ground discharges it.
            net.add_resistor("vdrive", f"tap_{top}", rout_value)
            net.add_resistor(f"tap_{top}", "tap_0", 1e7)
        else:
            net.add_resistor("vdrive", f"tap_{top}", rout_value)

        for seg in range(top):
            state, value = passive_state(self.netlist.device(f"rlad_{seg:02d}"))
            net.add_resistor(f"tap_{seg + 1}", f"tap_{seg}", value)

        try:
            solution = net.solve()
        except SolverError:
            # A pathological defect combination left a tap floating; report
            # every tap at ground, which any downstream invariance will see.
            return [self.dut.vss] * self.n_levels
        return [solution[f"tap_{j}"] for j in range(self.n_levels)]

    # -------------------------------------------------------------- observers
    def observables(self, vbg: float) -> Dict[str, float]:
        vref = self.evaluate(vbg)
        # The keys are the paper's signal labels for the bottom / mid-scale /
        # full-scale taps; on a non-10-bit variant they still name those
        # three taps (not literal indexes).
        return {"VREF0": vref[0], "VREF16": vref[self.dut.mid_tap],
                "VREF32": vref[-1]}
