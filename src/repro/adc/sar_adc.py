"""Top-level 10-bit SAR ADC IP (Fig. 2 of the paper).

The :class:`SarAdc` class composes the SARCELL, the SAR control, the bandgap
and the reference buffer and exposes the two operating modes used throughout
the repository:

* **conversion mode** (:meth:`convert`): the normal ADC function.  The SAR
  logic performs the 10-step successive approximation using the DAC and the
  comparator; used by the functional-test baseline and by the examples.
* **SymBIST test mode** (:meth:`evaluate_test_cycle`): the DAC digital inputs
  are driven by the BIST counter code (the same 5-bit value on ``B<0:4>`` and
  ``B<5:9>``), the analog input is a constant fully-differential DC level, and
  the method returns every node voltage observed by the invariances.

The ADC also builds the :class:`~repro.circuit.netlist.NetlistHierarchy` that
the defect-universe extractor walks, with one entry per analog block in the
same order as Table I of the paper.

The device itself is declarative data: every electrical quantity and the
resolution come from the instance's :class:`~repro.dut.DutSpec`.  The default
``DutSpec()`` reproduces the paper's 65 nm 10-bit device bit-identically;
studies sweep variants by constructing :class:`DutAdcFactory` with a
non-default spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.errors import SimulationError
from ..circuit.netlist import NetlistHierarchy
from ..circuit.variation import VariationSpec
from ..dut import DutSpec, default_dut
from .bandgap import Bandgap
from .block import AnalogBlock
from .reference_buffer import ReferenceBuffer
from .sar_control import SarControl
from .sarcell import SarCell

#: Default DC differential input applied during the SymBIST test.  The paper
#: notes the value can be set arbitrarily; a non-zero value is used so that
#: defects in the input sampling path remain observable, and it is chosen so
#: that no counter code lands exactly on the comparator metastable point.
DEFAULT_TEST_INPUT_DIFF = 0.275


@dataclass
class OperatingPoint:
    """DC operating point shared by every cycle of a test or conversion.

    The bandgap output, the bias current, the reference ladder and the input
    levels do not depend on the counter / SAR code, so they are computed once
    per run (after defect injection and Monte Carlo sampling) and reused.
    """

    vbg: float
    ibias: float
    vref: List[float]
    in_p: float
    in_m: float

    @property
    def vref_full_scale(self) -> float:
        return self.vref[-1]


class SarAdc:
    """Behavioral 65 nm SAR ADC IP model (10-bit by default)."""

    def __init__(self, dut: Optional[DutSpec] = None) -> None:
        self.dut = dut or default_dut()
        self.bandgap = Bandgap(dut=self.dut)
        self.reference_buffer = ReferenceBuffer(dut=self.dut)
        self.sar_control = SarControl(
            n_pulses=self.dut.cycles_per_conversion)
        self.sarcell = SarCell(dut=self.dut)
        self._apply_block_params()

    def _apply_block_params(self) -> None:
        """Apply the spec's per-block parameter overrides.

        Each ``[dut.block_params.<block>]`` entry retargets the *nominal* of
        a declared block parameter, so Monte Carlo variation draws centre on
        the overridden value instead of the design default.
        """
        from ..circuit.errors import DutSpecError
        known = {blk.block_path: blk for blk in self.analog_blocks}
        for block_path, overrides in self.dut.block_params.items():
            block = known.get(block_path)
            if block is None:
                raise DutSpecError(
                    f"dut.block_params names unknown block {block_path!r}; "
                    f"known blocks: {sorted(known)}")
            for param_name, value in overrides.items():
                try:
                    block.override_nominal(param_name, value)
                except KeyError as exc:
                    raise DutSpecError(
                        f"dut.block_params.{block_path} names unknown "
                        f"parameter {param_name!r}; available: "
                        f"{sorted(block.parameter_names)}") from exc

    # ----------------------------------------------------------------- blocks
    @property
    def analog_blocks(self) -> Tuple[AnalogBlock, ...]:
        """All A/M-S blocks, ordered like Table I of the paper."""
        cell = self.sarcell
        return (self.bandgap, self.reference_buffer,
                cell.dac.subdac1, cell.dac.subdac2, cell.dac.sc_array,
                cell.vcm_generator, cell.comparator.preamplifier,
                cell.comparator.latch, cell.comparator.rs_latch,
                cell.comparator.offset_compensation)

    def block(self, path: str) -> AnalogBlock:
        """Return the analog block registered under hierarchy path ``path``."""
        for blk in self.analog_blocks:
            if blk.block_path == path:
                return blk
        raise SimulationError(f"the IP has no analog block {path!r}")

    def build_hierarchy(self) -> NetlistHierarchy:
        """Structural hierarchy of the A/M-S part, for defect extraction."""
        hierarchy = NetlistHierarchy("sar_adc_ip")
        for blk in self.analog_blocks:
            hierarchy.register(blk.block_path, blk.netlist, group="ams")
        return hierarchy

    # ----------------------------------------------------------- defect state
    def clear_defects(self) -> None:
        for blk in self.analog_blocks:
            blk.clear_defects()

    @property
    def has_defect(self) -> bool:
        return any(blk.has_defect for blk in self.analog_blocks)

    # -------------------------------------------------------------- variation
    def sample_variation(self, rng: np.random.Generator,
                         spec: Optional[VariationSpec] = None) -> None:
        """Apply one Monte Carlo process-variation draw to every analog block."""
        if spec is None:
            spec = self.dut.variation_spec()
        for blk in self.analog_blocks:
            blk.sample_variation(rng, spec)

    def reset_variation(self) -> None:
        for blk in self.analog_blocks:
            blk.reset_variation()

    # --------------------------------------------------------------- op point
    def operating_point(self, input_diff: Optional[float] = None,
                        input_cm: Optional[float] = None) -> OperatingPoint:
        """Compute the DC operating point (after any defect injection).

        ``input_diff`` / ``input_cm`` default to the spec's SymBIST test
        stimulus (a 275 mV differential level at the nominal common mode for
        the paper's device).
        """
        if input_diff is None:
            input_diff = self.dut.test_input_diff
        if input_cm is None:
            input_cm = self.dut.common_mode
        bg = self.bandgap.evaluate()
        vref = self.reference_buffer.evaluate(bg.vbg)
        return OperatingPoint(vbg=bg.vbg, ibias=bg.ibias, vref=vref,
                              in_p=input_cm + 0.5 * input_diff,
                              in_m=input_cm - 0.5 * input_diff)

    # ------------------------------------------------------------ SymBIST mode
    def evaluate_test_cycle(self, counter_code: int,
                            op: Optional[OperatingPoint] = None,
                            input_diff: Optional[float] = None
                            ) -> Dict[str, float]:
        """Evaluate one SymBIST test cycle.

        The half-resolution ``counter_code`` is applied to both sub-DAC
        inputs (``B<0:4>`` and ``B<5:9>`` on the paper's 10-bit device),
        exactly like the paper's test stimulus.  Returns every signal
        observed by the invariances plus the supply and bias observables.
        """
        code_max = self.dut.counter_codes - 1
        if not 0 <= counter_code <= code_max:
            raise SimulationError(
                f"counter code must be in [0, {code_max}], got {counter_code}")
        if op is None:
            op = self.operating_point(input_diff=input_diff)
        outputs = self.sarcell.evaluate(counter_code, counter_code,
                                        op.in_p, op.in_m, op.vbg, op.ibias,
                                        op.vref)
        signals = outputs.as_signals()
        signals.update({
            # Paper signal names: VREF32 is the full-scale tap and VREF16 the
            # mid tap, whatever the variant's actual tap count.
            "VREF32": op.vref[-1],
            "VREF16": op.vref[self.dut.mid_tap],
            "VBG": op.vbg,
            "IBIAS": op.ibias,
            "IN+": op.in_p,
            "IN-": op.in_m,
            "VDD": self.dut.vdd,
        })
        return signals

    # --------------------------------------------------------- conversion mode
    def convert(self, input_diff: float, input_cm: Optional[float] = None,
                op: Optional[OperatingPoint] = None) -> int:
        """Convert one fully-differential input sample to an output code."""
        if input_cm is None:
            input_cm = self.dut.common_mode
        if op is None:
            op = self.operating_point(input_diff=input_diff, input_cm=input_cm)
        else:
            op = OperatingPoint(vbg=op.vbg, ibias=op.ibias, vref=op.vref,
                                in_p=input_cm + 0.5 * input_diff,
                                in_m=input_cm - 0.5 * input_diff)
        half = self.dut.half_bits
        lsb_mask = self.dut.counter_codes - 1
        logic = self.sarcell.sar_logic
        logic.start_conversion()
        self.sarcell.comparator.rs_latch.reset_state()
        for _ in range(logic.n_bits):
            trial = logic.trial_code()
            msb_code, lsb_code = trial >> half, trial & lsb_mask
            outputs = self.sarcell.evaluate(msb_code, lsb_code,
                                            op.in_p, op.in_m,
                                            op.vbg, op.ibias, op.vref)
            # The comparator output is high when DAC+ > DAC-, i.e. when the
            # input is *below* the trial level; the bit is kept otherwise.
            keep = 1 - outputs.comparator.decision
            logic.apply_decision(keep)
        return logic.result()

    def convert_many(self, input_diffs: Iterable[float],
                     input_cm: Optional[float] = None) -> List[int]:
        """Convert a sequence of input samples, reusing one operating point."""
        if input_cm is None:
            input_cm = self.dut.common_mode
        op = self.operating_point(input_diff=0.0, input_cm=input_cm)
        codes = []
        for diff in input_diffs:
            codes.append(self.convert(float(diff), input_cm=input_cm, op=op))
        return codes

    # ----------------------------------------------------------------- ranges
    def ideal_input_range(self) -> Tuple[float, float]:
        """Approximate differential input range of the converter.

        Derived from the charge-redistribution weights: the comparator
        threshold for code ``c`` sits at ``(c - mid) * VREF_FS / mid`` where
        ``mid`` is the zero-input code (528 on the paper's device).
        """
        op = self.operating_point(input_diff=0.0)
        vfs = op.vref_full_scale
        mid = float(self.dut.mid_code)
        low = -mid * vfs / mid
        high = (float(self.dut.full_code) - mid) * vfs / mid
        return low, high

    def code_to_input(self, code: int) -> float:
        """Ideal differential input corresponding to an output code."""
        if not 0 <= code < self.dut.n_codes:
            raise SimulationError(
                f"code must be a {self.dut.resolution_bits}-bit value "
                f"(0 .. {self.dut.full_code}), got {code}")
        op = self.operating_point(input_diff=0.0)
        mid = float(self.dut.mid_code)
        return (code - mid) * op.vref_full_scale / mid


class DutAdcFactory:
    """Picklable ADC factory bound to one :class:`DutSpec`.

    Used wherever the engine needs a zero-argument ``adc_factory`` callable:
    the instance pickles into worker processes, and its :attr:`token` keys
    result-cache entries by the spec fingerprint so two variants never share
    cached artifacts.  A default-spec factory keeps the plain ``SarAdc``
    token, which is what makes pre-refactor caches replay bit-identically.
    """

    def __init__(self, dut: Optional[DutSpec] = None) -> None:
        self.dut = dut or default_dut()

    def __call__(self) -> SarAdc:
        return SarAdc(self.dut)

    @property
    def token(self) -> str:
        """Stable cache-key token for this factory."""
        base = f"{SarAdc.__module__}.{SarAdc.__qualname__}"
        if self.dut.is_default:
            return base
        return f"{base}#dut={self.dut.fingerprint()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DutAdcFactory) and other.dut == self.dut

    def __hash__(self) -> int:
        return hash((DutAdcFactory, self.dut.fingerprint()))

    def __repr__(self) -> str:
        return f"DutAdcFactory(dut={self.dut!r})"
