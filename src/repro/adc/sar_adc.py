"""Top-level 10-bit SAR ADC IP (Fig. 2 of the paper).

The :class:`SarAdc` class composes the SARCELL, the SAR control, the bandgap
and the reference buffer and exposes the two operating modes used throughout
the repository:

* **conversion mode** (:meth:`convert`): the normal ADC function.  The SAR
  logic performs the 10-step successive approximation using the DAC and the
  comparator; used by the functional-test baseline and by the examples.
* **SymBIST test mode** (:meth:`evaluate_test_cycle`): the DAC digital inputs
  are driven by the BIST counter code (the same 5-bit value on ``B<0:4>`` and
  ``B<5:9>``), the analog input is a constant fully-differential DC level, and
  the method returns every node voltage observed by the invariances.

The ADC also builds the :class:`~repro.circuit.netlist.NetlistHierarchy` that
the defect-universe extractor walks, with one entry per analog block in the
same order as Table I of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.errors import SimulationError
from ..circuit.netlist import NetlistHierarchy
from ..circuit.units import ADC_BITS, VCM_NOMINAL, VDD
from ..circuit.variation import VariationSpec
from .bandgap import Bandgap
from .block import AnalogBlock
from .reference_buffer import ReferenceBuffer
from .sar_control import SarControl
from .sarcell import SarCell

#: Default DC differential input applied during the SymBIST test.  The paper
#: notes the value can be set arbitrarily; a non-zero value is used so that
#: defects in the input sampling path remain observable, and it is chosen so
#: that no counter code lands exactly on the comparator metastable point.
DEFAULT_TEST_INPUT_DIFF = 0.275


@dataclass
class OperatingPoint:
    """DC operating point shared by every cycle of a test or conversion.

    The bandgap output, the bias current, the reference ladder and the input
    levels do not depend on the counter / SAR code, so they are computed once
    per run (after defect injection and Monte Carlo sampling) and reused.
    """

    vbg: float
    ibias: float
    vref: List[float]
    in_p: float
    in_m: float

    @property
    def vref_full_scale(self) -> float:
        return self.vref[-1]


class SarAdc:
    """Behavioral 65 nm 10-bit SAR ADC IP model."""

    def __init__(self) -> None:
        self.bandgap = Bandgap()
        self.reference_buffer = ReferenceBuffer()
        self.sar_control = SarControl()
        self.sarcell = SarCell()

    # ----------------------------------------------------------------- blocks
    @property
    def analog_blocks(self) -> Tuple[AnalogBlock, ...]:
        """All A/M-S blocks, ordered like Table I of the paper."""
        cell = self.sarcell
        return (self.bandgap, self.reference_buffer,
                cell.dac.subdac1, cell.dac.subdac2, cell.dac.sc_array,
                cell.vcm_generator, cell.comparator.preamplifier,
                cell.comparator.latch, cell.comparator.rs_latch,
                cell.comparator.offset_compensation)

    def block(self, path: str) -> AnalogBlock:
        """Return the analog block registered under hierarchy path ``path``."""
        for blk in self.analog_blocks:
            if blk.block_path == path:
                return blk
        raise SimulationError(f"the IP has no analog block {path!r}")

    def build_hierarchy(self) -> NetlistHierarchy:
        """Structural hierarchy of the A/M-S part, for defect extraction."""
        hierarchy = NetlistHierarchy("sar_adc_ip")
        for blk in self.analog_blocks:
            hierarchy.register(blk.block_path, blk.netlist, group="ams")
        return hierarchy

    # ----------------------------------------------------------- defect state
    def clear_defects(self) -> None:
        for blk in self.analog_blocks:
            blk.clear_defects()

    @property
    def has_defect(self) -> bool:
        return any(blk.has_defect for blk in self.analog_blocks)

    # -------------------------------------------------------------- variation
    def sample_variation(self, rng: np.random.Generator,
                         spec: Optional[VariationSpec] = None) -> None:
        """Apply one Monte Carlo process-variation draw to every analog block."""
        for blk in self.analog_blocks:
            blk.sample_variation(rng, spec)

    def reset_variation(self) -> None:
        for blk in self.analog_blocks:
            blk.reset_variation()

    # --------------------------------------------------------------- op point
    def operating_point(self, input_diff: float = DEFAULT_TEST_INPUT_DIFF,
                        input_cm: float = VCM_NOMINAL) -> OperatingPoint:
        """Compute the DC operating point (after any defect injection)."""
        bg = self.bandgap.evaluate()
        vref = self.reference_buffer.evaluate(bg.vbg)
        return OperatingPoint(vbg=bg.vbg, ibias=bg.ibias, vref=vref,
                              in_p=input_cm + 0.5 * input_diff,
                              in_m=input_cm - 0.5 * input_diff)

    # ------------------------------------------------------------ SymBIST mode
    def evaluate_test_cycle(self, counter_code: int,
                            op: Optional[OperatingPoint] = None,
                            input_diff: float = DEFAULT_TEST_INPUT_DIFF
                            ) -> Dict[str, float]:
        """Evaluate one SymBIST test cycle.

        The 5-bit ``counter_code`` is applied to both sub-DAC inputs
        (``B<0:4>`` and ``B<5:9>``), exactly like the paper's test stimulus.
        Returns every signal observed by the invariances plus the supply and
        bias observables.
        """
        if not 0 <= counter_code <= 31:
            raise SimulationError(
                f"counter code must be in [0, 31], got {counter_code}")
        if op is None:
            op = self.operating_point(input_diff=input_diff)
        outputs = self.sarcell.evaluate(counter_code, counter_code,
                                        op.in_p, op.in_m, op.vbg, op.ibias,
                                        op.vref)
        signals = outputs.as_signals()
        signals.update({
            "VREF32": op.vref[32],
            "VREF16": op.vref[16],
            "VBG": op.vbg,
            "IBIAS": op.ibias,
            "IN+": op.in_p,
            "IN-": op.in_m,
            "VDD": VDD,
        })
        return signals

    # --------------------------------------------------------- conversion mode
    def convert(self, input_diff: float, input_cm: float = VCM_NOMINAL,
                op: Optional[OperatingPoint] = None) -> int:
        """Convert one fully-differential input sample to a 10-bit code."""
        if op is None:
            op = self.operating_point(input_diff=input_diff, input_cm=input_cm)
        else:
            op = OperatingPoint(vbg=op.vbg, ibias=op.ibias, vref=op.vref,
                                in_p=input_cm + 0.5 * input_diff,
                                in_m=input_cm - 0.5 * input_diff)
        logic = self.sarcell.sar_logic
        logic.start_conversion()
        self.sarcell.comparator.rs_latch.reset_state()
        for _ in range(logic.n_bits):
            trial = logic.trial_code()
            msb_code, lsb_code = trial >> 5, trial & 0x1F
            outputs = self.sarcell.evaluate(msb_code, lsb_code,
                                            op.in_p, op.in_m,
                                            op.vbg, op.ibias, op.vref)
            # The comparator output is high when DAC+ > DAC-, i.e. when the
            # input is *below* the trial level; the bit is kept otherwise.
            keep = 1 - outputs.comparator.decision
            logic.apply_decision(keep)
        return logic.result()

    def convert_many(self, input_diffs: Iterable[float],
                     input_cm: float = VCM_NOMINAL) -> List[int]:
        """Convert a sequence of input samples, reusing one operating point."""
        op = self.operating_point(input_diff=0.0, input_cm=input_cm)
        codes = []
        for diff in input_diffs:
            codes.append(self.convert(float(diff), input_cm=input_cm, op=op))
        return codes

    # ----------------------------------------------------------------- ranges
    def ideal_input_range(self) -> Tuple[float, float]:
        """Approximate differential input range of the converter.

        Derived from the charge-redistribution weights: the comparator
        threshold for code ``c`` sits at ``(c - 528) * VREF_FS / 528``.
        """
        op = self.operating_point(input_diff=0.0)
        vfs = op.vref_full_scale
        low = -528.0 * vfs / 528.0
        high = (1023.0 - 528.0) * vfs / 528.0
        return low, high

    def code_to_input(self, code: int) -> float:
        """Ideal differential input corresponding to a 10-bit output code."""
        if not 0 <= code < 2 ** ADC_BITS:
            raise SimulationError(f"code must be a 10-bit value, got {code}")
        op = self.operating_point(input_diff=0.0)
        return (code - 528.0) * op.vref_full_scale / 528.0
