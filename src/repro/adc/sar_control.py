"""SAR Control -- generates the 12 control pulses P<0:11> (behavioral, digital).

Paper context (Section III): "SAR Control: It creates 12 pulses P<0:11> used
to control the sampling, conversion, and digital output capture phases in the
SARCELL."  Like the phase generator and the SAR logic, it is a purely digital
block tested with standard digital BIST in the paper; the behavioral model
here drives the SARCELL timing, and a gate-level model for the digital-BIST
experiment lives in :mod:`repro.digital.blocks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuit.errors import SimulationError

#: Number of control pulses generated per conversion.
N_PULSES = 12


@dataclass
class SarControl:
    """One-hot pulse generator: pulse ``P<i>`` is high during cycle ``i``."""

    n_pulses: int = N_PULSES

    def pulses_for_cycle(self, cycle: int) -> List[int]:
        """Return the 12 pulse values (one-hot) for clock cycle ``cycle``."""
        if cycle < 0:
            raise SimulationError(f"cycle index must be non-negative, got {cycle}")
        position = cycle % self.n_pulses
        return [1 if i == position else 0 for i in range(self.n_pulses)]

    def active_pulse(self, cycle: int) -> int:
        """Index of the pulse active during ``cycle``."""
        if cycle < 0:
            raise SimulationError(f"cycle index must be non-negative, got {cycle}")
        return cycle % self.n_pulses
