"""SAR Logic -- successive-approximation register (behavioral, digital).

Paper context (Section III): "SAR Logic: It controls the conversion process by
providing the digital input to the DAC, it stores the result of each
comparison, and provides the digital output D<0:9>=B<0:9> once the 10
conversion periods are completed."

This behavioral model implements the textbook SAR search: starting from the
MSB, each trial sets the bit under test, the comparator decision keeps or
clears it, and after ten decisions the accumulated code is presented as the
conversion result.  It is a purely digital block; its gate-level counterpart
for the digital-BIST experiment is in :mod:`repro.digital.blocks`.
"""

from __future__ import annotations

from ..circuit.errors import SimulationError


class SarLogic:
    """Behavioral successive-approximation register."""

    def __init__(self, n_bits: int = 10) -> None:
        if n_bits <= 0:
            raise SimulationError(f"n_bits must be positive, got {n_bits}")
        self.n_bits = n_bits
        self._code = 0
        self._bit_index = n_bits - 1
        self._done = False

    # ---------------------------------------------------------------- control
    def start_conversion(self) -> None:
        """Reset the register and begin a new conversion (MSB first)."""
        self._code = 0
        self._bit_index = self.n_bits - 1
        self._done = False

    @property
    def done(self) -> bool:
        """True once all bits have been decided."""
        return self._done

    @property
    def bit_under_test(self) -> int:
        """Index of the bit currently being decided (MSB = ``n_bits - 1``)."""
        return self._bit_index

    def trial_code(self) -> int:
        """The DAC code to apply for the current bit decision."""
        if self._done:
            return self._code
        return self._code | (1 << self._bit_index)

    def apply_decision(self, keep_bit: int) -> None:
        """Record the comparator decision for the bit under test.

        ``keep_bit`` is 1 when the comparator indicates the input is above the
        trial level (the bit is kept) and 0 otherwise.
        """
        if self._done:
            raise SimulationError("conversion already completed")
        if keep_bit not in (0, 1):
            raise SimulationError(f"decision must be 0 or 1, got {keep_bit}")
        if keep_bit:
            self._code |= (1 << self._bit_index)
        if self._bit_index == 0:
            self._done = True
        else:
            self._bit_index -= 1

    def result(self) -> int:
        """The conversion result ``D<0:9>`` (valid once :attr:`done` is True)."""
        if not self._done:
            raise SimulationError("conversion is not complete yet")
        return self._code
