"""SARCELL -- the conversion core of the SAR ADC IP (Fig. 3 of the paper).

The SARCELL groups the 10-bit DAC (two sub-DACs + SC array), the comparator
chain, the Vcm generator, the phase generator and the SAR logic.  The
:class:`SarCell` class composes the corresponding block models and provides
the per-cycle evaluation used both by normal conversions and by the SymBIST
test mode (where the DAC digital inputs come from the BIST counter instead of
the SAR logic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..dut import DutSpec, default_dut
from .comparator import Comparator, ComparatorOutput
from .dac import DacOutput, TenBitDac
from .phase_generator import PhaseGenerator
from .sar_logic import SarLogic
from .vcm_generator import VcmGenerator


@dataclass
class SarCellOutputs:
    """All SARCELL node voltages produced during one evaluation."""

    dac: DacOutput
    comparator: ComparatorOutput
    vcm: float

    def as_signals(self) -> Dict[str, float]:
        signals = dict(self.dac.as_signals())
        signals.update(self.comparator.as_signals())
        signals["VCM"] = self.vcm
        return signals


class SarCell:
    """Behavioral SARCELL: DAC + comparator + Vcm generator + SAR logic."""

    def __init__(self, dut: Optional[DutSpec] = None) -> None:
        self.dut = dut or default_dut()
        self.dac = TenBitDac(dut=self.dut)
        self.comparator = Comparator(dut=self.dut)
        self.vcm_generator = VcmGenerator(dut=self.dut)
        self.phase_generator = PhaseGenerator(
            cycles_per_conversion=self.dut.cycles_per_conversion)
        self.sar_logic = SarLogic(n_bits=self.dut.resolution_bits)

    # ----------------------------------------------------------------- blocks
    @property
    def analog_blocks(self):
        """Analog sub-blocks in the order used by Table I of the paper."""
        return (self.dac.subdac1, self.dac.subdac2, self.dac.sc_array,
                self.vcm_generator, self.comparator.preamplifier,
                self.comparator.latch, self.comparator.rs_latch,
                self.comparator.offset_compensation)

    def clear_defects(self) -> None:
        for block in self.analog_blocks:
            block.clear_defects()

    def reset_state(self) -> None:
        """Reset stateful elements (RS latch memory, SAR register)."""
        self.comparator.rs_latch.reset_state()
        self.sar_logic.start_conversion()

    # ------------------------------------------------------------------ model
    def evaluate(self, msb_code: int, lsb_code: int, in_p: float, in_m: float,
                 vbg: float, ibias: float,
                 vref: Sequence[float]) -> SarCellOutputs:
        """Evaluate the analog signal path for one clock cycle.

        The DAC digital inputs are supplied by the caller: the SAR logic
        during a conversion, the 5-bit BIST counter during the SymBIST test.
        """
        vcm = self.vcm_generator.evaluate(vbg)
        dac_out = self.dac.evaluate(msb_code, lsb_code, in_p, in_m, vcm, vref)
        comp_out = self.comparator.evaluate(dac_out.dac_p, dac_out.dac_m,
                                            ibias)
        return SarCellOutputs(dac=dac_out, comparator=comp_out, vcm=vcm)
