"""Switched-capacitor (SC) array of the 10-bit DAC.

Paper context (Section III, Fig. 4): the sample-and-hold operation that keeps
the input constant during the conversion is performed within the SC array, and
the array combines the sampled input with the sub-DAC levels ``M+/M-`` and
``L+/L-`` to produce the differential comparison voltages ``DAC+`` / ``DAC-``
at the comparator input.  The SC array has symmetrical positive/negative
paths, which is what makes the invariance of Eq. (3),
``DAC+ + DAC- = 2*Vcm``, hold by construction.

Model: classic top-plate charge redistribution.  Per side the top plate is
reset to ``Vcm`` during sampling while the bottom plates of the sampling
capacitor ``Cs``, the MSB capacitor ``Cm`` and the LSB capacitor ``Cl`` sit at
the input, ``VREF[16]`` and ``VREF[16]`` respectively; during conversion the
bottom plates switch to ``Vcm``, ``M+/-`` and ``L+/-``.  Charge conservation
gives::

    DAC+/- = Vcm + [Cs*(Vcm - IN+/-) + Cm*(M+/- - VREF16) + Cl*(L+/- - VREF16)]
             / (Cs + Cm + Cl)

With matched capacitors, a fully-differential input (common mode = Vcm) and a
linear reference ladder, the sum of the two sides equals ``2*Vcm`` for every
code -- the Eq. (3) invariance.  Capacitor and switch defects break the
cancellation on one side only and shift the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuit.units import VDD, VSS
from .behavioral import effective_capacitance, switch_state
from .block import AnalogBlock

#: Unit capacitance of the array.
_C_UNIT = 50e-15
#: Capacitor weights (in units) for the sampling, MSB and LSB capacitors.
_CS_UNITS = 33.0
_CM_UNITS = 32.0
_CL_UNITS = 1.0
#: Residual coupling of the ideal DAC voltage through a permanently-on reset
#: switch (the switch loads the top plate towards Vcm but does not pin it).
_RESET_STUCK_ON_COUPLING = 0.3
#: Top-plate voltage left after a failed (stuck-off) reset: the node keeps the
#: discharged level from power-up instead of Vcm.
_UNRESET_TOP_PLATE = 0.0


@dataclass
class ScArrayInputs:
    """Signals feeding the SC array for one conversion cycle."""

    in_p: float
    in_m: float
    m_p: float
    m_m: float
    l_p: float
    l_m: float
    vcm: float
    vref_mid: float


@dataclass
class ScArrayOutput:
    """Differential comparison voltages at the comparator input."""

    dac_p: float
    dac_m: float


class ScArray(AnalogBlock):
    """Behavioral switched-capacitor array with a structural defect surface."""

    block_path = "sc_array"

    def __init__(self, name: str = "sc_array") -> None:
        super().__init__(name)
        nl = self.netlist
        for side in ("p", "n"):
            nl.add_capacitor(f"cs_{side}", p=f"top_{side}", n=f"bs_{side}",
                             value=_CS_UNITS * _C_UNIT)
            nl.add_capacitor(f"cm_{side}", p=f"top_{side}", n=f"bm_{side}",
                             value=_CM_UNITS * _C_UNIT)
            nl.add_capacitor(f"cl_{side}", p=f"top_{side}", n=f"bl_{side}",
                             value=_CL_UNITS * _C_UNIT)
            nl.add_switch(f"sw_rst_{side}", p=f"top_{side}", n="vcm",
                          ctrl="phi_sample", ron=500.0)
            nl.add_switch(f"sw_in_{side}", p=f"bs_{side}", n=f"in_{side}",
                          ctrl="phi_sample", ron=300.0)

        self.declare_parameter("mismatch_p", 0.0, sigma=2e-4)
        self.declare_parameter("mismatch_n", 0.0, sigma=2e-4)

    # ------------------------------------------------------------------ model
    def _side(self, side: str, vin: float, m_level: float, l_level: float,
              vcm: float, vref_mid: float, mismatch: float) -> float:
        """Top-plate voltage of one side after charge redistribution."""
        cs, cs_short = effective_capacitance(self.netlist.device(f"cs_{side}"))
        cm, cm_short = effective_capacitance(self.netlist.device(f"cm_{side}"))
        cl, cl_short = effective_capacitance(self.netlist.device(f"cl_{side}"))

        reset_sw = self.netlist.device(f"sw_rst_{side}")
        input_sw = self.netlist.device(f"sw_in_{side}")

        # A shorted capacitor ties the top plate to its bottom-plate driver.
        if cm_short:
            return min(max(m_level, VSS), VDD)
        if cl_short:
            return min(max(l_level, VSS), VDD)
        if cs_short:
            # During conversion the sampling bottom plate is driven to Vcm.
            return min(max(vcm, VSS), VDD)

        # Sampling-phase behaviour of the switches.
        reset_closed_sampling = switch_state(reset_sw, nominal_on=True)
        input_closed_sampling = switch_state(input_sw, nominal_on=True)
        # Conversion-phase behaviour (both switches nominally open).
        reset_closed_conversion = switch_state(reset_sw, nominal_on=False)
        input_closed_conversion = switch_state(input_sw, nominal_on=False)

        top_initial = vcm if reset_closed_sampling else _UNRESET_TOP_PLATE

        # Bottom-plate potentials during sampling and conversion.
        sample_bottom_s = vin if input_closed_sampling else vcm
        convert_bottom_s = vin if input_closed_conversion else vcm
        if not input_closed_sampling:
            # The input was never sampled: the sampling capacitor carries no
            # signal charge.
            sample_bottom_s = convert_bottom_s

        c_total = cs + cm + cl
        if c_total <= 0.0:
            # Every capacitor open: the comparator input floats.
            return _UNRESET_TOP_PLATE

        delta_q = (cs * (convert_bottom_s - sample_bottom_s)
                   + cm * (m_level - vref_mid)
                   + cl * (l_level - vref_mid))
        top = top_initial + delta_q / c_total + mismatch

        if reset_closed_conversion:
            # The reset switch never opened: the top plate is resistively
            # loaded towards Vcm and only a fraction of the signal survives.
            top = vcm + _RESET_STUCK_ON_COUPLING * (top - vcm)
        return min(max(top, VSS), VDD)

    def evaluate(self, inputs: ScArrayInputs) -> ScArrayOutput:
        """Compute ``DAC+`` / ``DAC-`` for one conversion cycle."""
        dac_p = self._side("p", inputs.in_p, inputs.m_p, inputs.l_p,
                           inputs.vcm, inputs.vref_mid,
                           self.parameter("mismatch_p"))
        dac_m = self._side("n", inputs.in_m, inputs.m_m, inputs.l_m,
                           inputs.vcm, inputs.vref_mid,
                           self.parameter("mismatch_n"))
        return ScArrayOutput(dac_p=dac_p, dac_m=dac_m)
