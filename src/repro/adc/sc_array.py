"""Switched-capacitor (SC) array of the 10-bit DAC.

Paper context (Section III, Fig. 4): the sample-and-hold operation that keeps
the input constant during the conversion is performed within the SC array, and
the array combines the sampled input with the sub-DAC levels ``M+/M-`` and
``L+/L-`` to produce the differential comparison voltages ``DAC+`` / ``DAC-``
at the comparator input.  The SC array has symmetrical positive/negative
paths, which is what makes the invariance of Eq. (3),
``DAC+ + DAC- = 2*Vcm``, hold by construction.

Model: classic top-plate charge redistribution.  Per side the top plate is
reset to ``Vcm`` during sampling while the bottom plates of the sampling
capacitor ``Cs``, the MSB capacitor ``Cm`` and the LSB capacitor ``Cl`` sit at
the input, ``VREF[16]`` and ``VREF[16]`` respectively; during conversion the
bottom plates switch to ``Vcm``, ``M+/-`` and ``L+/-``.  Charge conservation
gives::

    DAC+/- = Vcm + [Cs*(Vcm - IN+/-) + Cm*(M+/- - VREF16) + Cl*(L+/- - VREF16)]
             / (Cs + Cm + Cl)

With matched capacitors, a fully-differential input (common mode = Vcm) and a
linear reference ladder, the sum of the two sides equals ``2*Vcm`` for every
code -- the Eq. (3) invariance.  Capacitor and switch defects break the
cancellation on one side only and shift the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..dut import DutSpec, default_dut
from .behavioral import effective_capacitance, switch_state
from .block import AnalogBlock

#: Residual coupling of the ideal DAC voltage through a permanently-on reset
#: switch (the switch loads the top plate towards Vcm but does not pin it).
_RESET_STUCK_ON_COUPLING = 0.3
#: Top-plate voltage left after a failed (stuck-off) reset: the node keeps the
#: discharged level from power-up instead of Vcm.
_UNRESET_TOP_PLATE = 0.0


@dataclass
class ScArrayInputs:
    """Signals feeding the SC array for one conversion cycle."""

    in_p: float
    in_m: float
    m_p: float
    m_m: float
    l_p: float
    l_m: float
    vcm: float
    vref_mid: float


@dataclass
class ScArrayOutput:
    """Differential comparison voltages at the comparator input."""

    dac_p: float
    dac_m: float


class ScArray(AnalogBlock):
    """Behavioral switched-capacitor array with a structural defect surface."""

    block_path = "sc_array"

    def __init__(self, name: str = "sc_array",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        # Capacitor weights follow the sub-DAC structure: the MSB capacitor
        # spans the counter codes (2**h units), the sampling capacitor one
        # unit more, the LSB capacitor one unit (33 / 32 / 1 for the paper's
        # 10-bit device).
        cs_units = float(self.dut.n_ref_levels)
        cm_units = float(self.dut.counter_codes)
        cl_units = 1.0
        c_unit = self.dut.c_unit
        nl = self.netlist
        for side in ("p", "n"):
            nl.add_capacitor(f"cs_{side}", p=f"top_{side}", n=f"bs_{side}",
                             value=cs_units * c_unit)
            nl.add_capacitor(f"cm_{side}", p=f"top_{side}", n=f"bm_{side}",
                             value=cm_units * c_unit)
            nl.add_capacitor(f"cl_{side}", p=f"top_{side}", n=f"bl_{side}",
                             value=cl_units * c_unit)
            nl.add_switch(f"sw_rst_{side}", p=f"top_{side}", n="vcm",
                          ctrl="phi_sample", ron=500.0)
            nl.add_switch(f"sw_in_{side}", p=f"bs_{side}", n=f"in_{side}",
                          ctrl="phi_sample", ron=300.0)

        self.declare_parameter("mismatch_p", 0.0, sigma=2e-4)
        self.declare_parameter("mismatch_n", 0.0, sigma=2e-4)

    # ------------------------------------------------------------------ model
    def _side(self, side: str, vin: float, m_level: float, l_level: float,
              vcm: float, vref_mid: float, mismatch: float) -> float:
        """Top-plate voltage of one side after charge redistribution."""
        cs, cs_short = effective_capacitance(self.netlist.device(f"cs_{side}"))
        cm, cm_short = effective_capacitance(self.netlist.device(f"cm_{side}"))
        cl, cl_short = effective_capacitance(self.netlist.device(f"cl_{side}"))

        reset_sw = self.netlist.device(f"sw_rst_{side}")
        input_sw = self.netlist.device(f"sw_in_{side}")

        # A shorted capacitor ties the top plate to its bottom-plate driver.
        if cm_short:
            return self._clamp(m_level)
        if cl_short:
            return self._clamp(l_level)
        if cs_short:
            # During conversion the sampling bottom plate is driven to Vcm.
            return self._clamp(vcm)

        # Sampling-phase behaviour of the switches.
        reset_closed_sampling = switch_state(reset_sw, nominal_on=True)
        input_closed_sampling = switch_state(input_sw, nominal_on=True)
        # Conversion-phase behaviour (both switches nominally open).
        reset_closed_conversion = switch_state(reset_sw, nominal_on=False)
        input_closed_conversion = switch_state(input_sw, nominal_on=False)

        top_initial = vcm if reset_closed_sampling else _UNRESET_TOP_PLATE

        # Bottom-plate potentials during sampling and conversion.
        sample_bottom_s = vin if input_closed_sampling else vcm
        convert_bottom_s = vin if input_closed_conversion else vcm
        if not input_closed_sampling:
            # The input was never sampled: the sampling capacitor carries no
            # signal charge.
            sample_bottom_s = convert_bottom_s

        c_total = cs + cm + cl
        if c_total <= 0.0:
            # Every capacitor open: the comparator input floats.
            return _UNRESET_TOP_PLATE

        delta_q = (cs * (convert_bottom_s - sample_bottom_s)
                   + cm * (m_level - vref_mid)
                   + cl * (l_level - vref_mid))
        top = top_initial + delta_q / c_total + mismatch

        if reset_closed_conversion:
            # The reset switch never opened: the top plate is resistively
            # loaded towards Vcm and only a fraction of the signal survives.
            top = vcm + _RESET_STUCK_ON_COUPLING * (top - vcm)
        return self._clamp(top)

    def _clamp(self, value: float) -> float:
        return min(max(value, self.dut.vss), self.dut.vdd)

    def evaluate(self, inputs: ScArrayInputs) -> ScArrayOutput:
        """Compute ``DAC+`` / ``DAC-`` for one conversion cycle."""
        dac_p = self._side("p", inputs.in_p, inputs.m_p, inputs.l_p,
                           inputs.vcm, inputs.vref_mid,
                           self.parameter("mismatch_p"))
        dac_m = self._side("n", inputs.in_m, inputs.m_m, inputs.l_m,
                           inputs.vcm, inputs.vref_mid,
                           self.parameter("mismatch_n"))
        return ScArrayOutput(dac_p=dac_p, dac_m=dac_m)
