"""ADC specification limits and specification-compliance checking.

The paper's functional-safety argument (and its closing remark about checking
whether undetected defects violate at least one specification) needs a notion
of the converter's datasheet specification.  This module defines the
specification limits of the 10-bit SAR ADC model and a container for measured
performances (produced by :mod:`repro.functional_test`), together with a
compliance check that lists the violated specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


@dataclass(frozen=True)
class AdcSpecification:
    """Datasheet limits of the 10-bit SAR ADC.

    The default numbers are typical for a general-purpose 10-bit SAR converter
    and are the limits used by the functional-test baseline when it decides
    whether a defective circuit still meets its datasheet.
    """

    #: Converter resolution the limits apply to; defaults to the paper's
    #: 10-bit device.  Use :meth:`for_adc` to bind the limits to a variant.
    resolution_bits: int = 10
    max_dnl_lsb: float = 1.0
    max_inl_lsb: float = 2.0
    min_enob_bits: float = 8.5
    max_offset_lsb: float = 4.0
    max_gain_error_percent: float = 1.0
    max_missing_codes: int = 0

    @classmethod
    def for_adc(cls, adc) -> "AdcSpecification":
        """Specification limits bound to an ADC instance's resolution."""
        return replace(cls(), resolution_bits=adc.dut.resolution_bits)

    def as_dict(self) -> Dict[str, float]:
        return {
            "resolution_bits": self.resolution_bits,
            "max_dnl_lsb": self.max_dnl_lsb,
            "max_inl_lsb": self.max_inl_lsb,
            "min_enob_bits": self.min_enob_bits,
            "max_offset_lsb": self.max_offset_lsb,
            "max_gain_error_percent": self.max_gain_error_percent,
            "max_missing_codes": self.max_missing_codes,
        }


@dataclass
class MeasuredPerformance:
    """Performances measured by the functional tests.

    Any field left as ``None`` is treated as "not measured" and is skipped by
    the compliance check.
    """

    dnl_max_lsb: Optional[float] = None
    inl_max_lsb: Optional[float] = None
    enob_bits: Optional[float] = None
    offset_lsb: Optional[float] = None
    gain_error_percent: Optional[float] = None
    missing_codes: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)


def check_specification(measured: MeasuredPerformance,
                        spec: Optional[AdcSpecification] = None) -> List[str]:
    """Return the list of violated specification names (empty = compliant)."""
    spec = spec or AdcSpecification()
    violations: List[str] = []
    if measured.dnl_max_lsb is not None and \
            measured.dnl_max_lsb > spec.max_dnl_lsb:
        violations.append("dnl")
    if measured.inl_max_lsb is not None and \
            measured.inl_max_lsb > spec.max_inl_lsb:
        violations.append("inl")
    if measured.enob_bits is not None and \
            measured.enob_bits < spec.min_enob_bits:
        violations.append("enob")
    if measured.offset_lsb is not None and \
            abs(measured.offset_lsb) > spec.max_offset_lsb:
        violations.append("offset")
    if measured.gain_error_percent is not None and \
            abs(measured.gain_error_percent) > spec.max_gain_error_percent:
        violations.append("gain_error")
    if measured.missing_codes is not None and \
            measured.missing_codes > spec.max_missing_codes:
        violations.append("missing_codes")
    return violations
