"""5-bit sub-DACs (SUBDAC1 / SUBDAC2) of the resistive + charge-redistribution DAC.

Paper context (Section III, Fig. 4): the 10-bit DAC is composed of two
structurally identical 5-bit sub-DACs plus a switched-capacitor array.
SUBDAC1 converts the five MSBs ``B<5:9>`` to the complementary comparison
levels ``M+`` / ``M-`` and SUBDAC2 converts the five LSBs ``B<0:4>`` to
``L+`` / ``L-`` according to Eq. (1) of the paper::

    OUT+ = VREF[code]          OUT- = VREF[32 - code]

Each sub-DAC is modelled as a pair of 33-to-1 tap multiplexers on the shared
reference ladder: one enable driver (a CMOS inverter pair) per tap, a tap
switch per output per tap (the negative output of tap ``t`` reuses the driver
of tap ``32 - t``, which is how the complementary selection is obtained), and
a small output buffer per output.  All of these devices are part of the defect
universe; the defect-to-behaviour mapping is:

* tap-switch defects: stuck-on adds a tap to the output node permanently,
  stuck-off removes it even when selected (missing tap);
* enable-driver defects: the pull-up stuck on forces the tap always selected,
  the pull-down stuck on (or the pull-up stuck off) makes the tap never
  selected; "weak" driver defects leave the selection unaffected and are
  therefore *undetectable by construction* (they contribute to the undetected
  population exactly like the real IP's benign defects);
* output-buffer defects: rail the output or add an offset.

Selected taps are combined by conductance-weighted averaging (the physical
result of several finite-resistance switches driving one node); an output with
no connected tap floats and discharges to the leakage level.

The tap count, the complementary-selection arithmetic and the rails all
derive from the instance's :class:`~repro.dut.DutSpec`: an ``n``-bit variant
has two ``n/2``-bit sub-DACs with ``2**(n/2) + 1`` taps each (the literals
above describe the paper's 10-bit device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.components import Device
from ..circuit.errors import SimulationError
from ..dut import DutSpec, default_dut
from .behavioral import MosState, mos_state, switch_conductance, switch_state
from .block import AnalogBlock

#: Nominal on-resistance of a tap switch.
_RON = 200.0


@dataclass
class SubDacOutput:
    """Complementary outputs of one sub-DAC for one input code."""

    out_p: float
    out_n: float


class SubDac(AnalogBlock):
    """One half-resolution sub-DAC (two complementary tap multiplexers)."""

    block_path = "subdac"

    def __init__(self, name: str, dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        #: Ladder taps of this instance; the highest tap index (``2**h``)
        #: is also the complement pivot of Eq. (1).
        self.n_levels = self.dut.n_ref_levels
        self._top = self.n_levels - 1
        self._code_max = self.dut.counter_codes - 1
        #: Voltage a floating (disconnected) output leaks to.
        self._float_level = self.dut.vss
        nl = self.netlist
        # Enable drivers: one CMOS inverter pair per tap (near-minimum digital
        # devices, hence a small area / defect-likelihood proxy).
        for j in range(self.n_levels):
            nl.add_pmos(f"drv_{j:02d}_p", d=f"en_{j}", g=f"sel_{j}", s="vdd",
                        w=0.6e-6)
            nl.add_nmos(f"drv_{j:02d}_n", d=f"en_{j}", g=f"sel_{j}", s="vss",
                        w=0.35e-6)
        # Tap switches for the positive and negative outputs.  They are sized
        # for low on-resistance (fast DAC settling), so their area -- and
        # therefore their defect likelihood -- is larger than the drivers'.
        for j in range(self.n_levels):
            nl.add_switch(f"swp_{j:02d}", p=f"tap_{j}", n="out_p",
                          ctrl=f"en_{j}", ron=_RON, w=1.5e-6)
            nl.add_switch(f"swn_{j:02d}", p=f"tap_{j}", n="out_n",
                          ctrl=f"en_{self._top - j}", ron=_RON, w=1.5e-6)
        # Output buffers (source follower + bias per output).
        nl.add_pmos("bufp_sf", d="vss", g="out_p", s="buf_p", w=3e-6)
        nl.add_nmos("bufp_bias", d="buf_p", g="nbias", s="vss", w=2e-6)
        nl.add_pmos("bufn_sf", d="vss", g="out_n", s="buf_n", w=3e-6)
        nl.add_nmos("bufn_bias", d="buf_n", g="nbias", s="vss", w=2e-6)

        self.declare_parameter("buffer_offset_p", 0.0, sigma=0.5e-3)
        self.declare_parameter("buffer_offset_n", 0.0, sigma=0.5e-3)

    # ------------------------------------------------------------------ model
    @staticmethod
    def _forced_inverter_output(pull_up: Device,
                                pull_down: Device) -> "bool | None":
        """Forced logic value of a defective enable driver, or ``None``.

        The driver is a CMOS inverter whose output is the switch-enable node.
        The mapping follows the physical reasoning per terminal:

        * pull-down drain-source or drain-bulk short: the enable is tied to
          ground -> forced low (the tap can never be selected);
        * pull-up drain-source or drain-bulk short: the enable is tied to the
          supply -> forced high (the tap is always selected);
        * pull-up unable to conduct (gate-source / gate-bulk short, open
          drain/source/gate): the enable can never be driven high -> forced
          low;
        * pull-down unable to conduct: the enable node cannot be discharged;
          once the counter selects the tap the floating node retains its high
          level, so the tap effectively stays selected -> forced high;
        * the remaining defects (source-bulk shorts, gate-drain shorts, bulk
          opens) only degrade the drive strength and leave the logic value
          unchanged -> ``None`` (these are the benign, undetectable defects).

        A conflict (both outputs forced) resolves to the rail short, which is
        the lower-impedance path.
        """
        def forced(device: Device, rail_value: bool) -> "bool | None":
            defect = device.defect
            if defect.is_clean:
                return None
            pair = defect.shorted_terminals
            if pair is not None:
                terms = set(pair)
                if terms in ({"d", "s"}, {"d", "b"}):
                    return rail_value            # output tied to this rail
                if terms in ({"g", "s"}, {"g", "b"}):
                    return not rail_value        # device can never conduct
                return None                      # g-d, s-b: degraded only
            term = defect.open_terminal
            if term in ("d", "s", "g"):
                return not rail_value            # device can never conduct
            return None                          # bulk open: degraded only

        forced_by_down = forced(pull_down, rail_value=False)
        forced_by_up = forced(pull_up, rail_value=True)
        if forced_by_down is False:
            return False
        if forced_by_up is True:
            return True
        if forced_by_up is False:
            return False
        if forced_by_down is True:
            return True
        return None

    def _driver_enable(self, tap: int, selected: bool) -> bool:
        """Effective enable of tap ``tap`` given decoder-driver defects."""
        pull_up = self.netlist.device(f"drv_{tap:02d}_p")
        pull_down = self.netlist.device(f"drv_{tap:02d}_n")
        if not pull_up.has_defect and not pull_down.has_defect:
            return selected
        forced_value = self._forced_inverter_output(pull_up, pull_down)
        if forced_value is None:
            return selected
        return forced_value

    def _mux_output(self, side: str, code: int,
                    vref: Sequence[float]) -> float:
        """Conductance-weighted tap voltage seen at one multiplexer output."""
        total_g = 0.0
        weighted = 0.0
        for tap in range(self.n_levels):
            if side == "p":
                nominal_sel = (tap == code)
                switch_dev = self.netlist.device(f"swp_{tap:02d}")
                driver_tap = tap
            else:
                nominal_sel = (tap == self._top - code)
                switch_dev = self.netlist.device(f"swn_{tap:02d}")
                driver_tap = self._top - tap
            enable = self._driver_enable(driver_tap, nominal_sel)
            conductance = switch_conductance(switch_dev, enable, _RON)
            if conductance <= 0.0:
                continue
            total_g += conductance
            weighted += conductance * vref[tap]
        if total_g <= 0.0:
            return self._float_level
        return weighted / total_g

    def _buffer(self, side: str, raw: float) -> float:
        """Apply the (possibly defective) output buffer of one side."""
        sf = self.netlist.device(f"buf{side}_sf")
        bias = self.netlist.device(f"buf{side}_bias")
        offset = self.parameter(f"buffer_offset_{side}")
        return self._apply_buffer(raw, offset, mos_state(sf), mos_state(bias))

    def _apply_buffer(self, raw: float, offset: float, sf_state: MosState,
                      bias_state: MosState) -> float:
        """The buffer arithmetic for pre-resolved device states.

        Shared by :meth:`_buffer` (one lookup per call) and the batched
        :meth:`sweep` (states resolved once per sweep) so the two paths are
        the same float arithmetic.
        """
        value = raw + offset
        if sf_state is MosState.STUCK_OFF:
            value = self._float_level
        elif sf_state is MosState.STUCK_ON:
            value = raw * 0.9
        elif sf_state is MosState.DEGRADED:
            value = raw + offset - 0.02
        if bias_state is MosState.STUCK_ON:
            value = max(value - 0.1, self.dut.vss)
        elif bias_state is MosState.STUCK_OFF:
            value = min(value + 0.05, self.dut.vdd)
        return min(max(value, self.dut.vss), self.dut.vdd)

    def _mux_table(self, side: str) -> Tuple[List[float], List[bool],
                                             List[bool], List[Optional[bool]],
                                             List[int]]:
        """Code-independent per-tap state of one (defective) multiplexer.

        Returns ``(g, con_on, con_off, forced, anomalous)``: the tap
        conductances, whether each tap switch conducts when enabled/disabled,
        the forced enable value of each tap's decoder driver (``None`` when
        the driver switches normally), and the sorted list of *anomalous*
        taps -- taps that deviate from clean behaviour (forced enable, a
        switch that conducts while disabled, or one that does not conduct
        while enabled).  Every non-anomalous tap contributes conductance
        exactly when it is the nominally selected tap, which is what lets
        :meth:`_mux_from_table` visit only ``anomalous + [selected]``.
        """
        g: List[float] = []
        con_on: List[bool] = []
        con_off: List[bool] = []
        forced: List[Optional[bool]] = []
        anomalous: List[int] = []
        for tap in range(self.n_levels):
            if side == "p":
                switch_dev = self.netlist.device(f"swp_{tap:02d}")
                driver_tap = tap
            else:
                switch_dev = self.netlist.device(f"swn_{tap:02d}")
                driver_tap = self._top - tap
            pull_up = self.netlist.device(f"drv_{driver_tap:02d}_p")
            pull_down = self.netlist.device(f"drv_{driver_tap:02d}_n")
            f = None
            if pull_up.has_defect or pull_down.has_defect:
                f = self._forced_inverter_output(pull_up, pull_down)
            on = switch_state(switch_dev, True)
            off = switch_state(switch_dev, False)
            ron = float(switch_dev.params.get("ron", _RON))
            g.append(1.0 / max(ron, 1e-3))
            con_on.append(on)
            con_off.append(off)
            forced.append(f)
            if f is not None or not on or off:
                anomalous.append(tap)
        return g, con_on, con_off, forced, anomalous

    def _mux_from_table(self,
                        table: Tuple[List[float], List[bool], List[bool],
                                     List[Optional[bool]], List[int]],
                        sel: int, vref: Sequence[float]) -> float:
        """:meth:`_mux_output` against a precomputed :meth:`_mux_table`.

        Bit-identical: contributing taps are accumulated in ascending tap
        order with the same conductance arithmetic; taps skipped here are
        exactly the taps the full scan skips with zero conductance (clean,
        not selected).
        """
        g, con_on, con_off, forced, anomalous = table
        if sel in anomalous:
            taps = anomalous
        else:
            taps = sorted(anomalous + [sel])
        total_g = 0.0
        weighted = 0.0
        for tap in taps:
            enable = forced[tap]
            if enable is None:
                enable = tap == sel
            if not (con_on[tap] if enable else con_off[tap]):
                continue
            conductance = g[tap]
            total_g += conductance
            weighted += conductance * vref[tap]
        if total_g <= 0.0:
            return self._float_level
        return weighted / total_g

    def evaluate(self, code: int, vref: Sequence[float]) -> SubDacOutput:
        """Convert a half-resolution ``code`` into the complementary outputs.

        Parameters
        ----------
        code:
            The digital input (``0 .. 2**half_bits - 1``).
        vref:
            The reference levels ``VREF[0] .. VREF[2**half_bits]``.
        """
        if not 0 <= code <= self._code_max:
            raise SimulationError(
                f"sub-DAC code must be in [0, {self._code_max}], got {code}")
        if len(vref) != self.n_levels:
            raise SimulationError(
                f"expected {self.n_levels} reference levels, got {len(vref)}")
        if not self.netlist.has_defect:
            # Fast path for the defect-free multiplexer: exactly one switch per
            # output is closed, so the mux output is the selected tap and the
            # buffer only adds its (process-variation) offset.
            out_p = self._clamp(vref[code] + self.parameter("buffer_offset_p"))
            out_n = self._clamp(vref[self._top - code]
                                + self.parameter("buffer_offset_n"))
            return SubDacOutput(out_p=out_p, out_n=out_n)
        out_p = self._buffer("p", self._mux_output("p", code, vref))
        out_n = self._buffer("n", self._mux_output("n", code, vref))
        return SubDacOutput(out_p=out_p, out_n=out_n)

    def sweep(self, codes: Sequence[int],
              vref: Sequence[float]) -> List[SubDacOutput]:
        """Evaluate many codes against one defect state of the netlist.

        Bit-identical to calling :meth:`evaluate` per code, but the
        ``netlist.has_defect`` scan (which walks every device of the block
        and dominates the defect-free cost) runs once for the whole sweep
        instead of once per code.  This is the sub-DAC hot path of the
        batched defect evaluator.
        """
        if len(vref) != self.n_levels:
            raise SimulationError(
                f"expected {self.n_levels} reference levels, got {len(vref)}")
        has_defect = self.netlist.has_defect
        offset_p = self.parameter("buffer_offset_p")
        offset_n = self.parameter("buffer_offset_n")
        outputs: List[SubDacOutput] = []
        if has_defect:
            # The defect state is fixed for the whole sweep: resolve the
            # per-tap mux behaviour and the buffer device states once, then
            # evaluate each code against the tables.
            table_p = self._mux_table("p")
            table_n = self._mux_table("n")
            sf_p = mos_state(self.netlist.device("bufp_sf"))
            bias_p = mos_state(self.netlist.device("bufp_bias"))
            sf_n = mos_state(self.netlist.device("bufn_sf"))
            bias_n = mos_state(self.netlist.device("bufn_bias"))
        for code in codes:
            if not 0 <= code <= self._code_max:
                raise SimulationError(
                    f"sub-DAC code must be in [0, {self._code_max}], "
                    f"got {code}")
            if not has_defect:
                outputs.append(SubDacOutput(
                    out_p=self._clamp(vref[code] + offset_p),
                    out_n=self._clamp(vref[self._top - code] + offset_n)))
                continue
            outputs.append(SubDacOutput(
                out_p=self._apply_buffer(
                    self._mux_from_table(table_p, code, vref),
                    offset_p, sf_p, bias_p),
                out_n=self._apply_buffer(
                    self._mux_from_table(table_n, self._top - code, vref),
                    offset_n, sf_n, bias_n)))
        return outputs

    def _clamp(self, value: float) -> float:
        return min(max(value, self.dut.vss), self.dut.vdd)


def make_subdac1(dut: Optional[DutSpec] = None) -> SubDac:
    """SUBDAC1: converts the MSB half-code ``B<5:9>`` into ``M+`` / ``M-``."""
    dac = SubDac("subdac1", dut=dut)
    dac.block_path = "subdac1"
    return dac


def make_subdac2(dut: Optional[DutSpec] = None) -> SubDac:
    """SUBDAC2: converts the LSB half-code ``B<0:4>`` into ``L+`` / ``L-``."""
    dac = SubDac("subdac2", dut=dut)
    dac.block_path = "subdac2"
    return dac
