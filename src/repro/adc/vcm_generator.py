"""Vcm generator -- produces the common-mode voltage used inside the DAC.

Paper context (Section III): "Vcm Generator: It generates the common mode
voltage Vcm used inside the DAC."  The paper checks this block *directly* with
the invariance of Eq. (3), ``DAC+ + DAC- = 2*Vcm``: the switched-capacitor
array resets its top plates to the Vcm generator output, so the DAC output
common mode tracks the generated Vcm while the window comparator compares it
against a fixed (supply-derived) reference -- a shifted Vcm is therefore
observable for the whole test duration (Fig. 5 of the paper).

Model: a resistive divider from the bandgap voltage followed by a small
buffer, with a large decoupling capacitor on the output.  The decoupling
capacitor is physically large, so its defects carry a high likelihood, yet
only its *short* defect disturbs the DC value of Vcm -- opens and value
deviations are DC-invisible.  This is what pushes the likelihood-weighted
coverage of the block well below its raw coverage, the effect the paper calls
out for the blocks with low L-W numbers in Table I.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuit.errors import SolverError
from ..circuit.solver import LinearNetwork
from ..dut import DutSpec, default_dut
from .behavioral import (MosState, PassiveState, mos_state, passive_state)
from .block import AnalogBlock


class VcmGenerator(AnalogBlock):
    """Behavioral Vcm generator (bandgap-referenced divider + buffer)."""

    block_path = "vcm_generator"

    def __init__(self, name: str = "vcm_generator",
                 dut: Optional[DutSpec] = None) -> None:
        super().__init__(name)
        self.dut = dut or default_dut()
        nl = self.netlist
        nl.add_resistor("r_top", p="vbg", n="vcm_div", value=50e3)
        nl.add_resistor("r_bot", p="vcm_div", n="vss", value=50e3)
        # Source-follower style buffer (modelled with two MOS devices).
        nl.add_pmos("mp_sf", d="vss", g="vcm_div", s="vcm", w=10e-6)
        nl.add_nmos("mn_bias", d="vcm", g="nbias", s="vss", w=8e-6)
        # Large decoupling capacitor on the Vcm output.
        nl.add_capacitor("c_dec", p="vcm", n="vss", value=8e-12)

        self.declare_parameter("buffer_offset", 0.0, sigma=1.2e-3)

    # ------------------------------------------------------------------ model
    def evaluate(self, vbg: float) -> float:
        """Return the generated common-mode voltage."""
        nl = self.netlist
        net = LinearNetwork()
        net.set_voltage("vbg", vbg)
        net.set_voltage("vss", self.dut.vss)
        for name in ("r_top", "r_bot"):
            dev = nl.device(name)
            state, value = passive_state(dev)
            net.add_resistor(dev.net_of("p"), dev.net_of("n"), value)
        try:
            vdiv = net.solve()["vcm_div"]
        except SolverError:
            vdiv = self.dut.vss

        vcm = vdiv + self.parameter("buffer_offset")

        # Buffer defects.
        sf_state = mos_state(nl.device("mp_sf"))
        bias_state = mos_state(nl.device("mn_bias"))
        if sf_state is MosState.STUCK_OFF:
            vcm = self.dut.vss  # follower gone, bias pulls the node down
        elif sf_state is MosState.STUCK_ON:
            vcm = vdiv * 0.85  # follower degenerated into a resistive path
        elif sf_state is MosState.DEGRADED:
            # Weaker follower: a small systematic droop, typically inside the
            # comparison window (an undetectable, benign defect).
            vcm = vdiv - 0.008
        if bias_state is MosState.STUCK_ON:
            vcm = max(vcm - 0.15, self.dut.vss)
        elif bias_state is MosState.STUCK_OFF:
            # The buffer loses its bias current; the output drifts up a little
            # but stays close to the divider voltage.
            vcm = min(vcm + 0.012, self.dut.vdd)

        # Decoupling capacitor: only a plate short affects the DC level.
        dec_state, _ = passive_state(nl.device("c_dec"))
        if dec_state is PassiveState.SHORTED:
            vcm = self.dut.vss
        return min(max(vcm, self.dut.vss), self.dut.vdd)

    # -------------------------------------------------------------- observers
    def observables(self, vbg: float) -> Dict[str, float]:
        return {"VCM": self.evaluate(vbg)}
