"""Analysis utilities: Monte Carlo driving, statistics, yield-loss modelling."""

from .escape_analysis import (EscapeAnalysisResult, EscapeRecord,
                              analyze_escapes)
from .monte_carlo import MonteCarloResult, MonteCarloRunner
from .statistics import (StatisticsError, SummaryStatistics, Z_95,
                         gaussian_exceedance_probability, per_test_to_per_run,
                         percentile, proportion_ci, summarize)
from .yield_loss import (YieldLossPoint, analytic_yield_loss,
                         empirical_yield_loss, yield_loss_sweep)

__all__ = [
    "EscapeAnalysisResult", "EscapeRecord", "analyze_escapes",
    "MonteCarloResult", "MonteCarloRunner", "StatisticsError",
    "SummaryStatistics", "YieldLossPoint", "Z_95", "analytic_yield_loss",
    "empirical_yield_loss", "gaussian_exceedance_probability",
    "per_test_to_per_run", "percentile", "proportion_ci", "summarize",
    "yield_loss_sweep",
]
