"""Test-escape analysis: do the defects SymBIST misses matter functionally?

The paper closes with: "Undetected defects should be analysed carefully and it
is also interesting to report the percentage of undetected defects that result
in at least one specification being violated.  This is a tedious and
time-consuming analysis and is out of the scope of this paper."

This module performs exactly that analysis on the behavioral model: for every
(sampled) defect that the SymBIST campaign left undetected, the functional
test suite measures the converter against its datasheet.  Escapes split into

* **benign escapes** -- the part still meets every specification; missing them
  costs nothing (they are the reason L-W coverage understates quality);
* **functional escapes** -- the part violates at least one specification;
  these are the true test escapes that would reach customers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..adc.sar_adc import SarAdc
from ..adc.spec import AdcSpecification
from ..circuit.errors import CoverageError
from ..defects.injection import DefectInjector
from ..defects.model import Defect
from ..defects.simulator import (CampaignResult, defect_from_jsonable,
                                 defect_to_jsonable)
from ..engine import ResultCodec
from ..functional_test.baseline_bist import FunctionalBistBaseline


@dataclass
class EscapeRecord:
    """Functional assessment of one SymBIST-undetected defect."""

    defect: Defect
    spec_violations: List[str]
    gross_failure: bool

    @property
    def is_functional_escape(self) -> bool:
        """True when the undetected defect breaks at least one specification."""
        return self.gross_failure or bool(self.spec_violations)


@dataclass
class EscapeAnalysisResult:
    """Aggregate outcome of the escape analysis."""

    records: List[EscapeRecord]
    n_undetected_total: int

    @property
    def n_analyzed(self) -> int:
        return len(self.records)

    @property
    def n_functional_escapes(self) -> int:
        return sum(1 for r in self.records if r.is_functional_escape)

    @property
    def n_benign(self) -> int:
        return self.n_analyzed - self.n_functional_escapes

    @property
    def functional_escape_fraction(self) -> float:
        """Fraction of analysed undetected defects that violate a spec."""
        if self.n_analyzed == 0:
            raise CoverageError("no undetected defects were analysed")
        return self.n_functional_escapes / self.n_analyzed

    def violations_histogram(self) -> Dict[str, int]:
        """How often each specification is violated among the escapes."""
        histogram: Dict[str, int] = {}
        for record in self.records:
            for name in record.spec_violations:
                histogram[name] = histogram.get(name, 0) + 1
        return histogram

    def by_block(self) -> Dict[str, List[EscapeRecord]]:
        grouped: Dict[str, List[EscapeRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.defect.block_path, []).append(record)
        return grouped


def _escapes_to_jsonable(result: EscapeAnalysisResult) -> Dict[str, Any]:
    return {
        "n_undetected_total": result.n_undetected_total,
        "records": [{"defect": defect_to_jsonable(r.defect),
                     "spec_violations": list(r.spec_violations),
                     "gross_failure": r.gross_failure}
                    for r in result.records],
    }


def _escapes_from_jsonable(data: Mapping[str, Any]) -> EscapeAnalysisResult:
    return EscapeAnalysisResult(
        records=[EscapeRecord(defect=defect_from_jsonable(raw["defect"]),
                              spec_violations=list(raw["spec_violations"]),
                              gross_failure=raw["gross_failure"])
                 for raw in data["records"]],
        n_undetected_total=data["n_undetected_total"])


#: Cache codec turning escape analyses into JSON artifacts and back; used by
#: the yield-loss study pipeline (:mod:`repro.engine.pipeline`).
ESCAPE_CODEC = ResultCodec(encode=_escapes_to_jsonable,
                           decode=_escapes_from_jsonable)


def analyze_escapes(campaign_result: CampaignResult,
                    adc: Optional[SarAdc] = None,
                    injector: Optional[DefectInjector] = None,
                    spec: Optional[AdcSpecification] = None,
                    baseline: Optional[FunctionalBistBaseline] = None,
                    max_defects: Optional[int] = 20,
                    rng: Optional[np.random.Generator] = None
                    ) -> EscapeAnalysisResult:
    """Run the functional suite on (a sample of) the undetected defects.

    Parameters
    ----------
    campaign_result:
        Result of a SymBIST defect campaign.
    adc / injector:
        The IP instance and injector to reuse; fresh ones are built otherwise
        (the analysis then applies to an identical nominal-corner instance).
    max_defects:
        Upper bound on how many undetected defects to analyse (the functional
        suite needs hundreds of conversions per defect, which is exactly the
        "tedious and time-consuming" cost the paper mentions).  ``None``
        analyses every undetected defect.
    """
    undetected = campaign_result.undetected_defects()
    if not undetected:
        return EscapeAnalysisResult(records=[], n_undetected_total=0)

    if adc is None:
        adc = SarAdc()
    if injector is None:
        injector = DefectInjector(adc.build_hierarchy())
    baseline = baseline or FunctionalBistBaseline(
        linearity_span_codes=48, samples_per_code=4, sine_samples=128,
        spec=spec or AdcSpecification())

    selected: Sequence[Defect] = undetected
    if max_defects is not None and len(undetected) > max_defects:
        rng = rng if rng is not None else np.random.default_rng(0)
        indices = rng.choice(len(undetected), size=max_defects, replace=False)
        selected = [undetected[int(i)] for i in indices]

    records: List[EscapeRecord] = []
    for defect in selected:
        with injector.injected(defect):
            outcome = baseline.run(adc)
        records.append(EscapeRecord(defect=defect,
                                    spec_violations=list(outcome.violations),
                                    gross_failure=outcome.gross_failure))
    return EscapeAnalysisResult(records=records,
                                n_undetected_total=len(undetected))
