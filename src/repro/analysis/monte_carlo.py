"""Generic Monte Carlo driver over process-variation samples of the IP.

The window calibration (:mod:`repro.core.calibration`) and the yield-loss
study (:mod:`repro.analysis.yield_loss`) both need the same loop: build a
fresh defect-free IP, draw a process-variation sample, evaluate something,
collect the results.  :class:`MonteCarloRunner` factors that loop out and adds
deterministic seeding and simple result book-keeping.

Seeding model
-------------
Each sample draws from its own generator, seeded by one
``np.random.SeedSequence(seed).spawn(n_samples)`` child per sample.  Sample
``i`` therefore sees the same random stream whether the run is serial or
sharded across a process pool, and whatever order samples complete in.  (The
historical implementation drew all samples sequentially from a single
``default_rng(seed)`` stream, which tied the results to evaluation order;
runs seeded under that scheme produce different -- equally valid -- values.)

Scaling
-------
The runner executes through :class:`repro.engine.CampaignEngine`; pass
``backend=MultiprocessBackend(max_workers=N)`` to shard samples across
processes, or ``SharedMemoryBackend(max_workers=N)`` to additionally ship
the evaluation context to the workers once through shared memory
(``evaluate`` and ``adc_factory`` must then be picklable, i.e. module-level
callables rather than lambdas).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Generic, List, Mapping, Optional, TypeVar

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import SimulationError
from ..circuit.variation import VariationSpec
from ..engine import (CampaignEngine, CampaignReport, ExecutionBackend,
                      ResultCache, ResultCodec, Task, TaskGraph,
                      callable_token, factory_token)
from ..engine.telemetry import TelemetryBus

ResultT = TypeVar("ResultT")


@dataclass
class MonteCarloResult(Generic[ResultT]):
    """Per-sample results of a Monte Carlo run."""

    samples: List[ResultT] = field(default_factory=list)
    n_samples: int = 0
    #: Engine instrumentation of the run that produced the samples (None for
    #: results assembled by hand).
    engine_report: Optional[CampaignReport] = None

    def append(self, value: ResultT) -> None:
        self.samples.append(value)
        self.n_samples += 1


def _sample_worker(context: Mapping[str, Any], task: Task,
                   rng: np.random.Generator) -> Any:
    """Engine worker: build one IP instance, vary it, evaluate it."""
    adc = context["adc_factory"]()
    adc.sample_variation(rng, context["variation_spec"])
    return context["evaluate"](adc, task.payload)


class MonteCarloRunner:
    """Runs a callable over process-variation samples of defect-free IPs.

    Parameters
    ----------
    adc_factory:
        Builds a fresh IP instance per sample (defaults to
        :class:`~repro.adc.sar_adc.SarAdc`).
    variation_spec:
        Process-variation sigmas; defaults to the standard spec.
    seed:
        Root seed; one ``SeedSequence`` child is spawned per sample, so runs
        with the same seed and sample count are bit-identical on every
        backend.
    backend:
        Optional execution backend (default: serial).
    cache:
        Optional :class:`~repro.engine.ResultCache`.  Samples are only cached
        when :meth:`run` receives a ``spec`` describing the evaluation (the
        ``evaluate`` callable itself cannot be content-hashed).
    """

    def __init__(self, adc_factory: Callable[[], SarAdc] = SarAdc,
                 variation_spec: Optional[VariationSpec] = None,
                 seed: int = 0,
                 backend: Optional[ExecutionBackend] = None,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[TelemetryBus] = None) -> None:
        self.adc_factory = adc_factory
        self.variation_spec = variation_spec or VariationSpec()
        self.seed = seed
        self.backend = backend
        self.cache = cache
        self.telemetry = telemetry

    def run(self, evaluate: Callable[[SarAdc, int], ResultT],
            n_samples: int,
            spec: Optional[Mapping[str, Any]] = None,
            codec: Optional[ResultCodec] = None
            ) -> MonteCarloResult[ResultT]:
        """Evaluate ``evaluate(adc, sample_index)`` on ``n_samples`` instances.

        ``spec`` is an optional JSON-serialisable description of what
        ``evaluate`` computes; providing it (together with a configured
        cache) makes repeated runs near-free.  Cached results must be
        JSON-serialisable, either natively or through ``codec`` (a
        :class:`~repro.engine.ResultCodec` converting samples to/from the
        stored JSON).
        """
        if n_samples <= 0:
            raise SimulationError("n_samples must be positive")
        # Cache keys must cover everything a sample depends on: the IP
        # factory, the variation spec, and the identity of ``evaluate``
        # itself (two evaluations with the same user spec must never share
        # artifacts).  Callables without a stable qualified name cannot be
        # hashed, so those runs are never cached.
        factory_name = factory_token(self.adc_factory)
        evaluate_name = callable_token(evaluate)
        tasks = TaskGraph()
        for index in range(n_samples):
            # n_samples is deliberately absent from the spec: per-sample
            # SeedSequence children make sample i independent of the total
            # count, so a longer run reuses the cached prefix of a shorter
            # one.
            task_spec: Optional[Dict[str, Any]] = None
            if spec is not None and factory_name is not None \
                    and evaluate_name is not None:
                task_spec = {"driver": "monte-carlo", "sample": index,
                             "evaluate": dict(spec),
                             "evaluate_fn": evaluate_name,
                             "factory": factory_name,
                             "variation": asdict(self.variation_spec)}
            tasks.add(Task(task_id=f"mc/{index}", payload=index,
                           spec=task_spec))
        engine = CampaignEngine(backend=self.backend, cache=self.cache,
                                seed=self.seed, telemetry=self.telemetry)
        context = {"adc_factory": self.adc_factory,
                   "variation_spec": self.variation_spec,
                   "evaluate": evaluate}
        run = engine.run(tasks, _sample_worker, context=context, codec=codec)
        result: MonteCarloResult[ResultT] = MonteCarloResult()
        for value in run.results:
            result.append(value)
        result.engine_report = run.report
        return result
