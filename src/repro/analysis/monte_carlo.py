"""Generic Monte Carlo driver over process-variation samples of the IP.

The window calibration (:mod:`repro.core.calibration`) and the yield-loss
study (:mod:`repro.analysis.yield_loss`) both need the same loop: build a
fresh defect-free IP, draw a process-variation sample, evaluate something,
collect the results.  :class:`MonteCarloRunner` factors that loop out and adds
deterministic seeding and simple result book-keeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, TypeVar

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import SimulationError
from ..circuit.variation import VariationSpec

ResultT = TypeVar("ResultT")


@dataclass
class MonteCarloResult(Generic[ResultT]):
    """Per-sample results of a Monte Carlo run."""

    samples: List[ResultT] = field(default_factory=list)
    n_samples: int = 0

    def append(self, value: ResultT) -> None:
        self.samples.append(value)
        self.n_samples += 1


class MonteCarloRunner:
    """Runs a callable over process-variation samples of defect-free IPs.

    Parameters
    ----------
    adc_factory:
        Builds a fresh IP instance per sample (defaults to
        :class:`~repro.adc.sar_adc.SarAdc`).
    variation_spec:
        Process-variation sigmas; defaults to the standard spec.
    seed:
        Seed of the internal random generator; runs with the same seed and
        sample count are bit-identical.
    """

    def __init__(self, adc_factory: Callable[[], SarAdc] = SarAdc,
                 variation_spec: Optional[VariationSpec] = None,
                 seed: int = 0) -> None:
        self.adc_factory = adc_factory
        self.variation_spec = variation_spec or VariationSpec()
        self.seed = seed

    def run(self, evaluate: Callable[[SarAdc, int], ResultT],
            n_samples: int) -> MonteCarloResult[ResultT]:
        """Evaluate ``evaluate(adc, sample_index)`` on ``n_samples`` instances."""
        if n_samples <= 0:
            raise SimulationError("n_samples must be positive")
        rng = np.random.default_rng(self.seed)
        result: MonteCarloResult[ResultT] = MonteCarloResult()
        for index in range(n_samples):
            adc = self.adc_factory()
            adc.sample_variation(rng, self.variation_spec)
            result.append(evaluate(adc, index))
        return result
