"""Statistical helpers shared by calibration, coverage and yield analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..circuit.errors import ReproError

#: z-value of the two-sided 95 % normal quantile.
Z_95 = 1.959963984540054


class StatisticsError(ReproError):
    """Raised for ill-posed statistical computations."""


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean / standard deviation / extremes of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def mean_ci95_half_width(self) -> float:
        """Half-width of the 95 % confidence interval of the mean."""
        if self.n <= 1:
            return float("inf")
        return Z_95 * self.std / math.sqrt(self.n)


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of a non-empty sample."""
    if len(values) == 0:
        raise StatisticsError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return SummaryStatistics(n=int(arr.size), mean=float(arr.mean()),
                             std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                             minimum=float(arr.min()), maximum=float(arr.max()))


def proportion_ci(successes: int, trials: int,
                  z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval ``(center, half_width)`` for a proportion."""
    if trials <= 0:
        raise StatisticsError("proportion_ci needs at least one trial")
    if not 0 <= successes <= trials:
        raise StatisticsError("successes must lie within [0, trials]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / trials
                                   + z * z / (4.0 * trials * trials))
    return center, half


def gaussian_exceedance_probability(k: float) -> float:
    """Probability that |X| > k*sigma for a zero-mean Gaussian X.

    Used by the analytic yield-loss model: a defect-free invariant signal that
    is Gaussian leaves a ``[-k*sigma, k*sigma]`` window with this probability
    per independent check.
    """
    if k < 0:
        raise StatisticsError("k must be non-negative")
    return float(math.erfc(k / math.sqrt(2.0)))


def per_test_to_per_run(p_single: float, n_checks: int) -> float:
    """Probability of at least one excursion over ``n_checks`` independent checks."""
    if not 0.0 <= p_single <= 1.0:
        raise StatisticsError("p_single must be a probability")
    if n_checks <= 0:
        raise StatisticsError("n_checks must be positive")
    return 1.0 - (1.0 - p_single) ** n_checks


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of a non-empty sample."""
    if len(values) == 0:
        raise StatisticsError("cannot take the percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise StatisticsError("q must be within [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))
