"""Yield-loss analysis versus the window-size multiplier ``k``.

Paper context: the comparison window is ``delta = k * sigma`` and "k is set
accordingly so as to avoid yield loss" (Section II); the experiment uses
``k = 5`` "so as to guarantee that yield loss is negligible" (Section VI).

Yield loss here is the probability that a *defect-free* circuit fails the
SymBIST test because process variations push an invariant signal outside its
window.  Two estimators are provided:

* an **analytic** Gaussian model: each settled check of invariance ``i`` fails
  with probability ``erfc(k / sqrt(2))``; a test run performs
  ``n_cycles`` checks per (continuous) invariance, assumed independent across
  Monte Carlo instances but fully correlated across cycles of the same
  instance in the conservative variant;
* an **empirical** Monte Carlo estimator: re-use the residual pools collected
  during calibration, rebuild the windows for each candidate ``k`` and count
  the defect-free instances that would fail.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..circuit.errors import CalibrationError
from ..core.calibration import WindowCalibration, collect_defect_free_residuals
from ..core.stimulus import SymBistStimulus
from ..engine import (CampaignEngine, ExecutionBackend, ResultCache,
                      ResultCodec, Task, TaskGraph, canonical_json)
from ..engine.telemetry import TelemetryBus
from .statistics import (gaussian_exceedance_probability, per_test_to_per_run,
                         proportion_ci)

#: Invariances whose defect-free residual is exactly zero (discrete checks);
#: they never contribute to yield loss.
_DISCRETE_INVARIANCES = ("sign", "latch_sum")


@dataclass(frozen=True)
class YieldLossPoint:
    """Yield loss estimate for one value of ``k``."""

    k: float
    analytic_single_check: float
    analytic_per_run: float
    empirical: Optional[float] = None
    empirical_ci_half_width: Optional[float] = None

    @property
    def analytic_ppm(self) -> float:
        """Analytic per-run yield loss expressed in parts-per-million."""
        return 1e6 * self.analytic_per_run


def analytic_yield_loss(k: float, n_continuous_invariances: int = 4,
                        checks_per_invariance: int = 32,
                        correlated_within_run: bool = True) -> YieldLossPoint:
    """Gaussian yield-loss model for one ``k``.

    With ``correlated_within_run`` (the default, and the realistic case: the
    residual of a given die barely changes across counter codes) a die fails
    when its single residual draw exceeds ``k * sigma``, so the per-run
    failure probability aggregates over invariances only.  The uncorrelated
    variant multiplies over every check and is a pessimistic upper bound.
    """
    if k <= 0:
        raise CalibrationError("k must be positive")
    p_single = gaussian_exceedance_probability(k)
    n_checks = n_continuous_invariances if correlated_within_run else \
        n_continuous_invariances * checks_per_invariance
    return YieldLossPoint(k=k, analytic_single_check=p_single,
                          analytic_per_run=per_test_to_per_run(p_single,
                                                               n_checks))


def empirical_yield_loss(calibration: WindowCalibration, k: float,
                         n_cycles: int = 32) -> YieldLossPoint:
    """Estimate yield loss for ``k`` from calibration residual pools.

    Requires a calibration created with ``keep_pools=True``: the pooled
    residuals are grouped back into per-instance runs of ``n_cycles`` samples
    and each instance is re-checked against windows rebuilt for ``k``.
    """
    if not calibration.residual_pools:
        raise CalibrationError(
            "empirical_yield_loss needs a calibration with keep_pools=True")
    scaled = calibration.scaled(k)
    analytic = analytic_yield_loss(k)

    n_instances = None
    failures = 0
    for name, pool in calibration.residual_pools.items():
        if name in _DISCRETE_INVARIANCES:
            continue
        values = np.asarray(pool, dtype=float)
        if values.size % n_cycles != 0:
            raise CalibrationError(
                f"residual pool of {name!r} ({values.size} samples) is not a "
                f"multiple of {n_cycles} cycles")
        runs = values.reshape(-1, n_cycles)
        if n_instances is None:
            n_instances = runs.shape[0]
            fails_per_instance = np.zeros(n_instances, dtype=bool)
        delta = scaled.delta(name)
        fails_per_instance |= (np.abs(runs) > delta).any(axis=1)
    if n_instances is None:
        raise CalibrationError("calibration has no continuous invariance pools")
    failures = int(fails_per_instance.sum())
    center, half = proportion_ci(failures, n_instances)
    return YieldLossPoint(k=k,
                          analytic_single_check=analytic.analytic_single_check,
                          analytic_per_run=analytic.analytic_per_run,
                          empirical=failures / n_instances,
                          empirical_ci_half_width=half)


def _yield_loss_worker(context: Mapping[str, Any], task: Task,
                       rng: np.random.Generator) -> YieldLossPoint:
    """Engine worker: one ``(k, yield)`` point of the sweep."""
    calibration: Optional[WindowCalibration] = context["calibration"]
    if calibration is not None and calibration.residual_pools:
        return empirical_yield_loss(calibration, task.payload,
                                    context["n_cycles"])
    return analytic_yield_loss(task.payload)


#: Cache codec for yield-loss points (plain dataclass of floats).
POINT_CODEC = ResultCodec(encode=asdict,
                          decode=lambda data: YieldLossPoint(**data))


def _pools_fingerprint(calibration: Optional[WindowCalibration]) -> str:
    """Stable digest of the residual pools a sweep point depends on."""
    if calibration is None or not calibration.residual_pools:
        return "analytic"
    body = canonical_json(calibration.residual_pools)
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def yield_loss_sweep(calibration: Optional[WindowCalibration] = None,
                     k_values: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0),
                     n_cycles: int = 32,
                     backend: Optional[ExecutionBackend] = None,
                     cache: Optional[ResultCache] = None,
                     telemetry: Optional[TelemetryBus] = None
                     ) -> List[YieldLossPoint]:
    """Yield loss across a sweep of ``k`` values (the E5 experiment).

    Each ``k`` is one deterministic engine task, so the sweep can be sharded
    or cached like any other campaign.

    Parameters
    ----------
    backend:
        Campaign-engine execution backend (see :mod:`repro.engine`); the
        default serial backend reproduces the historical loop exactly, and
        ``MultiprocessBackend(max_workers=N)`` or
        ``SharedMemoryBackend(max_workers=N)`` shard the ``k`` points
        across processes with identical results.
    cache:
        Optional :class:`~repro.engine.ResultCache`; per-``k`` points are
        stored keyed by ``k``, ``n_cycles`` and a digest of the
        calibration's residual pools, so re-running an identical sweep
        replays them instead of recomputing.
    """
    # The pools digest is cache-key material only; hashing ~n_samples*cycles
    # floats is pointless on uncached sweeps.
    pools_token = _pools_fingerprint(calibration) if cache is not None else None
    tasks = TaskGraph()
    for index, k in enumerate(k_values):
        spec = None
        if pools_token is not None:
            spec = {"driver": "yield-loss-sweep", "k": float(k),
                    "n_cycles": n_cycles, "pools": pools_token}
        tasks.add(Task(task_id=f"yield/{index}/k={k:g}", payload=float(k),
                       spec=spec, deterministic=True))
    engine = CampaignEngine(backend=backend, cache=cache,
                            telemetry=telemetry)
    run = engine.run(tasks, _yield_loss_worker,
                     context={"calibration": calibration,
                              "n_cycles": n_cycles},
                     codec=POINT_CODEC)
    return list(run.results)
