"""Behavioral circuit-simulation substrate.

This subpackage contains everything the SAR ADC model and the SymBIST/defect
machinery need that is *not* specific to the paper's IP: primitive devices and
structural netlists (the surface on which defects are enumerated and
injected), a linear nodal-analysis solver for resistive networks, waveform
traces, a cycle-based transient engine with a glitch model, and process-
variation utilities for Monte Carlo analysis.
"""

from .components import (DefectState, Device, DeviceKind, PullDirection,
                         TERMINALS, capacitor, diode, nmos, npn, pmos, pnp,
                         resistor, switch)
from .errors import (BistConfigurationError, CalibrationError, ComponentError,
                     CoverageError, DefectError, DigitalTestError,
                     DutSpecError, EngineError, FunctionalTestError,
                     NetlistError, ReproError, SimulationError, SolverError,
                     TaskExecutionError)
from .netlist import HierarchyEntry, Netlist, NetlistHierarchy
from .signals import Trace, WaveformSet
from .simulator import (ClockedStimulus, GlitchModel, SequenceStimulus,
                        SimulationResult, TransientSimulator)
from .solver import LinearNetwork, solve_resistor_string
from .units import (ADC_BITS, F_CLK, N_REF_LEVELS, OPEN_RESISTANCE,
                    PASSIVE_DEVIATION, SHORT_RESISTANCE, VCM2_NOMINAL,
                    VCM_NOMINAL, VDD, VSS, WEAK_PULL_RESISTANCE, db, from_db,
                    lsb_size, parallel)
from .variation import (GaussianParameter, VariationSpec, reset_variation,
                        vary_netlist)

__all__ = [
    "ADC_BITS", "F_CLK", "N_REF_LEVELS", "OPEN_RESISTANCE",
    "PASSIVE_DEVIATION", "SHORT_RESISTANCE", "VCM2_NOMINAL", "VCM_NOMINAL",
    "VDD", "VSS", "WEAK_PULL_RESISTANCE",
    "BistConfigurationError", "CalibrationError", "ClockedStimulus",
    "ComponentError", "CoverageError", "DefectError", "DefectState", "Device",
    "DeviceKind", "DigitalTestError", "DutSpecError", "EngineError",
    "FunctionalTestError",
    "GaussianParameter", "GlitchModel", "HierarchyEntry", "LinearNetwork",
    "Netlist", "NetlistError", "NetlistHierarchy", "PullDirection",
    "ReproError", "SequenceStimulus", "SimulationError", "SimulationResult",
    "SolverError", "TERMINALS", "TaskExecutionError", "Trace",
    "TransientSimulator",
    "VariationSpec", "WaveformSet",
    "capacitor", "db", "diode", "from_db", "lsb_size", "nmos", "npn",
    "parallel", "pmos", "pnp", "reset_variation", "resistor",
    "solve_resistor_string", "switch", "vary_netlist",
]
