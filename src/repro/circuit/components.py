"""Primitive analog devices used to describe the structure of A/M-S blocks.

The SymBIST defect model (paper Section V) enumerates defects *per device
terminal pair*: shorts and opens across transistor and diode terminals and
+/-50 % deviations of passive components.  To make that enumeration possible
every analog block in :mod:`repro.adc` describes its structure as a
:class:`~repro.circuit.netlist.Netlist` of the primitive devices defined here.

A device is a small record: a name, a :class:`DeviceKind`, an ordered tuple of
terminals (each bound to a net name), electrical parameters, and a mutable
:class:`DefectState` describing the currently injected defect, if any.  Blocks
read the *effective* electrical values (:meth:`Device.effective_value`,
:meth:`Device.is_shorted`, ...) when they evaluate themselves, so an injected
defect automatically propagates into the block behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from .errors import ComponentError
from .units import OPEN_RESISTANCE, SHORT_RESISTANCE


class DeviceKind(str, Enum):
    """Primitive device families recognised by the defect model."""

    RESISTOR = "resistor"
    CAPACITOR = "capacitor"
    SWITCH = "switch"
    NMOS = "nmos"
    PMOS = "pmos"
    DIODE = "diode"
    NPN = "npn"
    PNP = "pnp"

    @property
    def is_passive(self) -> bool:
        """True for devices subject to the +/-50 % value-deviation defects."""
        return self in (DeviceKind.RESISTOR, DeviceKind.CAPACITOR)

    @property
    def is_transistor(self) -> bool:
        return self in (DeviceKind.NMOS, DeviceKind.PMOS, DeviceKind.NPN,
                        DeviceKind.PNP, DeviceKind.SWITCH)


#: Ordered terminal names per device kind.  The order matters because nets are
#: bound positionally when a device is added to a netlist.
TERMINALS: Dict[DeviceKind, Tuple[str, ...]] = {
    DeviceKind.RESISTOR: ("p", "n"),
    DeviceKind.CAPACITOR: ("p", "n"),
    DeviceKind.SWITCH: ("p", "n", "ctrl"),
    DeviceKind.NMOS: ("d", "g", "s", "b"),
    DeviceKind.PMOS: ("d", "g", "s", "b"),
    DeviceKind.DIODE: ("a", "c"),
    DeviceKind.NPN: ("c", "b", "e"),
    DeviceKind.PNP: ("c", "b", "e"),
}


class PullDirection(str, Enum):
    """Weak pull assigned to an open defect (paper Section V)."""

    UP = "up"
    DOWN = "down"


@dataclass
class DefectState:
    """Mutable record of the defect currently injected into a device.

    A defect-free device has the default state (no short, no open,
    ``value_scale == 1.0``).  Exactly one physical defect is injected at a time
    during a campaign (single-defect assumption, standard in defect-oriented
    test), but the representation does not enforce that -- the injection engine
    does.
    """

    shorted_terminals: Optional[Tuple[str, str]] = None
    short_resistance: float = SHORT_RESISTANCE
    open_terminal: Optional[str] = None
    open_pull: Optional[PullDirection] = None
    open_resistance: float = OPEN_RESISTANCE
    value_scale: float = 1.0

    @property
    def is_clean(self) -> bool:
        """True when no defect is currently injected."""
        return (self.shorted_terminals is None
                and self.open_terminal is None
                and self.value_scale == 1.0)

    def clear(self) -> None:
        """Reset the device to its defect-free state."""
        self.shorted_terminals = None
        self.short_resistance = SHORT_RESISTANCE
        self.open_terminal = None
        self.open_pull = None
        self.open_resistance = OPEN_RESISTANCE
        self.value_scale = 1.0


@dataclass
class Device:
    """A primitive device instance bound to nets inside a block netlist.

    Parameters
    ----------
    name:
        Instance name, unique within its :class:`~repro.circuit.netlist.Netlist`.
    kind:
        The :class:`DeviceKind` of the device.
    nets:
        Mapping from terminal name (see :data:`TERMINALS`) to net name.
    params:
        Electrical parameters.  Passives use ``value`` (ohms or farads);
        transistors typically carry ``w``/``l`` (metres) used as a layout-area
        proxy by the likelihood model; switches carry ``ron``.
    """

    name: str
    kind: DeviceKind
    nets: Dict[str, str]
    params: Dict[str, float] = field(default_factory=dict)
    defect: DefectState = field(default_factory=DefectState)

    def __post_init__(self) -> None:
        expected = TERMINALS[self.kind]
        missing = [t for t in expected if t not in self.nets]
        extra = [t for t in self.nets if t not in expected]
        if missing or extra:
            raise ComponentError(
                f"device {self.name!r} ({self.kind.value}): terminal mismatch, "
                f"missing={missing}, unexpected={extra}")
        if self.kind.is_passive and self.value <= 0.0:
            raise ComponentError(
                f"device {self.name!r}: passive value must be positive, "
                f"got {self.params.get('value')!r}")

    # ------------------------------------------------------------------ value
    @property
    def value(self) -> float:
        """Nominal value of a passive device (ohms / farads)."""
        return float(self.params.get("value", 0.0))

    def effective_value(self) -> float:
        """Passive value including the injected +/-X % deviation defect.

        Shorts and opens are *not* folded in here -- network builders query
        :meth:`is_shorted` / :meth:`is_open` separately because a short across
        a capacitor becomes a resistor, not a huge capacitance.
        """
        return self.value * self.defect.value_scale

    # --------------------------------------------------------------- topology
    def net_of(self, terminal: str) -> str:
        """Return the net bound to ``terminal``."""
        try:
            return self.nets[terminal]
        except KeyError as exc:
            raise ComponentError(
                f"device {self.name!r} has no terminal {terminal!r}") from exc

    @property
    def terminals(self) -> Tuple[str, ...]:
        return TERMINALS[self.kind]

    # ----------------------------------------------------------- defect state
    def is_shorted(self, term_a: str, term_b: str) -> bool:
        """True if the injected defect shorts terminals ``term_a``/``term_b``."""
        pair = self.defect.shorted_terminals
        if pair is None:
            return False
        return set(pair) == {term_a, term_b}

    def is_open(self, terminal: str) -> bool:
        """True if the injected defect opens the given terminal."""
        return self.defect.open_terminal == terminal

    @property
    def has_defect(self) -> bool:
        return not self.defect.is_clean

    def clear_defect(self) -> None:
        self.defect.clear()

    # --------------------------------------------------------------- metadata
    def area_proxy(self) -> float:
        """Relative layout-area proxy used by the defect-likelihood model.

        Transistors use ``w*l`` when available; passives use their value scaled
        into a comparable range; anything unknown defaults to ``1.0``.  The
        absolute scale is irrelevant -- only relative weights matter for
        likelihood-weighted coverage.
        """
        w = self.params.get("w")
        length = self.params.get("l")
        if w is not None and length is not None and w > 0 and length > 0:
            return float(w * length) / 1e-14  # normalise to ~unity for 65 nm
        if self.kind is DeviceKind.RESISTOR:
            return max(self.value / 1e4, 0.1)
        if self.kind is DeviceKind.CAPACITOR:
            return max(self.value / 1e-13, 0.1)
        if self.kind in (DeviceKind.DIODE, DeviceKind.NPN, DeviceKind.PNP):
            # Bipolars/diodes are physically large junction devices; scale by
            # their emitter-area multiplier.
            return 8.0 * float(self.params.get("area", 1.0))
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = " [DEFECT]" if self.has_defect else ""
        return f"Device({self.name}, {self.kind.value}, nets={self.nets}){tail}"


# --------------------------------------------------------------------------- #
# Convenience constructors
# --------------------------------------------------------------------------- #
def resistor(name: str, p: str, n: str, value: float) -> Device:
    """Create a resistor of ``value`` ohms between nets ``p`` and ``n``."""
    return Device(name, DeviceKind.RESISTOR, {"p": p, "n": n}, {"value": value})


def capacitor(name: str, p: str, n: str, value: float) -> Device:
    """Create a capacitor of ``value`` farads between nets ``p`` and ``n``."""
    return Device(name, DeviceKind.CAPACITOR, {"p": p, "n": n}, {"value": value})


def switch(name: str, p: str, n: str, ctrl: str, ron: float = 100.0,
           w: float = 2e-6, l: float = 65e-9) -> Device:
    """Create a MOS switch with on-resistance ``ron`` controlled by net ``ctrl``.

    ``w``/``l`` are the layout-area proxy of the pass device (switches sized
    for low on-resistance are physically large and therefore carry a higher
    defect likelihood).
    """
    if ron <= 0.0:
        raise ComponentError(f"switch {name!r}: ron must be positive, got {ron}")
    return Device(name, DeviceKind.SWITCH, {"p": p, "n": n, "ctrl": ctrl},
                  {"ron": ron, "w": w, "l": l})


def nmos(name: str, d: str, g: str, s: str, b: str = "vss",
         w: float = 1e-6, l: float = 65e-9) -> Device:
    """Create an NMOS transistor (behavioral; ``w``/``l`` are area proxies)."""
    return Device(name, DeviceKind.NMOS, {"d": d, "g": g, "s": s, "b": b},
                  {"w": w, "l": l})


def pmos(name: str, d: str, g: str, s: str, b: str = "vdd",
         w: float = 2e-6, l: float = 65e-9) -> Device:
    """Create a PMOS transistor (behavioral; ``w``/``l`` are area proxies)."""
    return Device(name, DeviceKind.PMOS, {"d": d, "g": g, "s": s, "b": b},
                  {"w": w, "l": l})


def diode(name: str, a: str, c: str, area: float = 1.0) -> Device:
    """Create a junction diode between anode ``a`` and cathode ``c``."""
    return Device(name, DeviceKind.DIODE, {"a": a, "c": c}, {"area": area})


def npn(name: str, c: str, b: str, e: str, area: float = 1.0) -> Device:
    """Create an NPN bipolar transistor (used in the bandgap core)."""
    return Device(name, DeviceKind.NPN, {"c": c, "b": b, "e": e}, {"area": area})


def pnp(name: str, c: str, b: str, e: str, area: float = 1.0) -> Device:
    """Create a PNP bipolar transistor (used in the bandgap core)."""
    return Device(name, DeviceKind.PNP, {"c": c, "b": b, "e": e}, {"area": area})
