"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single exception type at an application boundary while still being
able to discriminate between netlist construction problems, simulation
failures, defect-injection problems and BIST configuration issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class NetlistError(ReproError):
    """Raised for structural netlist problems (duplicate devices, bad nets)."""


class ComponentError(ReproError):
    """Raised for invalid primitive-device parameters or terminal access."""


class SolverError(ReproError):
    """Raised when a nodal-analysis problem is singular or ill-posed."""


class SimulationError(ReproError):
    """Raised when a transient/sampled-time simulation cannot proceed."""


class DefectError(ReproError):
    """Raised for invalid defect descriptions or injection targets."""


class CalibrationError(ReproError):
    """Raised when window calibration (delta = k*sigma) cannot be performed."""


class BistConfigurationError(ReproError):
    """Raised for inconsistent SymBIST controller / checker configuration."""


class CoverageError(ReproError):
    """Raised when coverage computation receives inconsistent campaign data."""


class DutSpecError(ReproError):
    """Raised for an invalid device-under-test specification (repro.dut)."""


class EngineError(ReproError):
    """Raised by the campaign-execution engine (tasks, backends, cache)."""


class TaskExecutionError(EngineError):
    """Raised when a campaign task fails inside a worker."""


class DigitalTestError(ReproError):
    """Raised by the digital (gate-level) test substrate."""


class FunctionalTestError(ReproError):
    """Raised by the functional ADC test baseline (histogram, sine-fit, ...)."""
