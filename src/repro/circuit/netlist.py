"""Hierarchical structural netlists.

A :class:`Netlist` is an ordered collection of primitive
:class:`~repro.circuit.components.Device` instances plus the set of nets they
connect.  Each analog block of the SAR ADC IP (:mod:`repro.adc`) owns one
netlist describing its structure; the block's behavioral evaluation reads the
*effective* device values from that netlist so that an injected defect
(a mutation of a device's :class:`~repro.circuit.components.DefectState`)
propagates into the electrical behaviour.

Netlists can be grouped hierarchically with :class:`NetlistHierarchy`, which is
what the defect-universe extractor walks to enumerate all devices of the IP
with fully qualified names such as ``subdac1/rladder_07``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .components import (Device, DeviceKind, capacitor, diode, nmos, npn, pmos,
                         pnp, resistor, switch)
from .errors import NetlistError


class Netlist:
    """An ordered, named collection of primitive devices.

    Parameters
    ----------
    name:
        Block name; becomes the hierarchy path prefix of its devices.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("netlist name must be a non-empty string")
        self.name = name
        self._devices: Dict[str, Device] = {}

    # ------------------------------------------------------------------ build
    def add(self, device: Device) -> Device:
        """Add a pre-built device; returns it for chaining."""
        if device.name in self._devices:
            raise NetlistError(
                f"netlist {self.name!r}: duplicate device name {device.name!r}")
        self._devices[device.name] = device
        return device

    def add_resistor(self, name: str, p: str, n: str, value: float) -> Device:
        return self.add(resistor(name, p, n, value))

    def add_capacitor(self, name: str, p: str, n: str, value: float) -> Device:
        return self.add(capacitor(name, p, n, value))

    def add_switch(self, name: str, p: str, n: str, ctrl: str,
                   ron: float = 100.0, w: float = 2e-6,
                   l: float = 65e-9) -> Device:
        return self.add(switch(name, p, n, ctrl, ron, w, l))

    def add_nmos(self, name: str, d: str, g: str, s: str, b: str = "vss",
                 w: float = 1e-6, l: float = 65e-9) -> Device:
        return self.add(nmos(name, d, g, s, b, w, l))

    def add_pmos(self, name: str, d: str, g: str, s: str, b: str = "vdd",
                 w: float = 2e-6, l: float = 65e-9) -> Device:
        return self.add(pmos(name, d, g, s, b, w, l))

    def add_diode(self, name: str, a: str, c: str, area: float = 1.0) -> Device:
        return self.add(diode(name, a, c, area))

    def add_npn(self, name: str, c: str, b: str, e: str,
                area: float = 1.0) -> Device:
        return self.add(npn(name, c, b, e, area))

    def add_pnp(self, name: str, c: str, b: str, e: str,
                area: float = 1.0) -> Device:
        return self.add(pnp(name, c, b, e, area))

    # ----------------------------------------------------------------- access
    def device(self, name: str) -> Device:
        """Return the device called ``name`` or raise :class:`NetlistError`."""
        try:
            return self._devices[name]
        except KeyError as exc:
            raise NetlistError(
                f"netlist {self.name!r} has no device {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    @property
    def devices(self) -> List[Device]:
        """Devices in insertion order."""
        return list(self._devices.values())

    def devices_of_kind(self, *kinds: DeviceKind) -> List[Device]:
        """Devices whose kind is one of ``kinds``, in insertion order."""
        wanted = set(kinds)
        return [d for d in self._devices.values() if d.kind in wanted]

    @property
    def nets(self) -> List[str]:
        """All net names referenced by the devices, sorted."""
        names = {net for dev in self._devices.values()
                 for net in dev.nets.values()}
        return sorted(names)

    # ----------------------------------------------------------- defect state
    def clear_defects(self) -> None:
        """Reset every device in this netlist to its defect-free state."""
        for dev in self._devices.values():
            dev.clear_defect()

    @property
    def has_defect(self) -> bool:
        """True if any device currently carries an injected defect."""
        return any(dev.has_defect for dev in self._devices.values())

    def defective_devices(self) -> List[Device]:
        return [d for d in self._devices.values() if d.has_defect]

    # -------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, int]:
        """Device count per kind, useful for area estimation and reports."""
        counts: Dict[str, int] = {}
        for dev in self._devices.values():
            counts[dev.kind.value] = counts.get(dev.kind.value, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.name!r}, {len(self)} devices)"


@dataclass
class HierarchyEntry:
    """One block inside a :class:`NetlistHierarchy`."""

    path: str
    netlist: Netlist
    group: str = "ams"  # "ams" or "digital": paper splits the IP this way


class NetlistHierarchy:
    """A named tree (flattened to paths) of block netlists.

    The SAR ADC IP exposes its analog blocks through a hierarchy so that the
    defect-universe extractor can enumerate every device with a fully
    qualified ``block_path/device_name`` identifier, and so that coverage can
    be reported per block exactly like Table I of the paper.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: Dict[str, HierarchyEntry] = {}

    def register(self, path: str, netlist: Netlist,
                 group: str = "ams") -> HierarchyEntry:
        """Register ``netlist`` under hierarchy path ``path``."""
        if not path:
            raise NetlistError("hierarchy path must be non-empty")
        if path in self._entries:
            raise NetlistError(
                f"hierarchy {self.name!r}: duplicate path {path!r}")
        if group not in ("ams", "digital"):
            raise NetlistError(f"unknown block group {group!r}")
        entry = HierarchyEntry(path=path, netlist=netlist, group=group)
        self._entries[path] = entry
        return entry

    # ----------------------------------------------------------------- access
    def entry(self, path: str) -> HierarchyEntry:
        try:
            return self._entries[path]
        except KeyError as exc:
            raise NetlistError(
                f"hierarchy {self.name!r} has no block {path!r}") from exc

    def netlist(self, path: str) -> Netlist:
        return self.entry(path).netlist

    @property
    def paths(self) -> List[str]:
        return list(self._entries.keys())

    def blocks(self, group: Optional[str] = None) -> List[HierarchyEntry]:
        """All registered blocks, optionally filtered by group."""
        entries = list(self._entries.values())
        if group is None:
            return entries
        return [e for e in entries if e.group == group]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HierarchyEntry]:
        return iter(self._entries.values())

    # ---------------------------------------------------------------- devices
    def iter_devices(self, group: Optional[str] = None
                     ) -> Iterator[Tuple[str, Device]]:
        """Yield ``(block_path, device)`` pairs across the hierarchy."""
        for entry in self.blocks(group):
            for dev in entry.netlist:
                yield entry.path, dev

    def device_count(self, group: Optional[str] = None) -> int:
        return sum(1 for _ in self.iter_devices(group))

    def find_device(self, block_path: str, device_name: str) -> Device:
        """Resolve a device by block path and local device name."""
        return self.netlist(block_path).device(device_name)

    def clear_defects(self) -> None:
        """Reset every device of every registered block."""
        for entry in self._entries.values():
            entry.netlist.clear_defects()

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-block device-kind counts."""
        return {path: e.netlist.summary() for path, e in self._entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetlistHierarchy({self.name!r}, {len(self)} blocks)"
