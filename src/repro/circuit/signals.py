"""Waveform traces recorded during sampled-time simulations.

SymBIST decisions are made on *sampled, settled* node voltages, but the paper
(Fig. 5) also shows the continuous invariance signal with switching glitches
that must not trigger a detection.  The classes here hold both: a
:class:`Trace` is a time/value series for one named signal, and a
:class:`WaveformSet` groups the traces recorded during one simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import SimulationError


@dataclass
class Trace:
    """A sampled waveform: monotonically non-decreasing times and values."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append one sample; times must not go backwards."""
        if self.times and time < self.times[-1]:
            raise SimulationError(
                f"trace {self.name!r}: non-monotonic time {time} after "
                f"{self.times[-1]}")
        self.times.append(float(time))
        self.values.append(float(value))

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        for t, v in zip(times, values):
            self.append(t, v)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    # ------------------------------------------------------------------ views
    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values,
                                                               dtype=float)

    def value_at(self, time: float) -> float:
        """Zero-order-hold lookup of the value at ``time``."""
        if not self.times:
            raise SimulationError(f"trace {self.name!r} is empty")
        times = np.asarray(self.times)
        idx = int(np.searchsorted(times, time, side="right")) - 1
        idx = max(idx, 0)
        return self.values[idx]

    # ------------------------------------------------------------- statistics
    def min(self) -> float:
        self._require_samples()
        return float(np.min(self.values))

    def max(self) -> float:
        self._require_samples()
        return float(np.max(self.values))

    def mean(self) -> float:
        self._require_samples()
        return float(np.mean(self.values))

    def std(self) -> float:
        self._require_samples()
        return float(np.std(self.values))

    def peak_deviation(self, reference: float) -> float:
        """Largest absolute deviation of the trace from ``reference``."""
        self._require_samples()
        return float(np.max(np.abs(np.asarray(self.values) - reference)))

    def excursions_outside(self, low: float, high: float) -> int:
        """Number of samples falling outside the closed window [low, high]."""
        self._require_samples()
        vals = np.asarray(self.values)
        return int(np.count_nonzero((vals < low) | (vals > high)))

    def _require_samples(self) -> None:
        if not self.values:
            raise SimulationError(f"trace {self.name!r} is empty")


class WaveformSet:
    """A named collection of :class:`Trace` objects from one simulation run."""

    def __init__(self, name: str = "waveforms") -> None:
        self.name = name
        self._traces: Dict[str, Trace] = {}

    def trace(self, name: str) -> Trace:
        """Return the trace called ``name``, creating it if necessary."""
        if name not in self._traces:
            self._traces[name] = Trace(name)
        return self._traces[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the trace called ``name``."""
        self.trace(name).append(time, value)

    def record_many(self, time: float, samples: Dict[str, float]) -> None:
        """Append one sample per entry of ``samples`` at the same time."""
        for name, value in samples.items():
            self.record(name, time, value)

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __getitem__(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError as exc:
            raise SimulationError(
                f"waveform set {self.name!r} has no trace {name!r}") from exc

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    @property
    def names(self) -> List[str]:
        return list(self._traces.keys())

    def to_csv(self, trace_names: Optional[Sequence[str]] = None) -> str:
        """Render selected traces to a CSV string (shared time axis required)."""
        names = list(trace_names) if trace_names is not None else self.names
        if not names:
            return ""
        reference = self[names[0]]
        lines = ["time," + ",".join(names)]
        for i, t in enumerate(reference.times):
            row = [f"{t:.9g}"]
            for name in names:
                trace = self[name]
                if len(trace) != len(reference):
                    raise SimulationError(
                        "to_csv requires traces sampled on a shared time axis")
                row.append(f"{trace.values[i]:.9g}")
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"
