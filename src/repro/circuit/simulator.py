"""Sampled-time (clock-cycle) transient simulation engine.

SymBIST drives the IP with a purely digital stimulus (a 5-bit counter) and
checks invariances with a *clocked* window comparator that only samples
settled node voltages.  The natural simulation abstraction is therefore a
cycle-based engine:

* a :class:`ClockedStimulus` produces the input bundle applied during each
  clock cycle,
* a system callback evaluates the circuit for that cycle and returns the
  observable node voltages,
* the engine records the settled value of each observable once per cycle and,
  optionally, a few intra-cycle samples produced by a :class:`GlitchModel`
  so that the recorded waveforms show the switching transients visible in
  Fig. 5 of the paper (which must *not* cause detections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Protocol, Sequence

import numpy as np

from .errors import SimulationError
from .signals import WaveformSet
from .units import F_CLK


class ClockedStimulus(Protocol):
    """Anything that yields one input bundle per clock cycle."""

    def __len__(self) -> int:  # pragma: no cover - protocol signature
        ...

    def inputs_for_cycle(self, cycle: int) -> Mapping[str, float]:
        """Return the stimulus inputs applied during ``cycle``."""
        ...  # pragma: no cover - protocol signature


@dataclass
class SequenceStimulus:
    """A :class:`ClockedStimulus` backed by an explicit list of input bundles."""

    bundles: Sequence[Mapping[str, float]]

    def __len__(self) -> int:
        return len(self.bundles)

    def inputs_for_cycle(self, cycle: int) -> Mapping[str, float]:
        if cycle < 0 or cycle >= len(self.bundles):
            raise SimulationError(
                f"stimulus has {len(self.bundles)} cycles, requested {cycle}")
        return self.bundles[cycle]


@dataclass
class GlitchModel:
    """Exponentially decaying switching transients added to recorded waveforms.

    The transient amplitude is proportional to how much the observed signal
    moved between consecutive cycles (big code changes switch more elements of
    the ladder / SC array and therefore glitch harder), plus a floor that makes
    even small transitions visible.  Glitches only affect the *recorded intra-
    cycle samples*; the settled sample used by the clocked checker is the clean
    value, matching the paper's statement that checks are performed once nodes
    have settled.
    """

    samples_per_cycle: int = 8
    amplitude_fraction: float = 0.6
    amplitude_floor: float = 0.01
    decay_cycles: float = 0.15
    rng: Optional[np.random.Generator] = None

    def intra_cycle_samples(self, previous_value: float, settled_value: float,
                            cycle_period: float) -> List[tuple]:
        """Return ``(time_offset, value)`` intra-cycle samples for one signal."""
        if self.samples_per_cycle < 2:
            return [(cycle_period, settled_value)]
        delta = settled_value - previous_value
        amplitude = abs(delta) * self.amplitude_fraction + self.amplitude_floor
        sign = 1.0 if delta >= 0 else -1.0
        rng = self.rng
        samples = []
        for k in range(1, self.samples_per_cycle + 1):
            frac = k / float(self.samples_per_cycle)
            t_off = frac * cycle_period
            decay = np.exp(-frac / self.decay_cycles)
            wobble = 1.0
            if rng is not None:
                wobble = 1.0 + 0.2 * float(rng.standard_normal())
            glitch = sign * amplitude * decay * wobble
            samples.append((t_off, settled_value + glitch))
        # Force the final sample of the cycle to the settled value.
        samples[-1] = (cycle_period, settled_value)
        return samples


@dataclass
class SimulationResult:
    """Output of :meth:`TransientSimulator.run`."""

    waveforms: WaveformSet
    settled: WaveformSet
    n_cycles: int
    clock_period: float

    @property
    def duration(self) -> float:
        """Total simulated time in seconds."""
        return self.n_cycles * self.clock_period


class TransientSimulator:
    """Cycle-based simulator that records settled and glitchy waveforms.

    Parameters
    ----------
    clock_frequency:
        The clock frequency in hertz; defaults to the 156 MHz used by the IP.
    glitch_model:
        Optional :class:`GlitchModel`; when omitted only settled samples are
        recorded (one per cycle).
    """

    def __init__(self, clock_frequency: float = F_CLK,
                 glitch_model: Optional[GlitchModel] = None) -> None:
        if clock_frequency <= 0.0:
            raise SimulationError(
                f"clock frequency must be positive, got {clock_frequency}")
        self.clock_frequency = clock_frequency
        self.clock_period = 1.0 / clock_frequency
        self.glitch_model = glitch_model

    def run(self, stimulus: ClockedStimulus,
            evaluate: Callable[[int, Mapping[str, float]], Mapping[str, float]],
            observables: Optional[Iterable[str]] = None) -> SimulationResult:
        """Run the stimulus through ``evaluate`` and record waveforms.

        Parameters
        ----------
        stimulus:
            Produces the input bundle for each cycle.
        evaluate:
            ``evaluate(cycle, inputs) -> {signal_name: settled_value}``.
            This is typically a bound method of the device under test.
        observables:
            Signals to record; defaults to everything ``evaluate`` returns.
        """
        n_cycles = len(stimulus)
        if n_cycles == 0:
            raise SimulationError("stimulus has zero cycles")
        waveforms = WaveformSet("transient")
        settled = WaveformSet("settled")
        wanted = set(observables) if observables is not None else None
        previous: Dict[str, float] = {}

        for cycle in range(n_cycles):
            t_start = cycle * self.clock_period
            outputs = evaluate(cycle, stimulus.inputs_for_cycle(cycle))
            if not outputs:
                raise SimulationError(
                    f"evaluate() returned no observables at cycle {cycle}")
            for name, value in outputs.items():
                if wanted is not None and name not in wanted:
                    continue
                settled.record(name, t_start + self.clock_period, value)
                if self.glitch_model is None:
                    waveforms.record(name, t_start + self.clock_period, value)
                    continue
                prev = previous.get(name, value)
                for t_off, sample in self.glitch_model.intra_cycle_samples(
                        prev, value, self.clock_period):
                    waveforms.record(name, t_start + t_off, sample)
            previous.update(outputs)

        return SimulationResult(waveforms=waveforms, settled=settled,
                                n_cycles=n_cycles,
                                clock_period=self.clock_period)
