"""Linear nodal-analysis solver for resistive networks.

The resistive parts of the SAR ADC IP -- the reference-buffer ladder that
produces ``VREF<0:32>``, the two 5-bit sub-DAC ladders, the Vcm divider and
the bandgap core -- are solved with classic nodal analysis so that an injected
defect (a 10 ohm short, an open with a weak pull, a +/-50 % resistor
deviation) perturbs the node voltages through real network equations rather
than through hand-written special cases.

The solver supports:

* conductances between two nodes (resistors, closed switches, shorts),
* fixed node voltages (ideal sources such as the supply or a buffered
  reference),
* independent current sources (used by the bandgap behavioral core),

and returns the voltage of every floating node.  It is intentionally linear
and DC-only; switched-capacitor behaviour is handled separately by charge
redistribution in :mod:`repro.adc.sc_array`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .errors import SolverError

#: Conductance used to model an ideal short when stamping a node pair.
_MAX_CONDUCTANCE = 1e12
#: Minimum conductance accepted (anything smaller is treated as no connection).
_MIN_CONDUCTANCE = 1e-15


class LinearNetwork:
    """A DC linear network solved by nodal analysis.

    Typical usage::

        net = LinearNetwork()
        net.set_voltage("vref_top", 1.2)
        net.set_voltage("gnd", 0.0)
        for i in range(32):
            net.add_resistor(f"tap{i}", f"tap{i + 1}", 1_000.0)
        voltages = net.solve()
    """

    def __init__(self) -> None:
        self._edges: List[Tuple[str, str, float]] = []
        self._fixed: Dict[str, float] = {}
        self._currents: Dict[str, float] = {}
        self._nodes: Dict[str, None] = {}

    # ------------------------------------------------------------------ build
    def _register(self, node: str) -> None:
        if not node:
            raise SolverError("node names must be non-empty strings")
        self._nodes.setdefault(node, None)

    def add_conductance(self, node_a: str, node_b: str, g: float) -> None:
        """Add a conductance ``g`` (siemens) between two nodes."""
        if g < 0.0:
            raise SolverError(f"conductance must be non-negative, got {g}")
        self._register(node_a)
        self._register(node_b)
        if node_a == node_b or g < _MIN_CONDUCTANCE:
            return
        self._edges.append((node_a, node_b, min(g, _MAX_CONDUCTANCE)))

    def add_resistor(self, node_a: str, node_b: str, resistance: float) -> None:
        """Add a resistor; a zero (or tiny) resistance is stamped as a short."""
        if resistance < 0.0:
            raise SolverError(f"resistance must be non-negative, got {resistance}")
        if resistance <= 1.0 / _MAX_CONDUCTANCE:
            self.add_conductance(node_a, node_b, _MAX_CONDUCTANCE)
        else:
            self.add_conductance(node_a, node_b, 1.0 / resistance)

    def set_voltage(self, node: str, voltage: float) -> None:
        """Pin ``node`` to ``voltage`` with an ideal source."""
        self._register(node)
        self._fixed[node] = float(voltage)

    def add_current(self, node: str, current: float) -> None:
        """Inject ``current`` amperes *into* ``node`` (source to ground)."""
        self._register(node)
        self._currents[node] = self._currents.get(node, 0.0) + float(current)

    # ------------------------------------------------------------------ solve
    @property
    def nodes(self) -> List[str]:
        return list(self._nodes.keys())

    def solve(self) -> Dict[str, float]:
        """Solve the network and return the voltage of every node.

        Raises
        ------
        SolverError
            If the system is singular, which happens when a floating node has
            no DC path to any fixed-voltage node.
        """
        if not self._fixed:
            raise SolverError("network has no fixed-voltage node; the DC "
                              "operating point is undefined")
        floating = [n for n in self._nodes if n not in self._fixed]
        if not floating:
            return dict(self._fixed)

        index = {name: i for i, name in enumerate(floating)}
        n = len(floating)
        g_matrix = np.zeros((n, n), dtype=float)
        rhs = np.zeros(n, dtype=float)

        for node, current in self._currents.items():
            if node in index:
                rhs[index[node]] += current

        for node_a, node_b, g in self._edges:
            a_free = node_a in index
            b_free = node_b in index
            if a_free:
                ia = index[node_a]
                g_matrix[ia, ia] += g
            if b_free:
                ib = index[node_b]
                g_matrix[ib, ib] += g
            if a_free and b_free:
                g_matrix[index[node_a], index[node_b]] -= g
                g_matrix[index[node_b], index[node_a]] -= g
            elif a_free and not b_free:
                rhs[index[node_a]] += g * self._fixed[node_b]
            elif b_free and not a_free:
                rhs[index[node_b]] += g * self._fixed[node_a]

        try:
            solution = np.linalg.solve(g_matrix, rhs)
        except np.linalg.LinAlgError as exc:
            dangling = [floating[i] for i in range(n)
                        if g_matrix[i, i] < _MIN_CONDUCTANCE]
            raise SolverError(
                "singular nodal matrix -- floating node(s) without a DC path "
                f"to a fixed node: {dangling or 'unknown'}") from exc

        voltages = dict(self._fixed)
        for name, i in index.items():
            voltages[name] = float(solution[i])
        return voltages


def solve_resistor_string(tap_names: List[str], resistances: List[float],
                          v_top: float, v_bottom: float,
                          extra_edges: Optional[List[Tuple[str, str, float]]] = None
                          ) -> Dict[str, float]:
    """Solve a series resistor string between two fixed voltages.

    Parameters
    ----------
    tap_names:
        Names of the ``len(resistances) + 1`` taps, ordered from the bottom
        (held at ``v_bottom``) to the top (held at ``v_top``).
    resistances:
        Resistance of each segment, ordered bottom to top.
    extra_edges:
        Optional additional ``(node_a, node_b, resistance)`` connections, used
        by the defect model to stamp shorts between arbitrary taps.

    Returns
    -------
    dict
        Voltage at every tap.
    """
    if len(tap_names) != len(resistances) + 1:
        raise SolverError(
            f"expected {len(resistances) + 1} tap names for "
            f"{len(resistances)} resistances, got {len(tap_names)}")
    net = LinearNetwork()
    net.set_voltage(tap_names[0], v_bottom)
    net.set_voltage(tap_names[-1], v_top)
    for i, r in enumerate(resistances):
        net.add_resistor(tap_names[i], tap_names[i + 1], r)
    for node_a, node_b, r in (extra_edges or []):
        net.add_resistor(node_a, node_b, r)
    return net.solve()
