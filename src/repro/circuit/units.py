"""Physical constants, supply/clock defaults and unit helpers.

The values collected here mirror the operating point of the 65 nm 10-bit SAR
ADC IP used as the SymBIST demonstrator (Pavlidis et al., DATE 2020):

* ``VDD``      -- nominal supply voltage of the A/M-S part.
* ``F_CLK``    -- BIST / conversion clock frequency (156 MHz in the paper).
* ``SHORT_RESISTANCE`` -- defect-model short resistance (10 ohm in the paper).
* ``OPEN_RESISTANCE``  -- series resistance used to emulate an open defect; an
  ideal open cannot be handled by a nodal solver, so a very large but finite
  resistance with a weak pull is used instead, exactly as the paper describes
  for SPICE-level defect simulation.

All electrical quantities in the package are expressed in SI units (volts,
amperes, ohms, farads, seconds, hertz).
"""

from __future__ import annotations

# Nominal supply of the A/M-S part of the IP.
VDD: float = 1.2

# Ground reference.
VSS: float = 0.0

# Nominal common-mode voltage used inside the DAC (Vcm generator output).
VCM_NOMINAL: float = VDD / 2.0

# Nominal common-mode voltage at the pre-amplifier outputs (Vcm2 in the paper).
VCM2_NOMINAL: float = 0.55

# BIST / conversion clock frequency used in the test-time computation.
F_CLK: float = 156e6

# Defect model constants (Section V of the paper).
SHORT_RESISTANCE: float = 10.0
OPEN_RESISTANCE: float = 1e9
WEAK_PULL_RESISTANCE: float = 1e7
PASSIVE_DEVIATION: float = 0.50  # +/-50 % variations of passive components.

# Number of ADC output bits.
ADC_BITS: int = 10

# Number of reference-ladder taps VREF<0:32>.
N_REF_LEVELS: int = 33

# Convenience multipliers.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15


def db(x: float) -> float:
    """Return ``20*log10(x)`` -- amplitude ratio expressed in decibels."""
    import math

    if x <= 0.0:
        raise ValueError(f"db() requires a positive ratio, got {x!r}")
    return 20.0 * math.log10(x)


def from_db(x_db: float) -> float:
    """Inverse of :func:`db`: convert a dB amplitude ratio back to linear."""
    return 10.0 ** (x_db / 20.0)


def lsb_size(full_scale: float, bits: int = ADC_BITS) -> float:
    """Size of one LSB for a converter with the given full scale and resolution."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    return full_scale / float(2 ** bits)


def parallel(*resistances: float) -> float:
    """Equivalent resistance of resistors connected in parallel.

    Zero-valued arguments short the combination and return ``0.0``.
    """
    if not resistances:
        raise ValueError("parallel() needs at least one resistance")
    inv = 0.0
    for r in resistances:
        if r < 0.0:
            raise ValueError(f"negative resistance {r!r}")
        if r == 0.0:
            return 0.0
        inv += 1.0 / r
    return 1.0 / inv
