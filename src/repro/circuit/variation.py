"""Process-variation modelling for Monte Carlo analysis.

SymBIST sets the window-comparator tolerance to ``delta = k * sigma`` where
``sigma`` is the standard deviation of the invariant signal under process,
voltage and temperature variations, estimated with a Monte Carlo analysis
(paper Section II).  This module provides the parameter-perturbation machinery
used by that analysis:

* :class:`VariationSpec` -- relative sigmas for each device family plus the
  mismatch sigma applied per-device on top of a correlated "global" shift.
* :func:`vary_netlist` -- apply one Monte Carlo draw to all passive devices of
  a structural netlist (ladders, dividers, SC array capacitors).
* :class:`GaussianParameter` -- a scalar behavioural parameter (amplifier
  offset, comparator offset, buffer gain error, ...) with a nominal value and
  a sigma, sampled per Monte Carlo iteration.

The behavioural blocks in :mod:`repro.adc` expose a ``sample_variation(rng)``
method built on these utilities; :mod:`repro.analysis.monte_carlo` drives
whole-IP Monte Carlo runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .components import DeviceKind
from .errors import SimulationError
from .netlist import Netlist


@dataclass
class VariationSpec:
    """Relative (fractional) process-variation sigmas per device family.

    ``global_sigma`` models the lot-to-lot / die-to-die shift that moves all
    devices of a kind together; ``mismatch_sigma`` models local device-to-
    device mismatch.  Both are fractions of the nominal value (e.g. ``0.02``
    means 2 %).
    """

    resistor_global_sigma: float = 0.015
    resistor_mismatch_sigma: float = 0.002
    capacitor_global_sigma: float = 0.015
    capacitor_mismatch_sigma: float = 0.001
    mos_strength_sigma: float = 0.03
    supply_sigma: float = 0.005
    temperature_sigma_celsius: float = 15.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if name.endswith("sigma") and value < 0.0:
                raise SimulationError(f"{name} must be non-negative, got {value}")


@dataclass
class GaussianParameter:
    """A behavioural scalar parameter with Gaussian process variation.

    Examples: pre-amplifier input-referred offset (nominal 0 V, sigma a few
    millivolts), reference-buffer gain error, bandgap output voltage.
    """

    name: str
    nominal: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise SimulationError(
                f"parameter {self.name!r}: sigma must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one Monte Carlo value of the parameter."""
        if self.sigma == 0.0:
            return self.nominal
        return float(self.nominal + self.sigma * rng.standard_normal())


def vary_netlist(netlist: Netlist, rng: np.random.Generator,
                 spec: Optional[VariationSpec] = None) -> Dict[str, float]:
    """Apply one process-variation draw to the passives of ``netlist``.

    The draw is expressed through each device's ``defect.value_scale`` *only
    when the device is defect-free*; an injected defect takes precedence so
    that defect simulation and Monte Carlo can coexist (defect simulation is
    normally run at the nominal process corner, like in the paper).

    Returns the mapping from device name to the applied scale factor, which is
    convenient for tests and for reproducibility checks.
    """
    spec = spec or VariationSpec()
    scales: Dict[str, float] = {}
    global_r = 1.0 + spec.resistor_global_sigma * float(rng.standard_normal())
    global_c = 1.0 + spec.capacitor_global_sigma * float(rng.standard_normal())
    for device in netlist:
        if not device.kind.is_passive:
            continue
        if device.has_defect:
            continue
        if device.kind is DeviceKind.RESISTOR:
            scale = global_r * (1.0 + spec.resistor_mismatch_sigma
                                * float(rng.standard_normal()))
        else:
            scale = global_c * (1.0 + spec.capacitor_mismatch_sigma
                                * float(rng.standard_normal()))
        scale = max(scale, 0.01)
        device.defect.value_scale = scale
        scales[device.name] = scale
    return scales


def reset_variation(netlist: Netlist) -> None:
    """Undo :func:`vary_netlist` on defect-free devices (scale back to 1.0)."""
    for device in netlist:
        if device.defect.shorted_terminals is None and \
                device.defect.open_terminal is None:
            device.defect.value_scale = 1.0
