"""SymBIST core -- the paper's primary contribution.

Invariance definitions (paper Eqs. (2)-(5)), the clocked window comparator,
the digital test stimulus (DC FD input + exhaustive 5-bit counter), the BIST
controller with sequential / parallel checking and stop-on-detection, the
Monte Carlo ``delta = k * sigma`` window calibration, and the test-time and
area-overhead models.
"""

from .area import (AreaReport, DEFAULT_DIGITAL_GATES, area_overhead,
                   ip_analog_area, symbist_infrastructure_area)
from .calibration import (DEFAULT_DELTA_FLOORS, GENERIC_DELTA_FLOOR,
                          WindowCalibration, calibrate_windows,
                          calibration_from_windows,
                          collect_defect_free_residuals)
from .controller import SymBistController, SymBistResult, run_symbist
from .invariance import (Invariance, SIGN_DEADBAND, SIGN_VIOLATION_MAGNITUDE,
                         build_invariances, evaluate_all, invariance_by_name)
from .report import (format_confidence, format_percent, format_table,
                     summarize_symbist_result, waveform_csv)
from .stimulus import SymBistStimulus
from .tam import (INSTRUCTION_BITS, RESPONSE_BITS, SymBistTam, TamInstruction,
                  TamSession)
from .test_time import CheckingMode, TestTimeModel
from .window_comparator import (WindowCheckResult, WindowComparator,
                                build_checkers)

__all__ = [
    "AreaReport", "CheckingMode", "DEFAULT_DELTA_FLOORS",
    "DEFAULT_DIGITAL_GATES", "GENERIC_DELTA_FLOOR", "Invariance",
    "SIGN_DEADBAND", "SIGN_VIOLATION_MAGNITUDE", "SymBistController",
    "SymBistResult", "SymBistStimulus", "TestTimeModel", "WindowCalibration",
    "WindowCheckResult", "WindowComparator", "area_overhead",
    "build_checkers", "build_invariances", "calibrate_windows",
    "calibration_from_windows", "collect_defect_free_residuals",
    "evaluate_all", "format_confidence",
    "format_percent", "format_table", "invariance_by_name", "ip_analog_area",
    "run_symbist", "summarize_symbist_result", "SymBistTam", "TamInstruction",
    "TamSession", "INSTRUCTION_BITS", "RESPONSE_BITS", "symbist_infrastructure_area",
    "waveform_csv",
]
