"""Area-overhead model of the SymBIST infrastructure (paper Section IV-4).

The paper estimates the area overhead of the SymBIST infrastructure -- the
5-bit counter, the window comparator(s), and the non-intrusive switches and
buffers that tap the monitored nodes -- at less than 5 % of the IP.  This
module provides a transparent bookkeeping model that reproduces that estimate
and supports the checker-sharing ablation (one shared comparator versus one
comparator per invariance).

The unit of area is the *gate equivalent* (GE, the area of a minimum 2-input
NAND).  Analog devices are converted through their layout-area proxy
(``Device.area_proxy``); digital content is counted in gates.  The absolute
scale cancels in the overhead ratio, which is the quantity of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..adc.sar_adc import SarAdc
from ..circuit.errors import BistConfigurationError
from .test_time import CheckingMode

#: Gate-equivalent cost of the analog area proxy unit (a near-minimum device).
_GE_PER_AREA_PROXY = 1.4
#: Estimated gate count of the purely digital part of the IP (SAR logic,
#: SAR control, phase generator); used when the caller does not supply the
#: exact number from the gate-level models in :mod:`repro.digital`.
DEFAULT_DIGITAL_GATES = 420

#: SymBIST infrastructure bill of materials, in gate equivalents.
COUNTER_GE_PER_BIT = 9.0           # scan-friendly counter flop + increment logic
WINDOW_COMPARATOR_GE = 55.0        # two clocked comparators + reference resistors
CHECKER_MUX_GE_PER_INVARIANCE = 6.0  # analog switches + routing per tapped node
TAP_BUFFER_GE_PER_INVARIANCE = 8.0   # isolation buffer per monitored node pair
CONTROL_FSM_GE = 40.0              # BIST FSM, pass/fail sticky bit, TAM glue


@dataclass
class AreaReport:
    """Breakdown of IP area versus SymBIST infrastructure area."""

    ip_analog_ge: float
    ip_digital_ge: float
    bist_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def ip_total_ge(self) -> float:
        return self.ip_analog_ge + self.ip_digital_ge

    @property
    def bist_total_ge(self) -> float:
        return sum(self.bist_breakdown.values())

    @property
    def overhead_fraction(self) -> float:
        """BIST area divided by IP area."""
        if self.ip_total_ge <= 0:
            raise BistConfigurationError("IP area must be positive")
        return self.bist_total_ge / self.ip_total_ge

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


def ip_analog_area(adc: SarAdc) -> float:
    """Gate-equivalent area of the A/M-S part of the IP."""
    total = 0.0
    for block in adc.analog_blocks:
        for device in block.netlist:
            total += device.area_proxy() * _GE_PER_AREA_PROXY
    return total


def symbist_infrastructure_area(n_invariances: int = 6,
                                counter_bits: int = 5,
                                mode: CheckingMode = CheckingMode.SEQUENTIAL
                                ) -> Dict[str, float]:
    """Gate-equivalent breakdown of the SymBIST infrastructure.

    In sequential mode a single window comparator is shared across the
    invariances (at the cost of test time); in parallel mode each invariance
    has its own comparator.
    """
    if n_invariances <= 0 or counter_bits <= 0:
        raise BistConfigurationError(
            "n_invariances and counter_bits must be positive")
    n_comparators = 1 if mode is CheckingMode.SEQUENTIAL else n_invariances
    return {
        "counter": COUNTER_GE_PER_BIT * counter_bits,
        "window_comparators": WINDOW_COMPARATOR_GE * n_comparators,
        "checker_multiplexing": CHECKER_MUX_GE_PER_INVARIANCE * n_invariances,
        "tap_buffers": TAP_BUFFER_GE_PER_INVARIANCE * n_invariances,
        "control_fsm": CONTROL_FSM_GE,
    }


def area_overhead(adc: Optional[SarAdc] = None,
                  n_invariances: int = 6,
                  counter_bits: int = 5,
                  mode: CheckingMode = CheckingMode.SEQUENTIAL,
                  digital_gates: float = DEFAULT_DIGITAL_GATES) -> AreaReport:
    """Full area report of SymBIST on the SAR ADC IP."""
    adc = adc or SarAdc()
    return AreaReport(
        ip_analog_ge=ip_analog_area(adc),
        ip_digital_ge=float(digital_gates),
        bist_breakdown=symbist_infrastructure_area(n_invariances, counter_bits,
                                                   mode))
