"""Window calibration: ``delta = k * sigma`` from a Monte Carlo analysis.

Paper context (Section II): "The parameter delta can be set to k * sigma,
where sigma is the standard deviation of the invariant signal computed by a
Monte Carlo analysis and k is set accordingly so as to avoid yield loss", and
Section VI: "For our experiment we use a comparison window with delta = 5 *
sigma, i.e. k = 5, so as to guarantee that yield loss is negligible."

:func:`calibrate_windows` runs the Monte Carlo analysis on defect-free
instances of the IP: each iteration draws a process-variation sample, sweeps
the full test stimulus and records the residual of every invariance at every
counter code.  The per-invariance sigma is the standard deviation of the
pooled residuals; the window half-width is ``delta = k * sigma + |mean|``
(the systematic part of the residual is absorbed into the window so that it
does not eat into the k-sigma guard band), with a per-invariance floor for the
inherently discrete invariances (the sign-consistency and complementary-rail
checks have zero variance when defect-free).

The Monte Carlo sweep executes through the campaign engine
(:mod:`repro.engine`): each process-variation instance is one task with its
own per-sample seed, so a calibration sharded across a
:class:`~repro.engine.MultiprocessBackend` pool is bit-identical to the
serial run, and repeated calibrations against a
:class:`~repro.engine.ResultCache` replay the stored residuals instead of
re-simulating.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence)

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import CalibrationError
from ..circuit.units import VDD
from ..circuit.variation import VariationSpec
from ..engine import (CampaignEngine, ExecutionBackend, ResultCache,
                      ResultCodec, Task, TaskGraph, factory_token)
from ..engine.telemetry import TelemetryBus
from .invariance import Invariance, build_invariances
from .stimulus import SymBistStimulus
from .window_comparator import WindowComparator

#: Default floors for the window half-width, per invariance.  The discrete
#: invariances (rail sums, sign consistency) have zero defect-free variance,
#: so their windows are set by noise-margin considerations instead.
DEFAULT_DELTA_FLOORS: Dict[str, float] = {
    "sign": 0.5,
    "latch_sum": 0.1 * VDD,
}
#: Generic floor applied to every other invariance.
GENERIC_DELTA_FLOOR = 1e-3


@dataclass
class WindowCalibration:
    """Result of the Monte Carlo window calibration."""

    k: float
    n_samples: int
    sigmas: Dict[str, float]
    means: Dict[str, float]
    deltas: Dict[str, float]
    residual_pools: Dict[str, List[float]] = field(default_factory=dict)

    def delta(self, name: str) -> float:
        try:
            return self.deltas[name]
        except KeyError as exc:
            raise CalibrationError(
                f"no calibrated window for invariance {name!r}") from exc

    def build_checkers(self, hysteresis: float = 0.0) -> List[WindowComparator]:
        """One window comparator per calibrated invariance."""
        return [WindowComparator(name=name, delta=delta, hysteresis=hysteresis)
                for name, delta in self.deltas.items()]

    def scaled(self, k: float) -> "WindowCalibration":
        """Same Monte Carlo data, windows rebuilt for a different ``k``.

        Used by the yield-loss-versus-k study without re-running Monte Carlo.
        """
        deltas = {}
        for name, sigma in self.sigmas.items():
            floor = DEFAULT_DELTA_FLOORS.get(name, GENERIC_DELTA_FLOOR)
            deltas[name] = max(k * sigma + abs(self.means[name]), floor)
        return WindowCalibration(k=k, n_samples=self.n_samples,
                                 sigmas=dict(self.sigmas),
                                 means=dict(self.means), deltas=deltas,
                                 residual_pools=self.residual_pools)


def _residual_worker(context: Mapping[str, Any], task: Task,
                     rng: np.random.Generator) -> Dict[str, List[float]]:
    """Engine worker: per-cycle residuals of one defect-free MC instance."""
    stimulus: SymBistStimulus = context["stimulus"]
    invariances: Sequence[Invariance] = context["invariances"]
    adc = context["adc_factory"]()
    adc.sample_variation(rng, context["variation_spec"])
    op = adc.operating_point(input_diff=stimulus.input_diff,
                             input_cm=stimulus.input_cm)
    adc.sarcell.comparator.rs_latch.reset_state()
    rows: Dict[str, List[float]] = {inv.name: [] for inv in invariances}
    for cycle in range(stimulus.n_cycles):
        code = stimulus.code_for_cycle(cycle)
        signals = adc.evaluate_test_cycle(code, op)
        for inv in invariances:
            rows[inv.name].append(inv.evaluate(signals))
    return rows


#: Cache codec of the per-sample residual tasks.  The result -- one
#: per-cycle float list per invariance -- is natively JSON, but the lists
#: dominate the artifact, so ``sidecar=True`` externalizes them to ``.npy``
#: files (bit-identical on read; see :mod:`repro.engine.cache`).  Shared by
#: :func:`collect_defect_free_residuals` and the study graphs' calibrate
#: stage so both write (and replay) the same artifacts.
RESIDUAL_CODEC = ResultCodec(encode=lambda rows: rows,
                             decode=lambda rows: rows, sidecar=True)


def calibration_task_spec(factory_name: str,
                          stimulus: SymBistStimulus,
                          variation_spec: Optional[VariationSpec],
                          invariance_names: Sequence[str]) -> Dict[str, Any]:
    """Cache-key spec of one defect-free Monte Carlo residual task.

    Shared by :func:`collect_defect_free_residuals` and the
    ``calibrate -> campaign`` pipeline so both produce identical cache keys:
    a calibration cached by one flow is replayed by the other.
    """
    return {"driver": "symbist-calibration",
            "factory": factory_name,
            "stimulus": asdict(stimulus),
            "variation": asdict(variation_spec)
            if variation_spec is not None else None,
            "invariances": list(invariance_names)}


def collect_defect_free_residuals(
        adc_factory: Callable[[], SarAdc] = SarAdc,
        invariances: Optional[Sequence[Invariance]] = None,
        stimulus: Optional[SymBistStimulus] = None,
        n_monte_carlo: int = 100,
        rng: Optional[np.random.Generator] = None,
        variation_spec: Optional[VariationSpec] = None,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[TelemetryBus] = None) -> Dict[str, List[float]]:
    """Monte Carlo residual pools of every invariance on defect-free circuits.

    Each Monte Carlo instance is one engine task with its own seed: when
    ``rng`` is given, the per-sample seeds are drawn from it up front in one
    vectorised draw (same ``rng`` seed, same pools -- on any backend); when
    it is omitted the engine spawns ``SeedSequence(0)`` children.  Pools are
    assembled in sample order, ``n_cycles`` consecutive residuals per
    instance, which is the layout :func:`repro.analysis.empirical_yield_loss`
    relies on.

    Caching (via ``cache``) is only applied for the standard invariance set;
    custom ``invariances`` carry arbitrary callables that a content hash
    cannot describe, so those runs always simulate.

    Parameters
    ----------
    backend:
        Campaign-engine execution backend (see :mod:`repro.engine`); the
        default serial backend reproduces the historical loop exactly, and
        ``MultiprocessBackend(max_workers=N)`` or
        ``SharedMemoryBackend(max_workers=N)`` shard the Monte Carlo
        instances across processes with bit-identical pools.
    cache:
        Optional :class:`~repro.engine.ResultCache`; per-instance residual
        rows are stored keyed by factory, stimulus, variation spec and
        per-sample seed, so repeated calibrations replay them.
    """
    if n_monte_carlo <= 0:
        raise CalibrationError("n_monte_carlo must be positive")
    custom_invariances = invariances is not None
    invariances = list(invariances) if custom_invariances \
        else build_invariances()
    stimulus = stimulus or SymBistStimulus()

    if rng is None:
        seeds: List[Any] = list(
            np.random.SeedSequence(0).spawn(n_monte_carlo))
    else:
        seeds = [int(s) for s in
                 rng.integers(0, 2 ** 63 - 1, size=n_monte_carlo)]

    # A stable factory token is required for cache keys; callables without a
    # qualified name or an explicit ``token`` (e.g. ad-hoc instances with
    # __call__) have only an address-bearing repr, so their runs are never
    # cached.
    factory_name = factory_token(adc_factory)
    tasks = TaskGraph()
    for index in range(n_monte_carlo):
        spec: Optional[Dict[str, Any]] = None
        if not custom_invariances and factory_name is not None:
            spec = calibration_task_spec(
                factory_name, stimulus, variation_spec,
                [inv.name for inv in invariances])
        tasks.add(Task(task_id=f"calib/{index}", payload=index,
                       seed=seeds[index], spec=spec))

    engine = CampaignEngine(backend=backend, cache=cache,
                            telemetry=telemetry)
    context = {"adc_factory": adc_factory, "invariances": invariances,
               "stimulus": stimulus, "variation_spec": variation_spec}
    run = engine.run(tasks, _residual_worker, context=context,
                     codec=RESIDUAL_CODEC)

    pools: Dict[str, List[float]] = {inv.name: [] for inv in invariances}
    for rows in run.results:
        for name, values in rows.items():
            pools[name].extend(values)
    return pools


def windows_from_pools(pools: Mapping[str, Sequence[float]], k: float,
                       delta_floors: Optional[Mapping[str, float]] = None
                       ) -> "tuple[Dict[str, float], Dict[str, float], Dict[str, float]]":
    """Derive ``(sigmas, means, deltas)`` from residual pools.

    The reduction step of :func:`calibrate_windows`, shared with the
    ``calibrate -> campaign`` pipeline (:mod:`repro.engine.pipeline`) so both
    paths produce bit-identical windows from the same pools: per invariance,
    ``sigma``/``mean`` over the pooled residuals and
    ``delta = max(k * sigma + |mean|, floor)``.
    """
    if k <= 0:
        raise CalibrationError(f"k must be positive, got {k}")
    floors = dict(DEFAULT_DELTA_FLOORS)
    if delta_floors:
        floors.update(delta_floors)

    sigmas: Dict[str, float] = {}
    means: Dict[str, float] = {}
    deltas: Dict[str, float] = {}
    for name, residuals in pools.items():
        values = np.asarray(residuals, dtype=float)
        sigma = float(np.std(values))
        mean = float(np.mean(values))
        floor = floors.get(name, GENERIC_DELTA_FLOOR)
        sigmas[name] = sigma
        means[name] = mean
        deltas[name] = max(k * sigma + abs(mean), floor)
    return sigmas, means, deltas


def calibration_from_windows(payload: Mapping[str, Any],
                             order: Sequence[str]) -> WindowCalibration:
    """Rebuild a :class:`WindowCalibration` from a windows-task payload.

    The pipeline windows reductions (:mod:`repro.engine.pipeline`) return
    ``{"k", "n_samples", "sigmas", "means", "deltas"}`` dictionaries that may
    have round-tripped through the JSON result cache; this re-orders the
    per-invariance entries to the canonical ``order`` so checker order never
    depends on JSON key ordering of a cache-replayed artifact.
    """
    names = [name for name in order if name in payload["deltas"]]
    return WindowCalibration(
        k=payload["k"], n_samples=payload["n_samples"],
        sigmas={name: payload["sigmas"][name] for name in names},
        means={name: payload["means"][name] for name in names},
        deltas={name: payload["deltas"][name] for name in names})


def calibrate_windows(adc_factory: Callable[[], SarAdc] = SarAdc,
                      invariances: Optional[Sequence[Invariance]] = None,
                      stimulus: Optional[SymBistStimulus] = None,
                      k: float = 5.0,
                      n_monte_carlo: int = 100,
                      rng: Optional[np.random.Generator] = None,
                      variation_spec: Optional[VariationSpec] = None,
                      delta_floors: Optional[Mapping[str, float]] = None,
                      keep_pools: bool = False,
                      backend: Optional[ExecutionBackend] = None,
                      cache: Optional[ResultCache] = None,
                      telemetry: Optional[TelemetryBus] = None
                      ) -> WindowCalibration:
    """Run the Monte Carlo analysis and derive the comparison windows.

    Parameters
    ----------
    k:
        The guard-band multiplier (5 in the paper's experiment).
    n_monte_carlo:
        Number of defect-free Monte Carlo samples.
    delta_floors:
        Optional per-invariance overrides of the window floors.
    keep_pools:
        When True the raw residual pools are kept on the returned object
        (useful for the yield-loss study); they are dropped otherwise to keep
        the calibration object light.
    backend / cache:
        Campaign-engine execution backend and result cache (see
        :mod:`repro.engine`); the default is serial, uncached execution.
    """
    if k <= 0:
        raise CalibrationError(f"k must be positive, got {k}")
    pools = collect_defect_free_residuals(
        adc_factory, invariances, stimulus, n_monte_carlo, rng, variation_spec,
        backend=backend, cache=cache, telemetry=telemetry)
    sigmas, means, deltas = windows_from_pools(pools, k, delta_floors)
    return WindowCalibration(k=k, n_samples=n_monte_carlo, sigmas=sigmas,
                             means=means, deltas=deltas,
                             residual_pools=pools if keep_pools else {})
