"""SymBIST controller -- orchestrates the on-chip self-test.

The controller mirrors the SymBIST infrastructure of the paper (Section IV-4):
a 5-bit counter generating the test stimulus, one window comparator per
invariance (parallel checking) or a single shared comparator switched across
the invariances (sequential checking), and a 1-bit pass/fail decision that can
be exposed through a 2-pin digital test access mechanism.

The electrical state of the IP does not depend on which checker is currently
connected, so the controller evaluates the 2^5 counter codes once and applies
the checkers to the recorded settled residuals; the sequential/parallel choice
only changes the *schedule* (and therefore the test time and the
stop-on-detection accounting), exactly as it would on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..adc.sar_adc import OperatingPoint, SarAdc
from ..circuit.errors import BistConfigurationError
from ..circuit.signals import WaveformSet
from ..circuit.simulator import GlitchModel, TransientSimulator
from ..circuit.units import F_CLK
from .invariance import Invariance, build_invariances
from .stimulus import SymBistStimulus
from .test_time import CheckingMode, TestTimeModel
from .window_comparator import WindowCheckResult, WindowComparator


@dataclass
class SymBistResult:
    """Outcome of one SymBIST run.

    Attributes
    ----------
    passed:
        Overall 1-bit decision: True when every invariance stayed inside its
        comparison window for every settled sample.
    check_results:
        Per-invariance :class:`WindowCheckResult`.
    settled_residuals:
        Per-invariance list of settled residual samples (one per counter code).
    waveforms:
        Residual waveforms including the modelled switching glitches, suitable
        for reproducing Fig. 5 of the paper.
    mode:
        Checking mode (sequential or parallel).
    cycles_scheduled:
        Total clock cycles of the complete test schedule.
    cycles_run:
        Clock cycles actually spent (smaller than ``cycles_scheduled`` when
        stop-on-detection terminates the test early).
    test_time:
        Time actually spent, in seconds.
    first_detection:
        ``(invariance_name, schedule_cycle)`` of the earliest detection in the
        schedule, or ``None`` when the test passes.
    """

    passed: bool
    check_results: Dict[str, WindowCheckResult]
    settled_residuals: Dict[str, List[float]]
    waveforms: WaveformSet
    mode: CheckingMode
    cycles_scheduled: int
    cycles_run: int
    test_time: float
    first_detection: Optional[Tuple[str, int]]

    @property
    def detected(self) -> bool:
        """True when the run flags a defect (the inverse of :attr:`passed`)."""
        return not self.passed

    @property
    def failing_invariances(self) -> List[str]:
        return [name for name, res in self.check_results.items()
                if not res.passed]

    def worst_residuals(self) -> Dict[str, float]:
        return {name: res.worst_residual
                for name, res in self.check_results.items()}


def resolve_detection(mode: CheckingMode, n_cycles: int,
                      names: Sequence[str],
                      check_results: Mapping[str, WindowCheckResult],
                      stop_on_detection: bool
                      ) -> Tuple[bool, Optional[Tuple[str, int]], int, int]:
    """Walk the checking schedule and resolve the pass/fail accounting.

    Returns ``(passed, first_detection, cycles_scheduled, cycles_run)`` for
    the given checking mode, exactly as the on-chip controller would compute
    them: sequential mode walks one invariance at a time (name-major order),
    parallel mode checks every invariance within each counter cycle
    (cycle-major order).  This is shared between the full
    :class:`SymBistController` run and the batched defect evaluator, which
    must agree bit-for-bit on the schedule accounting.
    """
    if mode is CheckingMode.SEQUENTIAL:
        schedule = [(name, cycle) for name in names
                    for cycle in range(n_cycles)]
    else:
        schedule = [(name, cycle) for cycle in range(n_cycles)
                    for name in names]

    first_detection: Optional[Tuple[str, int]] = None
    first_index: Optional[int] = None
    for index, (name, cycle) in enumerate(schedule):
        if cycle in check_results[name].violations:
            first_detection = (name, cycle)
            first_index = index
            break

    if mode is CheckingMode.SEQUENTIAL:
        cycles_scheduled = len(schedule)
        cycles_run = cycles_scheduled
        if stop_on_detection and first_index is not None:
            cycles_run = first_index + 1
    else:
        cycles_scheduled = n_cycles
        cycles_run = cycles_scheduled
        if stop_on_detection and first_detection is not None:
            cycles_run = first_detection[1] + 1

    passed = all(res.passed for res in check_results.values())
    return passed, first_detection, cycles_scheduled, cycles_run


class SymBistController:
    """Runs the SymBIST test on a :class:`~repro.adc.sar_adc.SarAdc` instance."""

    def __init__(self, adc: SarAdc,
                 checkers: Sequence[WindowComparator],
                 invariances: Optional[Sequence[Invariance]] = None,
                 stimulus: Optional[SymBistStimulus] = None,
                 mode: CheckingMode = CheckingMode.SEQUENTIAL,
                 clock_frequency: float = F_CLK,
                 stop_on_detection: bool = False,
                 glitch_model: Optional[GlitchModel] = None) -> None:
        self.adc = adc
        self.invariances = list(invariances) if invariances is not None \
            else build_invariances()
        self.stimulus = stimulus or SymBistStimulus()
        self.mode = mode
        self.clock_frequency = clock_frequency
        self.stop_on_detection = stop_on_detection
        self.glitch_model = glitch_model

        checker_map = {c.name: c for c in checkers}
        missing = [inv.name for inv in self.invariances
                   if inv.name not in checker_map]
        if missing:
            raise BistConfigurationError(
                f"no window comparator configured for invariances {missing}")
        self.checkers: Dict[str, WindowComparator] = {
            inv.name: checker_map[inv.name] for inv in self.invariances}

        self.time_model = TestTimeModel(
            n_invariances=len(self.invariances),
            counter_bits=self.stimulus.counter_bits,
            clock_frequency=clock_frequency)

    # -------------------------------------------------------------- execution
    def _evaluate_residuals(self) -> Tuple[Dict[str, List[float]], WaveformSet]:
        """Sweep the counter once and record every invariance residual."""
        op = self.adc.operating_point(input_diff=self.stimulus.input_diff,
                                      input_cm=self.stimulus.input_cm)
        self.adc.sarcell.comparator.rs_latch.reset_state()

        def evaluate(cycle: int, inputs: Mapping[str, float]) -> Dict[str, float]:
            signals = self.adc.evaluate_test_cycle(int(inputs["code"]), op)
            return {inv.name: inv.evaluate(signals) for inv in self.invariances}

        simulator = TransientSimulator(clock_frequency=self.clock_frequency,
                                       glitch_model=self.glitch_model)
        sim = simulator.run(self.stimulus.as_sequence_stimulus(), evaluate)
        settled = {inv.name: list(sim.settled[inv.name].values)
                   for inv in self.invariances}
        return settled, sim.waveforms

    def _schedule(self) -> List[Tuple[str, int]]:
        """The (invariance, counter-cycle) pairs in execution order."""
        names = [inv.name for inv in self.invariances]
        n_cycles = self.stimulus.n_cycles
        if self.mode is CheckingMode.SEQUENTIAL:
            return [(name, cycle) for name in names for cycle in range(n_cycles)]
        # Parallel: all invariances are checked during the same cycle; order
        # within a cycle is irrelevant for timing.
        return [(name, cycle) for cycle in range(n_cycles) for name in names]

    def run(self) -> SymBistResult:
        """Execute the SymBIST test and return the full result."""
        settled, waveforms = self._evaluate_residuals()
        check_results = {
            name: self.checkers[name].check_samples(residuals)
            for name, residuals in settled.items()}

        # Walk the schedule to find the first detection and the cycle count.
        passed, first_detection, cycles_scheduled, cycles_run = \
            resolve_detection(self.mode, self.stimulus.n_cycles,
                              [inv.name for inv in self.invariances],
                              check_results, self.stop_on_detection)
        return SymBistResult(
            passed=passed,
            check_results=check_results,
            settled_residuals=settled,
            waveforms=waveforms,
            mode=self.mode,
            cycles_scheduled=cycles_scheduled,
            cycles_run=cycles_run,
            test_time=cycles_run / self.clock_frequency,
            first_detection=first_detection)


def run_symbist(adc: SarAdc, deltas: Mapping[str, float],
                stimulus: Optional[SymBistStimulus] = None,
                mode: CheckingMode = CheckingMode.SEQUENTIAL,
                stop_on_detection: bool = False,
                glitch_model: Optional[GlitchModel] = None) -> SymBistResult:
    """Convenience wrapper: build checkers from a delta table and run the test."""
    checkers = [WindowComparator(name=name, delta=float(delta))
                for name, delta in deltas.items()]
    controller = SymBistController(adc, checkers, stimulus=stimulus, mode=mode,
                                   stop_on_detection=stop_on_detection,
                                   glitch_model=glitch_model)
    return controller.run()
