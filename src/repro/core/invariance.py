"""SymBIST invariances for the SAR ADC IP (paper Eqs. (2)-(5)).

An :class:`Invariance` is a named function of the observed node voltages whose
value (the *residual*) is zero -- up to process variations -- in defect-free
operation.  The six invariances built for the SAR ADC IP are:

=============  ===========================================  ==================
name           definition                                    paper equation
=============  ===========================================  ==================
``msb_sum``    ``M+ + M- - VREF[32]``                        Eq. (2), first
``lsb_sum``    ``L+ + L- - VREF[32]``                        Eq. (2), second
``dac_sum``    ``DAC+ + DAC- - 2*Vcm_nominal``               Eq. (3)
``preamp_cm``  ``LIN+ + LIN- - 2*Vcm2_nominal``              Eq. (4)
``sign``       ``sgn(Q+ - Q-) - sgn(LIN+ - LIN-)``           Eq. (5), first
``latch_sum``  ``Q+ + Q- - VDD``                             Eq. (5), second
=============  ===========================================  ==================

Design note on the references: the two sub-DAC invariances compare against the
*measured* ``VREF[32]`` (the checker taps the top of the reference ladder), so
they are ratiometric; the ``dac_sum`` and ``preamp_cm`` invariances compare
against fixed design constants (the supply-derived ``2*Vcm`` and the nominal
pre-amplifier common mode), which is what makes the Vcm generator directly
observable through Eq. (3) -- the paper states "The Vcm Generator is checked
directly with the invariance in Eq. (3)".

The ``sign`` invariance uses a small dead band: when the pre-amplifier
differential output is smaller than ``sign_deadband`` the comparison is
metastable by design and no consistency requirement is imposed (this mirrors
the clocked checker only sampling valid decisions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..circuit.errors import BistConfigurationError
from ..circuit.units import VCM2_NOMINAL, VCM_NOMINAL, VDD

#: Dead band (in volts of pre-amplifier differential output) inside which the
#: sign-consistency invariance is not evaluated.
SIGN_DEADBAND = 0.02

#: Residual magnitude reported by the sign invariance when the latched
#: decision contradicts the pre-amplifier polarity.
SIGN_VIOLATION_MAGNITUDE = 2.0


@dataclass(frozen=True)
class Invariance:
    """One SymBIST invariance.

    Attributes
    ----------
    name:
        Short identifier used in reports and calibration tables.
    description:
        Human-readable statement of the invariant property.
    residual:
        ``residual(signals) -> float``; zero in defect-free operation.
    covered_blocks:
        Hierarchy paths of the blocks this invariance primarily observes
        (used for reporting; coverage itself is always measured, not assumed).
    paper_equation:
        The equation of the paper this invariance reproduces.
    """

    name: str
    description: str
    residual: Callable[[Mapping[str, float]], float]
    covered_blocks: Tuple[str, ...] = ()
    paper_equation: str = ""

    def evaluate(self, signals: Mapping[str, float]) -> float:
        """Residual value of the invariance for one set of node voltages."""
        return float(self.residual(signals))


def _require(signals: Mapping[str, float], *names: str) -> List[float]:
    try:
        return [float(signals[n]) for n in names]
    except KeyError as exc:
        raise BistConfigurationError(
            f"invariance evaluation is missing signal {exc.args[0]!r}") from exc


def _msb_sum(signals: Mapping[str, float]) -> float:
    m_p, m_m, vref32 = _require(signals, "M+", "M-", "VREF32")
    return m_p + m_m - vref32


def _lsb_sum(signals: Mapping[str, float]) -> float:
    l_p, l_m, vref32 = _require(signals, "L+", "L-", "VREF32")
    return l_p + l_m - vref32


def _dac_sum(signals: Mapping[str, float]) -> float:
    dac_p, dac_m = _require(signals, "DAC+", "DAC-")
    return dac_p + dac_m - 2.0 * VCM_NOMINAL


def _preamp_cm(signals: Mapping[str, float]) -> float:
    lin_p, lin_m = _require(signals, "LIN+", "LIN-")
    return lin_p + lin_m - 2.0 * VCM2_NOMINAL


def _sign_consistency(signals: Mapping[str, float]) -> float:
    lin_p, lin_m, q_p, q_m = _require(signals, "LIN+", "LIN-", "Q+", "Q-")
    lin_diff = lin_p - lin_m
    if abs(lin_diff) < SIGN_DEADBAND:
        return 0.0
    expected = math.copysign(1.0, lin_diff)
    observed = math.copysign(1.0, q_p - q_m) if q_p != q_m else 0.0
    if observed == expected:
        return 0.0
    return SIGN_VIOLATION_MAGNITUDE if expected > 0 else -SIGN_VIOLATION_MAGNITUDE


def _latch_sum(signals: Mapping[str, float]) -> float:
    q_p, q_m = _require(signals, "Q+", "Q-")
    return q_p + q_m - VDD


def build_invariances() -> List[Invariance]:
    """The six SymBIST invariances of the SAR ADC IP, in paper order."""
    return [
        Invariance(
            name="msb_sum",
            description="SUBDAC1 complementary outputs: M+ + M- = VREF[32]",
            residual=_msb_sum,
            covered_blocks=("subdac1", "reference_buffer"),
            paper_equation="Eq. (2a)"),
        Invariance(
            name="lsb_sum",
            description="SUBDAC2 complementary outputs: L+ + L- = VREF[32]",
            residual=_lsb_sum,
            covered_blocks=("subdac2", "reference_buffer"),
            paper_equation="Eq. (2b)"),
        Invariance(
            name="dac_sum",
            description="DAC differential outputs: DAC+ + DAC- = 2*Vcm",
            residual=_dac_sum,
            covered_blocks=("sc_array", "vcm_generator", "subdac1", "subdac2",
                            "bandgap"),
            paper_equation="Eq. (3)"),
        Invariance(
            name="preamp_cm",
            description="Pre-amplifier common mode: LIN+ + LIN- = 2*Vcm2",
            residual=_preamp_cm,
            covered_blocks=("preamplifier", "offset_compensation", "bandgap"),
            paper_equation="Eq. (4)"),
        Invariance(
            name="sign",
            description="Latched decision agrees with the pre-amplifier "
                        "polarity: sgn(Q+ - Q-) = sgn(LIN+ - LIN-)",
            residual=_sign_consistency,
            covered_blocks=("comparator_latch", "rs_latch", "preamplifier"),
            paper_equation="Eq. (5a)"),
        Invariance(
            name="latch_sum",
            description="Latch complementary outputs: Q+ + Q- = VDD",
            residual=_latch_sum,
            covered_blocks=("rs_latch", "comparator_latch"),
            paper_equation="Eq. (5b)"),
    ]


def invariance_by_name(name: str,
                       invariances: Sequence[Invariance] = ()) -> Invariance:
    """Look up an invariance by name (defaults to the standard six)."""
    pool = list(invariances) if invariances else build_invariances()
    for inv in pool:
        if inv.name == name:
            return inv
    raise BistConfigurationError(f"unknown invariance {name!r}")


def evaluate_all(invariances: Sequence[Invariance],
                 signals: Mapping[str, float]) -> Dict[str, float]:
    """Evaluate every invariance on one set of node voltages."""
    return {inv.name: inv.evaluate(signals) for inv in invariances}
