"""Plain-text reporting helpers shared by the benchmarks and examples.

The paper's results are a table (Table I) and a waveform figure (Fig. 5); the
benchmark harness regenerates them as aligned plain-text tables and CSV
series.  The helpers here keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .controller import SymBistResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction as a percentage string (``0.8696 -> '86.96%'``)."""
    return f"{100.0 * value:.{decimals}f}%"


def format_confidence(value: float, half_width: Optional[float],
                      decimals: int = 2) -> str:
    """Format ``value +/- half_width`` as percentages, like Table I."""
    if half_width is None:
        return format_percent(value, decimals)
    return (f"{format_percent(value, decimals)}"
            f" +/- {100.0 * half_width:.{decimals}f}%")


def summarize_symbist_result(result: SymBistResult) -> str:
    """One-paragraph human-readable summary of a SymBIST run."""
    lines = [
        f"SymBIST {'PASS' if result.passed else 'FAIL'} "
        f"({result.mode.value} checking, "
        f"{result.cycles_run}/{result.cycles_scheduled} cycles, "
        f"{result.test_time * 1e6:.3f} us)",
    ]
    rows = []
    for name, check in result.check_results.items():
        rows.append([name, f"{check.delta:.4g}",
                     f"{check.worst_residual:.4g}",
                     "pass" if check.passed else
                     f"FAIL @ cycle {check.first_violation_cycle}"])
    lines.append(format_table(
        ["invariance", "delta", "worst residual", "status"], rows))
    if result.first_detection is not None:
        name, cycle = result.first_detection
        lines.append(f"first detection: invariance {name!r} at counter cycle "
                     f"{cycle}")
    return "\n".join(lines)


def waveform_csv(result: SymBistResult,
                 invariance: str = "dac_sum") -> str:
    """CSV of one invariance residual waveform (glitches included)."""
    trace = result.waveforms[invariance]
    lines = ["time_s,residual_v"]
    for t, v in trace:
        lines.append(f"{t:.9g},{v:.9g}")
    return "\n".join(lines) + "\n"
