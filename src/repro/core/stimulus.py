"""SymBIST test stimulus (paper Section IV-2).

The stimulus has two parts:

* a *static* part: the fully-differential analog input ``Delta-IN`` is held at
  a constant DC value, which "can be set arbitrarily";
* a *dynamic* part: a 5-bit digital counter generates all ``2^5`` bit
  combinations at the inputs ``B<0:4>`` and ``B<5:9>`` of the two sub-DACs,
  so that every component of the DAC is activated, every reference level
  ``VREF[j]`` is used, and the comparator is exercised with many different
  inputs.

The :class:`SymBistStimulus` produces the per-cycle input bundles consumed by
the cycle-based simulator and the BIST controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping

from ..circuit.errors import BistConfigurationError
from ..circuit.simulator import SequenceStimulus
from ..circuit.units import VCM_NOMINAL
from ..adc.sar_adc import DEFAULT_TEST_INPUT_DIFF


@dataclass(frozen=True)
class SymBistStimulus:
    """The SymBIST test stimulus: DC FD input + exhaustive 5-bit counter.

    Parameters
    ----------
    input_diff:
        Constant differential input ``Delta-IN = IN+ - IN-`` in volts.
    input_cm:
        Input common-mode voltage (nominally the DAC common mode).
    counter_bits:
        Width of the BIST counter; the paper uses 5 bits so that each sub-DAC
        sees every possible code.
    repeats:
        Number of times the full counter sequence is replayed (1 in the paper).
    """

    input_diff: float = DEFAULT_TEST_INPUT_DIFF
    input_cm: float = VCM_NOMINAL
    counter_bits: int = 5
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.counter_bits <= 0:
            raise BistConfigurationError(
                f"counter_bits must be positive, got {self.counter_bits}")
        if self.repeats <= 0:
            raise BistConfigurationError(
                f"repeats must be positive, got {self.repeats}")

    # ------------------------------------------------------------------ sizes
    @property
    def n_codes(self) -> int:
        """Number of distinct counter codes (``2 ** counter_bits``)."""
        return 2 ** self.counter_bits

    @property
    def n_cycles(self) -> int:
        """Total number of clock cycles in the stimulus."""
        return self.n_codes * self.repeats

    # ---------------------------------------------------------------- bundles
    def code_for_cycle(self, cycle: int) -> int:
        """Counter code applied during clock cycle ``cycle``."""
        if cycle < 0 or cycle >= self.n_cycles:
            raise BistConfigurationError(
                f"cycle {cycle} outside the stimulus ({self.n_cycles} cycles)")
        return cycle % self.n_codes

    def inputs_for_cycle(self, cycle: int) -> Dict[str, float]:
        """Input bundle for one cycle (satisfies the ClockedStimulus protocol)."""
        return {
            "code": float(self.code_for_cycle(cycle)),
            "in_p": self.input_cm + 0.5 * self.input_diff,
            "in_m": self.input_cm - 0.5 * self.input_diff,
        }

    def __len__(self) -> int:
        return self.n_cycles

    def __iter__(self) -> Iterator[Dict[str, float]]:
        for cycle in range(self.n_cycles):
            yield self.inputs_for_cycle(cycle)

    def bundles(self) -> List[Mapping[str, float]]:
        """All per-cycle input bundles, in order."""
        return [self.inputs_for_cycle(c) for c in range(self.n_cycles)]

    def as_sequence_stimulus(self) -> SequenceStimulus:
        """Adapter for :class:`repro.circuit.simulator.TransientSimulator`."""
        return SequenceStimulus(self.bundles())
