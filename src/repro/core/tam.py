"""Two-pin digital test access mechanism (TAM) for SymBIST.

Paper context (Section IV-4): "since the test stimulus is digital and the
comparator's output is a 1-bit pass or fail decision, SymBIST can be
interfaced with a 2-pin digital test access mechanism."  This module models
that interface: a serial test-data-in / test-data-out pair through which
automatic test equipment (or a system processor, for in-field test) launches
the self-test and retrieves the result.

The protocol is deliberately simple (it has to fit next to a counter and a
window comparator):

* an 8-bit instruction is shifted in on TDI;
* the BIST controller executes it (run all invariances, run one invariance,
  read the sticky status, read the per-invariance fail map, read the cycle
  number of the first detection);
* the response register is shifted out on TDO, LSB first.

The model tracks the number of TCK cycles spent on shifting plus the test
execution cycles, so the complete 2-pin test session can be budgeted the same
way the paper budgets the raw SymBIST run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Sequence

from ..adc.sar_adc import SarAdc
from ..circuit.errors import BistConfigurationError
from ..circuit.units import F_CLK
from .controller import SymBistController, SymBistResult
from .invariance import build_invariances
from .stimulus import SymBistStimulus
from .test_time import CheckingMode
from .window_comparator import WindowComparator


class TamInstruction(IntEnum):
    """Instruction opcodes of the 2-pin interface."""

    IDLE = 0x00
    RUN_ALL = 0x01          # run the full SymBIST session (all invariances)
    READ_STATUS = 0x02      # 1 = pass, 0 = fail (sticky)
    READ_FAIL_MAP = 0x03    # one bit per invariance, 1 = that checker failed
    READ_FIRST_CYCLE = 0x04  # counter cycle of the first detection (0xFF = none)
    RUN_SINGLE_BASE = 0x10  # RUN_SINGLE_BASE + i runs only invariance i


#: Width of the serial instruction and response registers.
INSTRUCTION_BITS = 8
RESPONSE_BITS = 8


def _to_bits(value: int, width: int) -> List[int]:
    return [(value >> i) & 1 for i in range(width)]


def _from_bits(bits: Sequence[int]) -> int:
    return sum((bit & 1) << i for i, bit in enumerate(bits))


@dataclass
class TamSession:
    """Book-keeping of one ATE session over the 2-pin interface."""

    tck_cycles: int = 0
    executed: List[TamInstruction] = field(default_factory=list)
    responses: List[int] = field(default_factory=list)

    def record(self, instruction: TamInstruction, response: int,
               shift_cycles: int, execute_cycles: int) -> None:
        self.executed.append(instruction)
        self.responses.append(response)
        self.tck_cycles += shift_cycles + execute_cycles

    def session_time(self, tck_frequency: float = F_CLK) -> float:
        """Total session time at the given test-clock frequency."""
        if tck_frequency <= 0:
            raise BistConfigurationError("tck_frequency must be positive")
        return self.tck_cycles / tck_frequency


class SymBistTam:
    """Serial 2-pin wrapper around the SymBIST controller.

    Parameters
    ----------
    adc:
        The IP under test.
    deltas:
        Calibrated window half-widths per invariance.
    mode:
        Checker-sharing mode used when a full run is requested.
    """

    def __init__(self, adc: SarAdc, deltas: Dict[str, float],
                 stimulus: Optional[SymBistStimulus] = None,
                 mode: CheckingMode = CheckingMode.SEQUENTIAL) -> None:
        self.adc = adc
        self.deltas = dict(deltas)
        self.stimulus = stimulus or SymBistStimulus()
        self.mode = mode
        self.invariances = build_invariances()
        missing = [inv.name for inv in self.invariances
                   if inv.name not in self.deltas]
        if missing:
            raise BistConfigurationError(
                f"no calibrated window for invariances {missing}")
        self._last_result: Optional[SymBistResult] = None
        self.session = TamSession()

    # ----------------------------------------------------------------- runs
    def _run(self, invariance_names: Optional[Sequence[str]] = None
             ) -> SymBistResult:
        names = list(invariance_names) if invariance_names is not None else \
            [inv.name for inv in self.invariances]
        invariances = [inv for inv in self.invariances if inv.name in names]
        checkers = [WindowComparator(name=name, delta=self.deltas[name])
                    for name in names]
        controller = SymBistController(self.adc, checkers,
                                       invariances=invariances,
                                       stimulus=self.stimulus, mode=self.mode,
                                       stop_on_detection=False)
        result = controller.run()
        self._last_result = result
        return result

    # ------------------------------------------------------------- protocol
    def shift_instruction(self, opcode: int) -> List[int]:
        """Execute one instruction and return the response bits (LSB first).

        The TCK cost is ``INSTRUCTION_BITS`` shift-in cycles plus the test
        execution cycles (for RUN instructions) plus ``RESPONSE_BITS``
        shift-out cycles, which is what a minimal 2-pin interface would spend.
        """
        if not 0 <= opcode < 2 ** INSTRUCTION_BITS:
            raise BistConfigurationError(
                f"opcode must fit in {INSTRUCTION_BITS} bits, got {opcode}")
        execute_cycles = 0
        if opcode == TamInstruction.RUN_ALL:
            result = self._run()
            execute_cycles = result.cycles_run
            response = 1 if result.passed else 0
            instruction = TamInstruction.RUN_ALL
        elif opcode >= TamInstruction.RUN_SINGLE_BASE and \
                opcode < TamInstruction.RUN_SINGLE_BASE + len(self.invariances):
            index = opcode - TamInstruction.RUN_SINGLE_BASE
            name = self.invariances[index].name
            result = self._run([name])
            execute_cycles = result.cycles_run
            response = 1 if result.passed else 0
            instruction = TamInstruction.RUN_SINGLE_BASE
        elif opcode == TamInstruction.READ_STATUS:
            response = 1 if (self._last_result is not None
                             and self._last_result.passed) else 0
            instruction = TamInstruction.READ_STATUS
        elif opcode == TamInstruction.READ_FAIL_MAP:
            response = self._fail_map()
            instruction = TamInstruction.READ_FAIL_MAP
        elif opcode == TamInstruction.READ_FIRST_CYCLE:
            response = self._first_cycle()
            instruction = TamInstruction.READ_FIRST_CYCLE
        elif opcode == TamInstruction.IDLE:
            response = 0
            instruction = TamInstruction.IDLE
        else:
            raise BistConfigurationError(f"unknown TAM opcode 0x{opcode:02x}")

        self.session.record(instruction, response,
                            shift_cycles=INSTRUCTION_BITS + RESPONSE_BITS,
                            execute_cycles=execute_cycles)
        return _to_bits(response, RESPONSE_BITS)

    # -------------------------------------------------------------- responses
    def _fail_map(self) -> int:
        if self._last_result is None:
            return 0
        value = 0
        for index, inv in enumerate(self.invariances):
            check = self._last_result.check_results.get(inv.name)
            if check is not None and not check.passed:
                value |= 1 << index
        return value

    def _first_cycle(self) -> int:
        if self._last_result is None or self._last_result.first_detection is None:
            return 0xFF
        return min(self._last_result.first_detection[1], 0xFE)

    # ------------------------------------------------------------ convenience
    def run_and_report(self) -> Dict[str, object]:
        """One complete ATE session: run, read status, fail map, first cycle.

        Returns a small dictionary with the decoded responses and the total
        session time -- what a production test program would log.
        """
        self.shift_instruction(TamInstruction.RUN_ALL)
        status = _from_bits(self.shift_instruction(TamInstruction.READ_STATUS))
        fail_map = _from_bits(self.shift_instruction(TamInstruction.READ_FAIL_MAP))
        first_cycle = _from_bits(
            self.shift_instruction(TamInstruction.READ_FIRST_CYCLE))
        failing = [inv.name for index, inv in enumerate(self.invariances)
                   if fail_map & (1 << index)]
        return {
            "passed": bool(status),
            "fail_map": fail_map,
            "failing_invariances": failing,
            "first_detection_cycle": None if first_cycle == 0xFF else first_cycle,
            "tck_cycles": self.session.tck_cycles,
            "session_time": self.session.session_time(),
        }
