"""Test-time model (paper Section IV-5).

The paper computes the SymBIST test time for the sequential-checking scenario
as ``6 * 2^5 * (1 / f_clk) = 1.23 us`` at ``f_clk = 156 MHz``, and notes that
this is about 16x the time needed to convert one analog input sample (one
conversion takes the 12 clock cycles paced by the control pulses ``P<0:11>``).

This module provides that arithmetic for both checker-sharing strategies
(sequential: one shared window comparator re-run per invariance; parallel: one
comparator per invariance, single pass) plus the comparison against the
conversion time and against the functional-test baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..circuit.errors import BistConfigurationError
from ..circuit.units import F_CLK
from ..adc.phase_generator import CYCLES_PER_CONVERSION


class CheckingMode(str, Enum):
    """How the invariances are checked."""

    SEQUENTIAL = "sequential"  # one shared window comparator, one pass per invariance
    PARALLEL = "parallel"      # one window comparator per invariance, single pass


@dataclass(frozen=True)
class TestTimeModel:
    """SymBIST test-time arithmetic.

    Parameters
    ----------
    n_invariances:
        Number of invariances checked (6 for the SAR ADC IP).
    counter_bits:
        BIST counter width (5 for the SAR ADC IP).
    clock_frequency:
        Test clock frequency in hertz (156 MHz in the paper).
    cycles_per_conversion:
        Clock cycles needed for one normal conversion (12 for this IP).
    """

    # Not a pytest test class, despite the name.
    __test__ = False

    n_invariances: int = 6
    counter_bits: int = 5
    clock_frequency: float = F_CLK
    cycles_per_conversion: int = CYCLES_PER_CONVERSION

    def __post_init__(self) -> None:
        if self.n_invariances <= 0:
            raise BistConfigurationError("n_invariances must be positive")
        if self.counter_bits <= 0:
            raise BistConfigurationError("counter_bits must be positive")
        if self.clock_frequency <= 0:
            raise BistConfigurationError("clock_frequency must be positive")

    # ----------------------------------------------------------------- cycles
    @property
    def cycles_per_pass(self) -> int:
        """Clock cycles needed to sweep the counter once."""
        return 2 ** self.counter_bits

    def test_cycles(self, mode: CheckingMode = CheckingMode.SEQUENTIAL) -> int:
        """Total number of clock cycles of the SymBIST test."""
        if mode is CheckingMode.SEQUENTIAL:
            return self.n_invariances * self.cycles_per_pass
        return self.cycles_per_pass

    # ------------------------------------------------------------------ times
    def test_time(self, mode: CheckingMode = CheckingMode.SEQUENTIAL) -> float:
        """SymBIST test time in seconds."""
        return self.test_cycles(mode) / self.clock_frequency

    @property
    def conversion_time(self) -> float:
        """Time to convert one analog input sample, in seconds."""
        return self.cycles_per_conversion / self.clock_frequency

    def test_time_in_conversions(self,
                                 mode: CheckingMode = CheckingMode.SEQUENTIAL
                                 ) -> float:
        """Test time expressed as a multiple of one conversion time."""
        return self.test_time(mode) / self.conversion_time

    def functional_test_time(self, n_samples: int) -> float:
        """Time a conversion-based functional test needs for ``n_samples``."""
        if n_samples <= 0:
            raise BistConfigurationError("n_samples must be positive")
        return n_samples * self.conversion_time

    def speedup_vs_functional(self, n_samples: int,
                              mode: CheckingMode = CheckingMode.SEQUENTIAL
                              ) -> float:
        """How many times faster SymBIST is than an ``n_samples`` functional test."""
        return self.functional_test_time(n_samples) / self.test_time(mode)
