"""Window comparator -- the SymBIST checker circuit.

Paper context (Section II): "These invariances can be checked with a window
comparator circuit implementing a comparison window [-delta, +delta],
delta > 0, to account for process, voltage, and temperature variations.  If
the invariance is violated, i.e. the invariant signal slides outside the
window, then this points to defect detection."

The model is a *clocked* window comparator: it samples the invariant signal
once per clock cycle, after the nodes have settled, so intra-cycle switching
glitches (visible in Fig. 5 of the paper) never cause a detection.  Its own
non-idealities -- threshold offset and hysteresis -- are modelled so that the
BIST infrastructure itself can be the subject of what-if studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..circuit.errors import BistConfigurationError


@dataclass
class WindowCheckResult:
    """Outcome of checking one invariance over a full test run."""

    name: str
    delta: float
    residuals: List[float]
    violations: List[int]

    @property
    def passed(self) -> bool:
        """True when no settled sample left the comparison window."""
        return not self.violations

    @property
    def first_violation_cycle(self) -> Optional[int]:
        """Cycle index of the first detection, or ``None`` when passing."""
        return self.violations[0] if self.violations else None

    @property
    def worst_residual(self) -> float:
        """Largest absolute residual observed during the run."""
        if not self.residuals:
            return 0.0
        return max(abs(r) for r in self.residuals)

    @property
    def n_cycles(self) -> int:
        return len(self.residuals)


@dataclass
class WindowComparator:
    """A clocked window comparator with window ``[center - delta, center + delta]``.

    Parameters
    ----------
    name:
        Name of the invariance this checker monitors.
    delta:
        Half-width of the comparison window (``delta = k * sigma``).
    center:
        Window centre; zero for residual-style invariant signals.
    offset:
        Comparator threshold offset (a checker non-ideality).
    hysteresis:
        Extra margin a sample must exceed before a *new* violation is flagged
        once the signal has re-entered the window; models a real comparator's
        hysteresis and avoids chattering at the window edge.
    """

    name: str
    delta: float
    center: float = 0.0
    offset: float = 0.0
    hysteresis: float = 0.0

    def __post_init__(self) -> None:
        if self.delta <= 0.0:
            raise BistConfigurationError(
                f"checker {self.name!r}: delta must be positive, got {self.delta}")
        if self.hysteresis < 0.0:
            raise BistConfigurationError(
                f"checker {self.name!r}: hysteresis must be non-negative")

    # ------------------------------------------------------------------ checks
    def is_within_window(self, value: float) -> bool:
        """Single settled-sample check against the comparison window."""
        deviation = abs(value - self.center - self.offset)
        return deviation <= self.delta

    def check_samples(self, residuals: Iterable[float]) -> WindowCheckResult:
        """Check a sequence of settled samples (one per clock cycle)."""
        residual_list = [float(r) for r in residuals]
        violations: List[int] = []
        outside = False
        for cycle, value in enumerate(residual_list):
            deviation = abs(value - self.center - self.offset)
            re_arm_threshold = self.delta - self.hysteresis
            if deviation > self.delta:
                violations.append(cycle)
                outside = True
            elif outside and deviation <= max(re_arm_threshold, 0.0):
                outside = False
        return WindowCheckResult(name=self.name, delta=self.delta,
                                 residuals=residual_list,
                                 violations=violations)

    def check_array(self, residuals: Sequence[float]) -> WindowCheckResult:
        """Vectorized :meth:`check_samples` -- bit-identical violations.

        A sample is a violation iff its deviation exceeds ``delta``;
        hysteresis only gates the internal re-arm flag of the scalar loop and
        never suppresses an appended violation, so the vectorized comparison
        reproduces :meth:`check_samples` exactly (float64 numpy comparisons
        follow the same IEEE-754 semantics as the Python scalar ones).
        """
        values = np.asarray(residuals, dtype=float)
        deviation = np.abs(values - self.center - self.offset)
        violations = [int(i) for i in np.flatnonzero(deviation > self.delta)]
        return WindowCheckResult(name=self.name, delta=self.delta,
                                 residuals=[float(v) for v in values],
                                 violations=violations)

    # ------------------------------------------------------------------- bounds
    @property
    def lower_bound(self) -> float:
        return self.center + self.offset - self.delta

    @property
    def upper_bound(self) -> float:
        return self.center + self.offset + self.delta


def build_checkers(deltas: dict, offsets: Optional[dict] = None,
                   hysteresis: float = 0.0) -> List[WindowComparator]:
    """Create one window comparator per invariance from a delta table."""
    offsets = offsets or {}
    checkers = []
    for name, delta in deltas.items():
        checkers.append(WindowComparator(name=name, delta=float(delta),
                                         offset=float(offsets.get(name, 0.0)),
                                         hysteresis=hysteresis))
    return checkers
