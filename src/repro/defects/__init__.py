"""Defect modelling and defect-simulation campaigns (paper Section V).

This package re-implements the campaign mechanics the paper delegates to the
Tessent DefectSim tool: the standard short/open/passive-deviation defect
model, defect-universe extraction from the structural netlists, likelihood
assignment (defect-type priors x device-area proxies), Likelihood-Weighted
Random Sampling, defect injection, stop-on-detection campaign execution, and
likelihood-weighted coverage with 95 % confidence intervals.
"""

from .diagnosis import (BlockScore, DiagnosisReport, diagnose,
                        diagnosis_accuracy)
from .coverage import (CoverageEstimate, Z_95, combine_detected_likelihood,
                       exhaustive_coverage, lwrs_coverage, wilson_interval)
from .injection import DefectInjector
from .likelihood import DEFAULT_TYPE_PRIORS, LikelihoodModel
from .model import Defect, DefectKind, enumerate_device_defects
from .batching import (BatchedDefectEvaluator, GoldenTrace, LOCAL_STAGE,
                       STAGE_DOWNSTREAM, build_golden_trace)
from .sampling import (SamplingPlan, batch_seed_span, batch_spans,
                       block_seed_sequence, lwrs_sample,
                       per_block_selection, select_defects, variant_seed)
from .simulator import (BlockCoverageReport, CampaignResult, DefectCampaign,
                        DefectSimulationRecord, MODEL_SECONDS_PER_CYCLE,
                        RECORD_CODEC)
from .universe import DefectUniverse, build_defect_universe

__all__ = [
    "BatchedDefectEvaluator", "BlockCoverageReport", "CampaignResult",
    "CoverageEstimate",
    "DEFAULT_TYPE_PRIORS", "Defect", "DefectCampaign", "DefectInjector",
    "DefectKind", "DefectSimulationRecord", "DefectUniverse", "GoldenTrace",
    "LOCAL_STAGE", "LikelihoodModel", "MODEL_SECONDS_PER_CYCLE",
    "RECORD_CODEC", "STAGE_DOWNSTREAM",
    "SamplingPlan", "Z_95",
    "BlockScore", "DiagnosisReport", "diagnose", "diagnosis_accuracy",
    "batch_seed_span", "batch_spans",
    "block_seed_sequence", "build_defect_universe", "build_golden_trace",
    "combine_detected_likelihood", "enumerate_device_defects",
    "exhaustive_coverage", "lwrs_coverage", "lwrs_sample",
    "per_block_selection", "select_defects", "variant_seed",
    "wilson_interval",
]
