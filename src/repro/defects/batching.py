"""Batched defect evaluation against a cached defect-free golden trace.

The per-defect hot path of a campaign re-simulates the whole behavioral ADC
per defect: the transient engine sweeps every counter cycle, and each cycle
re-evaluates every block -- including the ``netlist.has_defect`` scans and the
Vcm generator's linear-network solve -- even though a single injected defect
only perturbs one block and its downstream cone.

This module replaces that full re-simulation with a *staged* evaluation
against a cached defect-free **golden trace** per stimulus:

* the golden trace records, per counter code, the settled outputs of every
  pipeline stage (operating point, Vcm, sub-DACs, SC array, pre-amplifier,
  comparator latch) plus the per-cycle RS-latch outputs and the assembled
  signal dictionaries / invariance residuals;
* for a defect that is provably **local** to one block
  (:data:`LOCAL_STAGE`), only that block's stage and its downstream closure
  (:data:`STAGE_DOWNSTREAM`) are re-evaluated -- with the *same* block
  ``evaluate`` methods and the same float arithmetic, so every reused or
  recomputed value is bit-identical to what a full simulation would produce;
* the RS latch (the only stateful element) is always replayed per cycle from
  its reset state, exactly like
  :meth:`~repro.core.controller.SymBistController.run` does;
* a defect whose block is *not* in the locality map is reported as non-local
  (:meth:`BatchedDefectEvaluator.is_local` returns False) and the caller
  falls back to the full simulation.

Bit-identity holds because every block model is a pure function of its inputs
and its own netlist/parameter state: stages upstream of and parallel to the
defective block see identical inputs and a clean netlist, so recomputing them
would reproduce the golden values exactly -- reusing the golden values is
therefore indistinguishable from a full re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..adc.sar_adc import OperatingPoint, SarAdc
from ..adc.sc_array import ScArrayInputs
from ..circuit.units import VDD
from ..core.controller import resolve_detection
from ..core.invariance import Invariance, build_invariances
from ..core.stimulus import SymBistStimulus
from ..core.test_time import CheckingMode
from ..core.window_comparator import WindowComparator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulator imports us)
    from .model import Defect

#: Pipeline stage that each analog block is local to.  A defect in one of
#: these blocks only perturbs that stage and its downstream closure; a block
#: absent from this map is *non-local* and must be fully re-simulated.
LOCAL_STAGE: Dict[str, str] = {
    "bandgap": "op",
    "reference_buffer": "op",
    "vcm_generator": "vcm",
    "subdac1": "sub1",
    "subdac2": "sub2",
    "sc_array": "sc",
    "preamplifier": "pre",
    "offset_compensation": "pre",
    "comparator_latch": "latch",
    "rs_latch": "rs",
}

#: Downstream closure of each stage: the stages whose inputs change when the
#: keyed stage's outputs change.  The RS latch is excluded -- it is stateful
#: and therefore always replayed per cycle from reset.
STAGE_DOWNSTREAM: Dict[str, frozenset] = {
    "op": frozenset({"vcm", "sub1", "sub2", "sc", "pre", "latch"}),
    "vcm": frozenset({"sc", "pre", "latch"}),
    "sub1": frozenset({"sc", "pre", "latch"}),
    "sub2": frozenset({"sc", "pre", "latch"}),
    "sc": frozenset({"pre", "latch"}),
    "pre": frozenset({"latch"}),
    "latch": frozenset(),
    "rs": frozenset(),
}


@dataclass
class GoldenTrace:
    """Defect-free settled trace of one (ADC state, stimulus) pair.

    Per-*code* lists hold one entry per distinct counter code; the per-*cycle*
    lists (RS latch, signals, residuals) hold one entry per clock cycle,
    which differs when the stimulus replays the counter (``repeats > 1``).
    """

    fingerprint: str
    op: OperatingPoint
    vcm: float
    sub1: List  # SubDacOutput per code
    sub2: List  # SubDacOutput per code
    sc: List    # ScArrayOutput per code
    pre: List   # PreampOutput per code
    ql: List    # LatchOutput per code
    q: List     # LatchOutput per cycle (RS latch replay)
    signals: List[Dict[str, float]]        # per cycle
    residuals: Dict[str, List[float]]      # per invariance, per cycle


class BatchedDefectEvaluator:
    """Evaluates defects of one campaign against a shared golden trace.

    The evaluator belongs to one :class:`~repro.defects.simulator.
    DefectCampaign` (it reads the ADC, stimulus, deltas and checking mode
    from it) and assumes the campaign's single-defect convention: at most one
    device is defective while :meth:`evaluate` runs.
    """

    def __init__(self, adc: SarAdc, stimulus: SymBistStimulus,
                 deltas: Dict[str, float], mode: CheckingMode,
                 stop_on_detection: bool, fingerprint: str,
                 invariances: Optional[Sequence[Invariance]] = None) -> None:
        self.adc = adc
        self.stimulus = stimulus
        self.mode = mode
        self.stop_on_detection = stop_on_detection
        self.invariances = list(invariances) if invariances is not None \
            else build_invariances()
        self.set_deltas(deltas)
        self.golden = build_golden_trace(adc, stimulus, fingerprint,
                                         self.invariances)

    def set_deltas(self, deltas: Dict[str, float]) -> None:
        """Rebuild the window checkers for a new delta table.

        The golden trace is defect-free signal data -- independent of the
        comparison windows -- so per-block delta overrides (block-study
        graphs refresh the campaign's deltas per task) only need the
        checkers rebuilt, never a re-simulation.
        """
        self.deltas = dict(deltas)
        self.checkers = {name: WindowComparator(name=name, delta=delta)
                         for name, delta in deltas.items()}

    # ------------------------------------------------------------------ policy
    @staticmethod
    def is_local(defect: "Defect") -> bool:
        """Whether the defect is provably local to one pipeline stage."""
        return defect.block_path in LOCAL_STAGE

    # -------------------------------------------------------------- evaluation
    def evaluate(self, defect: "Defect"
                 ) -> Optional[Tuple[bool, Optional[str], Optional[int], int]]:
        """Evaluate one *injected* defect against the golden trace.

        Returns ``(detected, detecting_invariance, detection_cycle,
        cycles_run)`` -- bit-identical to a full
        :class:`~repro.core.controller.SymBistController` run -- or ``None``
        when the defect is not local to one stage (the caller must then fall
        back to full simulation, *outside* the injection context).

        The caller is responsible for having the defect injected into the
        ADC's netlists while this method runs.
        """
        if not self.is_local(defect):
            return None
        settled = self._settled_residuals(LOCAL_STAGE[defect.block_path])

        check_results = {
            name: self.checkers[name].check_array(residuals)
            for name, residuals in settled.items()}
        passed, first_detection, _, cycles_run = resolve_detection(
            self.mode, self.stimulus.n_cycles,
            [inv.name for inv in self.invariances], check_results,
            self.stop_on_detection)
        detecting = first_detection[0] if first_detection else None
        detection_cycle = first_detection[1] if first_detection else None
        return (not passed, detecting, detection_cycle, cycles_run)

    def _settled_residuals(self, stage: str) -> Dict[str, List[float]]:
        """Per-invariance settled residuals for a defect local to ``stage``.

        Only the defective stage itself is unconditionally recomputed (its
        netlist carries the defect).  Every downstream stage has a *clean*
        netlist and is a pure function of its inputs, so it is recomputed
        only for the codes whose inputs actually differ from the golden
        trace -- where the inputs are bit-equal, recomputing would reproduce
        the golden value exactly, and the golden value is reused instead.
        The per-code/per-cycle ``changed`` flags below track exactly that
        input-difference condition.
        """
        golden = self.golden
        adc = self.adc
        cell = adc.sarcell
        stimulus = self.stimulus
        n_codes = stimulus.n_codes
        codes = range(n_codes)
        no_change = [False] * n_codes

        if stage == "op":
            op = adc.operating_point(input_diff=stimulus.input_diff,
                                     input_cm=stimulus.input_cm)
            op_changed = op != golden.op
        else:
            op = golden.op
            op_changed = False

        if stage == "vcm" or op_changed:
            vcm = cell.vcm_generator.evaluate(op.vbg)
        else:
            vcm = golden.vcm
        vcm_changed = vcm != golden.vcm

        if stage == "sub1" or op_changed:
            sub1 = cell.dac.subdac1.sweep(codes, op.vref)
            changed1 = [sub1[c] != golden.sub1[c] for c in codes]
        else:
            sub1, changed1 = golden.sub1, no_change
        if stage == "sub2" or op_changed:
            sub2 = cell.dac.subdac2.sweep(codes, op.vref)
            changed2 = [sub2[c] != golden.sub2[c] for c in codes]
        else:
            sub2, changed2 = golden.sub2, no_change

        if stage == "sc":
            dirty_sc = [True] * n_codes
        else:
            dirty_sc = [op_changed or vcm_changed or changed1[c] or changed2[c]
                        for c in codes]
        sc = list(golden.sc)
        changed_sc = list(no_change)
        for c in codes:
            if not dirty_sc[c]:
                continue
            sc[c] = cell.dac.sc_array.evaluate(ScArrayInputs(
                in_p=op.in_p, in_m=op.in_m,
                m_p=sub1[c].out_p, m_m=sub1[c].out_n,
                l_p=sub2[c].out_p, l_m=sub2[c].out_n,
                vcm=vcm, vref_mid=op.vref[16]))
            changed_sc[c] = sc[c] != golden.sc[c]

        if stage == "pre":
            pre_codes = list(codes)
        else:
            pre_codes = [c for c in codes if op_changed or changed_sc[c]]
        pre = list(golden.pre)
        changed_pre = list(no_change)
        if pre_codes:
            swept = cell.comparator.preamplifier.sweep(
                [(sc[c].dac_p, sc[c].dac_m) for c in pre_codes], op.ibias,
                cell.comparator.offset_compensation)
            for c, out in zip(pre_codes, swept):
                pre[c] = out
                changed_pre[c] = out != golden.pre[c]

        if stage == "latch":
            ql_codes = list(codes)
        else:
            ql_codes = [c for c in codes if changed_pre[c]]
        ql = list(golden.ql)
        ql_changed = list(no_change)
        if ql_codes:
            swept = cell.comparator.latch.sweep(
                [(pre[c].lin_p, pre[c].lin_m) for c in ql_codes])
            for c, out in zip(ql_codes, swept):
                ql[c] = out
                ql_changed[c] = out != golden.ql[c]

        # The RS latch is the only stateful element.  It must be replayed
        # from reset when its own netlist is defective or any of its inputs
        # changed; otherwise the replay would reproduce the golden per-cycle
        # outputs exactly and they are reused instead.
        n_cycles = stimulus.n_cycles
        if stage == "rs" or any(ql_changed):
            q = cell.comparator.rs_latch.replay(
                [ql[stimulus.code_for_cycle(cycle)]
                 for cycle in range(n_cycles)])
            q_changed = [q[cycle] != golden.q[cycle]
                         for cycle in range(n_cycles)]
        else:
            q = golden.q
            q_changed = [False] * n_cycles

        code_changed = [op_changed or vcm_changed or changed1[c] or changed2[c]
                        or changed_sc[c] or changed_pre[c] or ql_changed[c]
                        for c in codes]
        settled: Dict[str, List[float]] = {inv.name: []
                                           for inv in self.invariances}
        for cycle in range(n_cycles):
            code = stimulus.code_for_cycle(cycle)
            if not code_changed[code] and not q_changed[cycle]:
                # Every signal of this cycle is bit-equal to the golden
                # trace, so each invariance residual is too.
                for inv in self.invariances:
                    settled[inv.name].append(
                        golden.residuals[inv.name][cycle])
                continue
            signals = _assemble_signals(op, vcm, sub1[code], sub2[code],
                                        sc[code], pre[code], ql[code],
                                        q[cycle])
            for inv in self.invariances:
                settled[inv.name].append(inv.evaluate(signals))
        return settled


def _assemble_signals(op, vcm, sub1, sub2, sc, pre, ql, q) -> Dict[str, float]:
    """One cycle's signal dictionary, matching ``SarAdc.evaluate_test_cycle``."""
    return {
        "M+": sub1.out_p, "M-": sub1.out_n,
        "L+": sub2.out_p, "L-": sub2.out_n,
        "DAC+": sc.dac_p, "DAC-": sc.dac_m,
        "LIN+": pre.lin_p, "LIN-": pre.lin_m,
        "QL+": ql.q_p, "QL-": ql.q_m,
        "Q+": q.q_p, "Q-": q.q_m,
        "VCM": vcm,
        "VREF32": op.vref[32],
        "VREF16": op.vref[16],
        "VBG": op.vbg,
        "IBIAS": op.ibias,
        "IN+": op.in_p,
        "IN-": op.in_m,
        "VDD": VDD,
    }


def build_golden_trace(adc: SarAdc, stimulus: SymBistStimulus,
                       fingerprint: str,
                       invariances: Optional[Sequence[Invariance]] = None
                       ) -> GoldenTrace:
    """Simulate the defect-free ADC once, staged, and record everything.

    Must be called with no defect injected (the campaign clears defects
    before fingerprinting).  The trace is computed through the very same
    staged path the evaluator uses -- the stimulus codes sweep each block's
    ``evaluate``/``sweep`` method once per distinct code, and the RS latch is
    replayed per cycle from reset -- so golden values are bit-identical to a
    full :class:`~repro.core.controller.SymBistController` re-simulation.
    """
    invariances = list(invariances) if invariances is not None \
        else build_invariances()
    cell = adc.sarcell
    op = adc.operating_point(input_diff=stimulus.input_diff,
                             input_cm=stimulus.input_cm)
    vcm = cell.vcm_generator.evaluate(op.vbg)
    codes = range(stimulus.n_codes)
    sub1 = cell.dac.subdac1.sweep(codes, op.vref)
    sub2 = cell.dac.subdac2.sweep(codes, op.vref)
    sc = [cell.dac.sc_array.evaluate(ScArrayInputs(
        in_p=op.in_p, in_m=op.in_m,
        m_p=sub1[c].out_p, m_m=sub1[c].out_n,
        l_p=sub2[c].out_p, l_m=sub2[c].out_n,
        vcm=vcm, vref_mid=op.vref[16])) for c in codes]
    pre = cell.comparator.preamplifier.sweep(
        [(sc[c].dac_p, sc[c].dac_m) for c in codes], op.ibias,
        cell.comparator.offset_compensation)
    ql = cell.comparator.latch.sweep(
        [(pre[c].lin_p, pre[c].lin_m) for c in codes])

    q = cell.comparator.rs_latch.replay(
        [ql[stimulus.code_for_cycle(cycle)]
         for cycle in range(stimulus.n_cycles)])
    signals: List[Dict[str, float]] = []
    residuals: Dict[str, List[float]] = {inv.name: [] for inv in invariances}
    for cycle in range(stimulus.n_cycles):
        code = stimulus.code_for_cycle(cycle)
        cycle_signals = _assemble_signals(op, vcm, sub1[code], sub2[code],
                                          sc[code], pre[code], ql[code],
                                          q[cycle])
        signals.append(cycle_signals)
        for inv in invariances:
            residuals[inv.name].append(inv.evaluate(cycle_signals))
    return GoldenTrace(fingerprint=fingerprint, op=op, vcm=vcm,
                       sub1=sub1, sub2=sub2, sc=sc, pre=pre, ql=ql, q=q,
                       signals=signals, residuals=residuals)
