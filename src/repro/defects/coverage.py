"""Likelihood-weighted (L-W) defect coverage and its confidence interval.

Two estimators are provided, matching the two ways a campaign can walk the
defect universe:

* **exhaustive**: every defect is simulated; the L-W coverage is the exact
  ratio ``sum(likelihood of detected) / sum(likelihood of all)`` and no
  confidence interval is attached;
* **LWRS**: defects are sampled with probability proportional to likelihood;
  the unweighted detected fraction of the sample is an unbiased estimator of
  the L-W coverage and a 95 % binomial (Wilson) confidence interval is
  reported, which is how Table I of the paper quotes its ``+/-`` terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..circuit.errors import CoverageError
from .model import Defect

#: z-value of the 95 % two-sided normal quantile.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class CoverageEstimate:
    """A coverage value with optional confidence interval.

    Attributes
    ----------
    value:
        The L-W coverage estimate, as a fraction in [0, 1].
    ci_half_width:
        Half-width of the 95 % confidence interval, or ``None`` when the
        estimate is exact (exhaustive simulation).
    n_detected / n_simulated:
        Sample bookkeeping.
    universe_size / universe_likelihood:
        Size and total likelihood of the population the estimate refers to.
    """

    value: float
    ci_half_width: Optional[float]
    n_detected: int
    n_simulated: int
    universe_size: int
    universe_likelihood: float

    @property
    def percent(self) -> float:
        return 100.0 * self.value

    @property
    def ci_percent(self) -> Optional[float]:
        return None if self.ci_half_width is None else 100.0 * self.ci_half_width

    def formatted(self, decimals: int = 2) -> str:
        """Human-readable ``86.96% +/- 3.67%`` style string."""
        text = f"{self.percent:.{decimals}f}%"
        if self.ci_half_width is not None:
            text += f" +/- {self.ci_percent:.{decimals}f}%"
        return text


def wilson_interval(successes: int, trials: int,
                    z: float = Z_95) -> tuple:
    """Wilson score interval for a binomial proportion.

    Returns ``(center, half_width)``.  Preferred over the normal approximation
    because campaign samples can be small and proportions close to 0 or 1.
    """
    if trials <= 0:
        raise CoverageError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise CoverageError(
            f"successes ({successes}) must be within [0, {trials}]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / trials
                                   + z * z / (4.0 * trials * trials))
    return center, half


def exhaustive_coverage(detected: Sequence[bool],
                        defects: Sequence[Defect]) -> CoverageEstimate:
    """Exact L-W coverage when every defect of the population was simulated."""
    if len(detected) != len(defects):
        raise CoverageError("detected flags and defects must align")
    if not defects:
        raise CoverageError("cannot compute coverage of an empty population")
    total = sum(d.likelihood for d in defects)
    covered = sum(d.likelihood for d, hit in zip(defects, detected) if hit)
    return CoverageEstimate(
        value=covered / total,
        ci_half_width=None,
        n_detected=int(sum(bool(x) for x in detected)),
        n_simulated=len(defects),
        universe_size=len(defects),
        universe_likelihood=total)


def lwrs_coverage(detected: Sequence[bool], universe_size: int,
                  universe_likelihood: float) -> CoverageEstimate:
    """L-W coverage estimated from a likelihood-weighted random sample.

    Under LWRS each sampled defect was drawn with probability proportional to
    its likelihood, so the detected *fraction of the sample* estimates the
    likelihood-weighted coverage of the population; the Wilson interval gives
    the 95 % confidence band.
    """
    n = len(detected)
    if n == 0:
        raise CoverageError("cannot estimate coverage from an empty sample")
    hits = int(sum(bool(x) for x in detected))
    p_hat = hits / n
    _, half = wilson_interval(hits, n)
    return CoverageEstimate(
        value=p_hat,
        ci_half_width=half,
        n_detected=hits,
        n_simulated=n,
        universe_size=universe_size,
        universe_likelihood=universe_likelihood)


def combine_detected_likelihood(defects: Iterable[Defect],
                                detected: Iterable[bool]) -> float:
    """Total likelihood of the detected defects (reporting helper)."""
    return float(sum(d.likelihood for d, hit in zip(defects, detected) if hit))
