"""Defect diagnosis from SymBIST invariance signatures.

SymBIST is a go/no-go test, but the *pattern* of invariance violations carries
diagnostic information: each invariance observes a specific set of blocks
(e.g. Eq. (3) checks the SC array, the Vcm generator and, indirectly, the
bandgap), and whether a violation persists for the whole counter sweep or only
at specific codes separates bias-path defects from code-dependent DAC defects
(paper Fig. 5).  This module turns a failing
:class:`~repro.core.controller.SymBistResult` into a ranked list of candidate
blocks, using two evidence sources:

* **structural evidence** -- the blocks each failing invariance declares it
  covers (and, negatively, the blocks covered only by passing invariances);
* **temporal evidence** -- violations at every counter code point to blocks in
  the static bias/common-mode path, violations at a few codes point to the
  code-steered blocks (sub-DACs, SC array, reference ladder).

The result is a lightweight diagnosis of the kind a product engineer would use
to steer physical failure analysis; it is *not* needed for the pass/fail
decision of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.errors import CoverageError
from ..core.controller import SymBistResult
from ..core.invariance import Invariance, build_invariances

#: Blocks steered by the counter code: defects there produce code-dependent
#: violations (only some conversion periods), as in Fig. 5 of the paper.
CODE_STEERED_BLOCKS = ("subdac1", "subdac2", "sc_array", "reference_buffer")
#: Blocks in the static bias / common-mode path: defects there violate their
#: invariance during the entire test.
STATIC_PATH_BLOCKS = ("vcm_generator", "bandgap", "preamplifier",
                      "offset_compensation")
#: Fraction of violating cycles above which a violation counts as "persistent".
PERSISTENT_FRACTION = 0.9


@dataclass
class BlockScore:
    """Diagnosis score of one candidate block."""

    block_path: str
    score: float
    supporting_invariances: List[str] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockScore({self.block_path}, {self.score:.2f})"


@dataclass
class DiagnosisReport:
    """Ranked diagnosis produced from one failing SymBIST result."""

    candidates: List[BlockScore]
    failing_invariances: List[str]
    persistent_invariances: List[str]
    code_dependent_invariances: List[str]

    @property
    def top_candidate(self) -> Optional[str]:
        return self.candidates[0].block_path if self.candidates else None

    def ranked_blocks(self) -> List[str]:
        return [c.block_path for c in self.candidates]

    def score_of(self, block_path: str) -> float:
        for candidate in self.candidates:
            if candidate.block_path == block_path:
                return candidate.score
        return 0.0


def diagnose(result: SymBistResult,
             invariances: Optional[Sequence[Invariance]] = None
             ) -> DiagnosisReport:
    """Rank the A/M-S blocks most likely to contain the detected defect."""
    if result.passed:
        raise CoverageError("diagnosis requires a failing SymBIST result")
    invariances = list(invariances) if invariances is not None \
        else build_invariances()
    by_name = {inv.name: inv for inv in invariances}

    failing = result.failing_invariances
    passing = [name for name in result.check_results if name not in failing]

    persistent: List[str] = []
    code_dependent: List[str] = []
    for name in failing:
        check = result.check_results[name]
        fraction = len(check.violations) / max(check.n_cycles, 1)
        if fraction >= PERSISTENT_FRACTION:
            persistent.append(name)
        else:
            code_dependent.append(name)

    scores: Dict[str, float] = {}
    support: Dict[str, List[str]] = {}
    for name in failing:
        inv = by_name.get(name)
        if inv is None:
            continue
        weight = 1.0 / max(len(inv.covered_blocks), 1)
        for block in inv.covered_blocks:
            scores[block] = scores.get(block, 0.0) + 1.0 + weight
            support.setdefault(block, []).append(name)

    # Negative evidence: a block covered by an invariance that passed is less
    # likely to host the defect (the defect would usually disturb it too).
    for name in passing:
        inv = by_name.get(name)
        if inv is None:
            continue
        for block in inv.covered_blocks:
            if block in scores:
                scores[block] -= 0.4

    # Temporal evidence.
    for block in list(scores):
        if persistent and not code_dependent and block in STATIC_PATH_BLOCKS:
            scores[block] += 1.0
        if code_dependent and not persistent and block in CODE_STEERED_BLOCKS:
            scores[block] += 1.0

    candidates = [BlockScore(block_path=block, score=score,
                             supporting_invariances=sorted(set(support.get(block, []))))
                  for block, score in scores.items() if score > 0.0]
    candidates.sort(key=lambda c: (-c.score, c.block_path))
    return DiagnosisReport(candidates=candidates,
                           failing_invariances=failing,
                           persistent_invariances=persistent,
                           code_dependent_invariances=code_dependent)


def diagnosis_accuracy(records, results: Sequence[DiagnosisReport],
                       top_n: int = 3) -> float:
    """Fraction of detected defects whose true block is in the top-N diagnosis.

    ``records`` are :class:`~repro.defects.simulator.DefectSimulationRecord`
    objects (only detected ones are considered) aligned with ``results``.
    """
    pairs = [(record, report) for record, report in zip(records, results)
             if record.detected]
    if not pairs:
        raise CoverageError("no detected defects to score diagnosis accuracy on")
    hits = 0
    for record, report in pairs:
        if record.defect.block_path in report.ranked_blocks()[:top_n]:
            hits += 1
    return hits / len(pairs)
