"""Defect injection: mutate a device's defect state and restore it afterwards.

The injector resolves a :class:`~repro.defects.model.Defect` description to
the concrete :class:`~repro.circuit.components.Device` inside the IP hierarchy
and mutates its :class:`~repro.circuit.components.DefectState`.  Injection is
exposed both as explicit ``inject`` / ``remove`` calls and as a context
manager, which is what the campaign runner uses so that a failure in the
middle of a simulation can never leak a defect into the next one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..circuit.components import Device
from ..circuit.errors import DefectError
from ..circuit.netlist import NetlistHierarchy
from ..circuit.units import PASSIVE_DEVIATION, SHORT_RESISTANCE
from .model import Defect, DefectKind


class DefectInjector:
    """Injects defects into the devices of an IP hierarchy."""

    def __init__(self, hierarchy: NetlistHierarchy) -> None:
        self.hierarchy = hierarchy
        self._active: Optional[Defect] = None

    # ----------------------------------------------------------------- lookup
    def resolve(self, defect: Defect) -> Device:
        """Find the device a defect applies to."""
        try:
            return self.hierarchy.find_device(defect.block_path,
                                              defect.device_name)
        except Exception as exc:  # NetlistError
            raise DefectError(
                f"cannot resolve defect {defect.defect_id!r}: {exc}") from exc

    # -------------------------------------------------------------- injection
    def inject(self, defect: Defect) -> Device:
        """Apply ``defect`` to its device (single-defect assumption enforced)."""
        if self._active is not None:
            raise DefectError(
                f"defect {self._active.defect_id!r} is already injected; "
                "remove it before injecting another one")
        device = self.resolve(defect)
        if device.has_defect:
            raise DefectError(
                f"device {defect.block_path}/{defect.device_name} already "
                "carries a defect or a variation; clear it first")
        state = device.defect
        if defect.kind is DefectKind.SHORT:
            state.shorted_terminals = (defect.terminals[0], defect.terminals[1])
            state.short_resistance = SHORT_RESISTANCE
        elif defect.kind is DefectKind.OPEN:
            state.open_terminal = defect.terminals[0]
            state.open_pull = defect.pull
        elif defect.kind is DefectKind.PASSIVE_HIGH:
            state.value_scale = 1.0 + PASSIVE_DEVIATION
        elif defect.kind is DefectKind.PASSIVE_LOW:
            state.value_scale = 1.0 - PASSIVE_DEVIATION
        else:  # pragma: no cover - exhaustive enum
            raise DefectError(f"unsupported defect kind {defect.kind}")
        self._active = defect
        return device

    def remove(self) -> None:
        """Remove the currently injected defect (no-op when none is active)."""
        if self._active is None:
            return
        device = self.resolve(self._active)
        device.clear_defect()
        self._active = None

    @property
    def active_defect(self) -> Optional[Defect]:
        return self._active

    @contextmanager
    def injected(self, defect: Defect) -> Iterator[Device]:
        """Context manager: inject on entry, always remove on exit."""
        device = self.inject(defect)
        try:
            yield device
        finally:
            self.remove()
