"""Defect-likelihood model (paper Section V).

"Defects are assigned a relative likelihood of occurrence that is estimated by
combining global defect-type likelihoods, i.e. the likelihood of short-circuits
is typically higher than the likelihood of open-circuits, and
component-specific likelihoods, i.e. the expected component area on the
layout."

The likelihood of defect ``d`` on device ``v`` is modelled as::

    L(d) = type_prior(kind(d)) * area_proxy(v)

which is exactly the structure the paper (and the DefectSim methodology it
cites) describes.  Only relative values matter: the likelihood-weighted
coverage and the LWRS sampling probabilities are ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..circuit.components import Device
from ..circuit.errors import DefectError
from .model import Defect, DefectKind

#: Default global defect-type priors (shorts more likely than opens, value
#: deviations of passives least likely).
DEFAULT_TYPE_PRIORS: Dict[DefectKind, float] = {
    DefectKind.SHORT: 0.50,
    DefectKind.OPEN: 0.35,
    DefectKind.PASSIVE_HIGH: 0.075,
    DefectKind.PASSIVE_LOW: 0.075,
}


@dataclass(frozen=True)
class LikelihoodModel:
    """Assigns relative likelihoods to defects.

    Parameters
    ----------
    type_priors:
        Global per-defect-kind priors.
    block_scale:
        Optional per-block multiplicative factors (e.g. a block laid out with
        conservative, defect-prone routing could be up-weighted).  Defaults to
        1.0 for every block.
    """

    type_priors: Mapping[DefectKind, float] = field(
        default_factory=lambda: dict(DEFAULT_TYPE_PRIORS))
    block_scale: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, prior in self.type_priors.items():
            if prior <= 0.0:
                raise DefectError(
                    f"type prior for {kind} must be positive, got {prior}")
        for block, scale in self.block_scale.items():
            if scale <= 0.0:
                raise DefectError(
                    f"block scale for {block!r} must be positive, got {scale}")

    def likelihood(self, defect: Defect, device: Device) -> float:
        """Relative likelihood of one defect on its device."""
        try:
            prior = self.type_priors[defect.kind]
        except KeyError as exc:
            raise DefectError(
                f"no type prior configured for defect kind {defect.kind}") from exc
        scale = self.block_scale.get(defect.block_path, 1.0)
        return prior * device.area_proxy() * scale

    def reweight(self, defect: Defect, device: Device) -> Defect:
        """Return a copy of ``defect`` carrying its modelled likelihood."""
        return defect.reweighted(self.likelihood(defect, device))
