"""Defect model (paper Section V).

"We rely on a standard defect model that includes short- and open-circuits
across transistor and diode terminals and +/-50 % variations in passive
components, i.e. resistors and capacitors.  We use a short defect resistance
of 10 ohms.  A weak pull-up or pull-down is assigned to each open defect to
account for the fact that an ideal open does not exist."

A :class:`Defect` is a *description*: which device of which block it affects,
which kind of defect it is, and which terminals are involved.  Injection (the
mutation of the device's :class:`~repro.circuit.components.DefectState`) is
performed by :mod:`repro.defects.injection`; enumeration of all defects of an
IP is performed by :mod:`repro.defects.universe`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..circuit.components import Device, DeviceKind, PullDirection, TERMINALS
from ..circuit.errors import DefectError
from ..circuit.units import PASSIVE_DEVIATION, SHORT_RESISTANCE


class DefectKind(str, Enum):
    """The defect classes of the standard A/M-S defect model."""

    SHORT = "short"              # low-resistance bridge between two terminals
    OPEN = "open"                # broken terminal with a weak pull
    PASSIVE_HIGH = "passive_high"  # passive value +50 %
    PASSIVE_LOW = "passive_low"    # passive value -50 %


@dataclass(frozen=True)
class Defect:
    """One potential manufacturing defect of the IP.

    Attributes
    ----------
    defect_id:
        Unique, stable identifier (``block/device:kind:detail``).
    block_path:
        Hierarchy path of the block containing the device.
    device_name:
        Local name of the affected device inside the block netlist.
    kind:
        The defect class.
    terminals:
        The shorted terminal pair (for shorts) or the opened terminal (for
        opens) as a tuple; empty for passive deviations.
    pull:
        Weak pull direction assigned to an open defect.
    likelihood:
        Relative likelihood of occurrence (set by the likelihood model; the
        absolute scale is irrelevant, only ratios matter).
    """

    defect_id: str
    block_path: str
    device_name: str
    kind: DefectKind
    terminals: Tuple[str, ...] = ()
    pull: Optional[PullDirection] = None
    likelihood: float = 1.0

    def __post_init__(self) -> None:
        if self.likelihood <= 0.0:
            raise DefectError(
                f"defect {self.defect_id!r}: likelihood must be positive")
        if self.kind is DefectKind.SHORT and len(self.terminals) != 2:
            raise DefectError(
                f"defect {self.defect_id!r}: a short needs two terminals")
        if self.kind is DefectKind.OPEN and len(self.terminals) != 1:
            raise DefectError(
                f"defect {self.defect_id!r}: an open needs one terminal")

    @property
    def description(self) -> str:
        """Human-readable one-liner."""
        if self.kind is DefectKind.SHORT:
            return (f"short {self.terminals[0]}-{self.terminals[1]} "
                    f"({SHORT_RESISTANCE:g} ohm) on "
                    f"{self.block_path}/{self.device_name}")
        if self.kind is DefectKind.OPEN:
            pull = self.pull.value if self.pull else "none"
            return (f"open {self.terminals[0]} (weak pull {pull}) on "
                    f"{self.block_path}/{self.device_name}")
        sign = "+" if self.kind is DefectKind.PASSIVE_HIGH else "-"
        return (f"{sign}{int(PASSIVE_DEVIATION * 100)}% value deviation on "
                f"{self.block_path}/{self.device_name}")

    def reweighted(self, likelihood: float) -> "Defect":
        """Copy of the defect with a different likelihood."""
        return Defect(defect_id=self.defect_id, block_path=self.block_path,
                      device_name=self.device_name, kind=self.kind,
                      terminals=self.terminals, pull=self.pull,
                      likelihood=likelihood)


def _default_pull(device: Device, terminal: str) -> PullDirection:
    """Deterministic weak-pull assignment for an open defect.

    Gate opens of NMOS devices and P-type terminals default to a pull-down,
    PMOS gates to a pull-up; other terminals pull towards the rail they
    normally connect to, approximated by the device kind.  The choice is
    deterministic so that the defect universe is reproducible.
    """
    if device.kind is DeviceKind.PMOS:
        return PullDirection.UP
    if device.kind is DeviceKind.NMOS:
        return PullDirection.DOWN
    return PullDirection.DOWN


def enumerate_device_defects(block_path: str, device: Device) -> List[Defect]:
    """All defects of the standard model applicable to one device.

    ======================  ==========================================
    device kind             defects
    ======================  ==========================================
    MOS (4 terminals)       6 terminal-pair shorts + 4 terminal opens
    switch (3 terminals)    3 shorts + 3 opens
    BJT (3 terminals)       3 shorts + 3 opens
    diode (2 terminals)     1 short + 2 opens
    resistor / capacitor    1 short + 1 open + value +/-50 %
    ======================  ==========================================
    """
    defects: List[Defect] = []
    prefix = f"{block_path}/{device.name}"
    terminals = TERMINALS[device.kind]

    for term_a, term_b in itertools.combinations(terminals, 2):
        defects.append(Defect(
            defect_id=f"{prefix}:short:{term_a}-{term_b}",
            block_path=block_path, device_name=device.name,
            kind=DefectKind.SHORT, terminals=(term_a, term_b)))
    for term in terminals:
        defects.append(Defect(
            defect_id=f"{prefix}:open:{term}",
            block_path=block_path, device_name=device.name,
            kind=DefectKind.OPEN, terminals=(term,),
            pull=_default_pull(device, term)))
    if device.kind.is_passive:
        defects.append(Defect(
            defect_id=f"{prefix}:passive_high",
            block_path=block_path, device_name=device.name,
            kind=DefectKind.PASSIVE_HIGH))
        defects.append(Defect(
            defect_id=f"{prefix}:passive_low",
            block_path=block_path, device_name=device.name,
            kind=DefectKind.PASSIVE_LOW))
        # For a two-terminal passive the short and the two opens are kept
        # (short, open at either end behaves identically in the model, but the
        # physical defect sites differ, as in layout-aware defect extraction).
    return defects
