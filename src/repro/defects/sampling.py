"""Likelihood-Weighted Random Sampling (LWRS) of the defect universe.

Paper context (Section V): "To reduce defect simulation time, we use the
stop-on-detection and Likelihood-Weighted Random Sampling (LWRS) options.
When the LWRS option is used, the 95 % confidence interval of the L-W defect
coverage is also reported."

LWRS draws defects with probability proportional to their likelihood.  The
key statistical property (from the DefectSim methodology the paper cites) is
that under likelihood-weighted sampling the *unweighted* detected fraction of
the sample is an unbiased estimator of the likelihood-weighted coverage of the
whole universe, and a binomial confidence interval applies directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.errors import CoverageError
from .model import Defect
from .universe import DefectUniverse


@dataclass(frozen=True)
class SamplingPlan:
    """How a campaign walks the defect universe."""

    #: Simulate every defect of the universe (exact coverage, no CI).
    exhaustive: bool = True
    #: Number of LWRS samples when not exhaustive.
    n_samples: int = 100
    #: Draw with replacement (True matches the classical LWRS estimator).
    with_replacement: bool = True

    def __post_init__(self) -> None:
        if not self.exhaustive and self.n_samples <= 0:
            raise CoverageError("n_samples must be positive for LWRS sampling")


def lwrs_sample(universe: DefectUniverse, n_samples: int,
                rng: Optional[np.random.Generator] = None,
                with_replacement: bool = True) -> List[Defect]:
    """Draw ``n_samples`` defects with probability proportional to likelihood.

    Sampling with replacement is the textbook LWRS scheme; without
    replacement the estimator is slightly conservative but never simulates the
    same defect twice (useful for small universes).
    """
    if len(universe) == 0:
        raise CoverageError("cannot sample from an empty defect universe")
    if n_samples <= 0:
        raise CoverageError(f"n_samples must be positive, got {n_samples}")
    rng = rng if rng is not None else np.random.default_rng(0)
    probabilities = universe.probabilities()
    if not with_replacement and n_samples > len(universe):
        n_samples = len(universe)
    indices = rng.choice(len(universe), size=n_samples,
                         replace=with_replacement, p=probabilities)
    return [universe.defects[int(i)] for i in indices]


def select_defects(universe: DefectUniverse, plan: SamplingPlan,
                   rng: Optional[np.random.Generator] = None) -> List[Defect]:
    """Materialise a sampling plan into the list of defects to simulate."""
    if plan.exhaustive:
        return list(universe.defects)
    return lwrs_sample(universe, plan.n_samples, rng,
                       with_replacement=plan.with_replacement)


def block_seed_sequence(root: Union[int, np.random.SeedSequence],
                        block_path: str) -> np.random.SeedSequence:
    """Per-block ``SeedSequence`` derived from a root seed + the block path.

    The block path is hashed into spawn-key words appended to the root's, so
    each block's seed material depends only on ``(root, block_path)`` --
    never on how many other blocks a sweep visits or in which order.  This is
    what makes per-block campaigns invariant to block iteration order and
    block-subset restriction: the draws for ``sc_array`` are the same whether
    the sweep covers one block or all of them.
    """
    digest = hashlib.sha256(block_path.encode("utf-8")).digest()
    words = tuple(int.from_bytes(digest[i:i + 4], "little")
                  for i in range(0, 16, 4))
    if not isinstance(root, np.random.SeedSequence):
        root = np.random.SeedSequence(int(root))
    return np.random.SeedSequence(entropy=root.entropy,
                                  spawn_key=tuple(root.spawn_key) + words)


def variant_seed(root_seed: int, label: str) -> int:
    """Per-variant root seed derived from ``(root seed, variant label)``.

    A multi-variant study gives each variant its own deterministic root so
    calibration draws and LWRS selections decorrelate across variants while
    staying reproducible: the derivation depends only on the study's root
    seed and the variant's label, never on how many variants the study
    declares or in which order.  The label hash is folded down to 63 bits
    so the result stays a valid ``SeedSequence`` entropy value.
    """
    digest = hashlib.sha256(f"variant:{label}".encode("utf-8")).digest()
    word = int.from_bytes(digest[:8], "big") >> 1
    return (int(root_seed) ^ word) & ((1 << 63) - 1)


def batch_spans(n: int, batch_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans partitioning ``range(n)`` in order.

    Every index appears in exactly one span; only the final span may be
    shorter than ``batch_size``.  ``batch_size=1`` yields one span per index,
    which is how the batched campaign path degenerates to the unbatched one.
    """
    if n < 0:
        raise CoverageError(f"cannot span a negative universe size ({n})")
    if batch_size <= 0:
        raise CoverageError(
            f"batch_size must be positive, got {batch_size}")
    return [(start, min(start + batch_size, n))
            for start in range(0, n, batch_size)]


def batch_seed_span(root: Union[int, np.random.SeedSequence],
                    block_path: str, start: int,
                    stop: int) -> List[np.random.SeedSequence]:
    """Ordered per-defect child seeds of one batch span within a block.

    Child ``i`` of a block is the stateless spawn
    ``SeedSequence(entropy=block_root.entropy,
    spawn_key=block_root.spawn_key + (i,))`` of the block's root
    (:func:`block_seed_sequence`), mirroring the campaign engine's stateless
    per-task seed derivation.  A batch spanning ``[start, stop)`` owns
    exactly the children ``start .. stop-1`` in order, so concatenating the
    spans of any batching of a block partitions the unbatched per-defect
    seed sequence exactly once, in order -- independent of the batch size,
    the block subset and the block iteration order.  A batch task's engine
    seed is its first child (``batch_seed_span(...)[0]``).
    """
    if start < 0 or stop < start:
        raise CoverageError(
            f"invalid batch span [{start}, {stop})")
    block_root = block_seed_sequence(root, block_path)
    return [np.random.SeedSequence(entropy=block_root.entropy,
                                   spawn_key=tuple(block_root.spawn_key) + (i,))
            for i in range(start, stop)]


def per_block_selection(universe: DefectUniverse,
                        seed: Union[int, np.random.SeedSequence],
                        n_samples: int,
                        exhaustive_threshold: Optional[int] = None,
                        blocks: Optional[Sequence[str]] = None,
                        exhaustive: bool = False
                        ) -> Dict[str, Tuple[SamplingPlan, List[Defect]]]:
    """Per-block sampling plans and defect selections of a block sweep.

    One entry per block, in ``blocks`` (or universe) order.  Blocks whose
    universe is not larger than ``exhaustive_threshold`` (default:
    ``n_samples``) are simulated exhaustively, mirroring the paper's Table I
    where small blocks have ``#defects == #defects simulated``; larger blocks
    draw an LWRS sample of ``n_samples`` from a generator seeded by
    :func:`block_seed_sequence`, so the selection is bit-identical for any
    block order, block subset or worker count.

    Shared by :meth:`repro.defects.DefectCampaign.run_per_block` and the
    campaign stage expander of the declarative study layer
    (:mod:`repro.engine.registry`, which every campaign-shaped study graph
    -- :func:`repro.engine.pipeline.build_block_study` and friends --
    compiles through) so the flows can never drift apart in what they
    simulate.
    """
    threshold = exhaustive_threshold if exhaustive_threshold is not None \
        else n_samples
    block_list = list(blocks) if blocks is not None \
        else universe.block_paths()
    if not block_list:
        raise CoverageError("no blocks to simulate")
    selection: Dict[str, Tuple[SamplingPlan, List[Defect]]] = {}
    for block_path in block_list:
        block_universe = universe.by_block(block_path)
        if len(block_universe) == 0:
            raise CoverageError(
                f"no defects to simulate for block {block_path!r}")
        if exhaustive or len(block_universe) <= threshold:
            plan = SamplingPlan(exhaustive=True)
        else:
            plan = SamplingPlan(exhaustive=False, n_samples=n_samples)
        rng = np.random.default_rng(block_seed_sequence(seed, block_path))
        selection[block_path] = (plan, select_defects(block_universe, plan,
                                                      rng))
    return selection
