"""Likelihood-Weighted Random Sampling (LWRS) of the defect universe.

Paper context (Section V): "To reduce defect simulation time, we use the
stop-on-detection and Likelihood-Weighted Random Sampling (LWRS) options.
When the LWRS option is used, the 95 % confidence interval of the L-W defect
coverage is also reported."

LWRS draws defects with probability proportional to their likelihood.  The
key statistical property (from the DefectSim methodology the paper cites) is
that under likelihood-weighted sampling the *unweighted* detected fraction of
the sample is an unbiased estimator of the likelihood-weighted coverage of the
whole universe, and a binomial confidence interval applies directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..circuit.errors import CoverageError
from .model import Defect
from .universe import DefectUniverse


@dataclass(frozen=True)
class SamplingPlan:
    """How a campaign walks the defect universe."""

    #: Simulate every defect of the universe (exact coverage, no CI).
    exhaustive: bool = True
    #: Number of LWRS samples when not exhaustive.
    n_samples: int = 100
    #: Draw with replacement (True matches the classical LWRS estimator).
    with_replacement: bool = True

    def __post_init__(self) -> None:
        if not self.exhaustive and self.n_samples <= 0:
            raise CoverageError("n_samples must be positive for LWRS sampling")


def lwrs_sample(universe: DefectUniverse, n_samples: int,
                rng: Optional[np.random.Generator] = None,
                with_replacement: bool = True) -> List[Defect]:
    """Draw ``n_samples`` defects with probability proportional to likelihood.

    Sampling with replacement is the textbook LWRS scheme; without
    replacement the estimator is slightly conservative but never simulates the
    same defect twice (useful for small universes).
    """
    if len(universe) == 0:
        raise CoverageError("cannot sample from an empty defect universe")
    if n_samples <= 0:
        raise CoverageError(f"n_samples must be positive, got {n_samples}")
    rng = rng if rng is not None else np.random.default_rng(0)
    probabilities = universe.probabilities()
    if not with_replacement and n_samples > len(universe):
        n_samples = len(universe)
    indices = rng.choice(len(universe), size=n_samples,
                         replace=with_replacement, p=probabilities)
    return [universe.defects[int(i)] for i in indices]


def select_defects(universe: DefectUniverse, plan: SamplingPlan,
                   rng: Optional[np.random.Generator] = None) -> List[Defect]:
    """Materialise a sampling plan into the list of defects to simulate."""
    if plan.exhaustive:
        return list(universe.defects)
    return lwrs_sample(universe, plan.n_samples, rng,
                       with_replacement=plan.with_replacement)
