"""Defect-simulation campaign runner (the Tessent DefectSim equivalent).

The campaign runner reproduces the automated workflow of the paper's Section V
on top of the behavioral IP model:

1. extract the defect universe from the structural hierarchy,
2. pick the defects to simulate -- exhaustively or by Likelihood-Weighted
   Random Sampling (LWRS),
3. for each defect: inject it, run the SymBIST test (optionally with
   stop-on-detection), record whether and when it was detected, remove it,
4. aggregate the results into per-block and whole-IP likelihood-weighted
   coverage with 95 % confidence intervals -- the content of Table I.

Because the underlying electrical engine is a behavioral model rather than a
SPICE netlist, wall-clock times are not comparable to the paper's
"defect simulation time" column.  The runner therefore reports both the
*real* (``time.perf_counter``) wall-clock time and a *modelled*
transistor-level simulation time: the number of test clock cycles each defect
simulation had to cover multiplied by a calibrated seconds-per-cycle
constant, so that the effect of stop-on-detection on the campaign cost is
reproduced.

Campaigns execute through the campaign engine (:mod:`repro.engine`): each
defect is one deterministic task, so passing
``backend=MultiprocessBackend(max_workers=N)`` to :meth:`DefectCampaign.run`
shards the defect list across a process pool with byte-identical coverage
results, and passing a :class:`~repro.engine.ResultCache` makes repeated
campaigns replay stored per-defect records instead of re-simulating.  A
:class:`~repro.engine.SharedMemoryBackend` ships the campaign context (the
behavioral ADC, windows, universe) to the workers once through a
shared-memory segment instead of re-pickling it per task shard -- same
results, far smaller per-task payloads.
"""

from __future__ import annotations

import hashlib
import pickle
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.components import PullDirection
from ..circuit.errors import CoverageError
from ..core.controller import SymBistController, SymBistResult
from ..core.stimulus import SymBistStimulus
from ..core.test_time import CheckingMode
from ..core.window_comparator import WindowComparator
from ..engine import (CampaignEngine, CampaignReport, ExecutionBackend,
                      ResultCache, ResultCodec, Task, TaskGraph, TaskOutcome)
from ..engine.telemetry import TelemetryBus
from .batching import BatchedDefectEvaluator
from .coverage import CoverageEstimate, exhaustive_coverage, lwrs_coverage
from .injection import DefectInjector
from .likelihood import LikelihoodModel
from .model import Defect, DefectKind
from .sampling import (SamplingPlan, batch_seed_span, batch_spans,
                       per_block_selection, select_defects)
from .universe import DefectUniverse, build_defect_universe

#: Modelled transistor-level simulation cost of one test clock cycle, in
#: seconds.  Calibrated so that a campaign of ~100 defects on the whole A/M-S
#: part lands in the same range as the paper's Table I "defect simulation
#: time" column; only relative comparisons (with/without stop-on-detection,
#: block versus block) are meaningful.
MODEL_SECONDS_PER_CYCLE = 0.55


@dataclass
class DefectSimulationRecord:
    """Outcome of simulating one defect."""

    defect: Defect
    detected: bool
    detecting_invariance: Optional[str]
    detection_cycle: Optional[int]
    cycles_run: int
    modeled_sim_time: float
    wall_time: float

    @property
    def block_path(self) -> str:
        return self.defect.block_path


@dataclass
class BlockCoverageReport:
    """One row of the Table I reproduction."""

    block_path: str
    n_defects: int
    n_simulated: int
    modeled_sim_time: float
    wall_time: float
    coverage: CoverageEstimate


@dataclass
class CampaignResult:
    """Everything produced by one defect-simulation campaign."""

    records: List[DefectSimulationRecord]
    universe: DefectUniverse
    plan: SamplingPlan
    stop_on_detection: bool
    #: Engine instrumentation (backend, cache hits, wall time) of the run.
    engine_report: Optional[CampaignReport] = None

    # ----------------------------------------------------------------- access
    @property
    def n_simulated(self) -> int:
        return len(self.records)

    def timing_summary(self) -> Dict[str, float]:
        """Real and modelled campaign cost, plus engine wall time.

        ``wall_time`` and ``modeled_sim_time`` sum the per-record costs of
        the simulations that *produced* the records -- for cache-replayed
        records that is the original (cold-run) cost.  ``engine_wall_time``
        is what this particular run actually took, so a warm replay shows a
        large ``wall_time`` next to a near-zero ``engine_wall_time``.
        """
        summary = {
            "wall_time": sum(r.wall_time for r in self.records),
            "modeled_sim_time": sum(r.modeled_sim_time for r in self.records),
        }
        if self.engine_report is not None:
            summary["engine_wall_time"] = self.engine_report.wall_time
            summary["cache_hit_rate"] = self.engine_report.cache_hit_rate
        return summary

    @property
    def n_detected(self) -> int:
        return sum(1 for r in self.records if r.detected)

    def records_for_block(self, block_path: str) -> List[DefectSimulationRecord]:
        return [r for r in self.records if r.block_path == block_path]

    def undetected_defects(self) -> List[Defect]:
        return [r.defect for r in self.records if not r.detected]

    def detections_by_invariance(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.detected and record.detecting_invariance:
                counts[record.detecting_invariance] = \
                    counts.get(record.detecting_invariance, 0) + 1
        return counts

    # --------------------------------------------------------------- coverage
    def _coverage(self, records: Sequence[DefectSimulationRecord],
                  universe: DefectUniverse) -> CoverageEstimate:
        detected = [r.detected for r in records]
        if self.plan.exhaustive:
            return exhaustive_coverage(detected, [r.defect for r in records])
        return lwrs_coverage(detected, universe_size=len(universe),
                             universe_likelihood=universe.total_likelihood)

    def block_report(self, block_path: str) -> BlockCoverageReport:
        """Coverage report of one block (one row of Table I)."""
        records = self.records_for_block(block_path)
        if not records:
            raise CoverageError(
                f"the campaign simulated no defect in block {block_path!r}")
        sub_universe = self.universe.by_block(block_path)
        return BlockCoverageReport(
            block_path=block_path,
            n_defects=len(sub_universe),
            n_simulated=len(records),
            modeled_sim_time=sum(r.modeled_sim_time for r in records),
            wall_time=sum(r.wall_time for r in records),
            coverage=self._coverage(records, sub_universe))

    def per_block_reports(self) -> List[BlockCoverageReport]:
        reports = []
        for block_path in self.universe.block_paths():
            if self.records_for_block(block_path):
                reports.append(self.block_report(block_path))
        return reports

    def overall_report(self) -> BlockCoverageReport:
        """Coverage of the complete A/M-S part (last row of Table I)."""
        if not self.records:
            raise CoverageError("the campaign produced no records")
        return BlockCoverageReport(
            block_path="complete_ams_part",
            n_defects=len(self.universe),
            n_simulated=len(self.records),
            modeled_sim_time=sum(r.modeled_sim_time for r in self.records),
            wall_time=sum(r.wall_time for r in self.records),
            coverage=self._coverage(self.records, self.universe))


def adc_fingerprint(adc: SarAdc, hierarchy: Any) -> str:
    """Content fingerprint of the device under test, as it is *now*.

    Taken per run (after ``clear_defects``) so campaigns against different IP
    states never share cache artifacts.  Two pieces fully determine
    per-defect outcomes (given the test spec): the structural hierarchy
    (device parameters and defect states) and each block's sampled behavioral
    parameters.  Transient simulation state (latch memories) is deliberately
    excluded -- it drifts between runs without affecting results, since every
    test run resets it.  Module-level so the ``calibrate -> campaign``
    pipeline (:mod:`repro.engine.pipeline`) can fingerprint the IP without a
    calibrated :class:`DefectCampaign` in hand.
    """
    behavioral = [(blk.block_path, sorted(blk.variation_state().items()))
                  for blk in adc.analog_blocks]
    state: Any = (hierarchy, behavioral)
    dut = getattr(adc, "dut", None)
    if dut is not None and not dut.is_default:
        # Non-default DUT variants fold the spec fingerprint in, so two
        # variants that happen to share structure/behavior never share
        # cached artifacts.  The default spec keeps the historical bytes,
        # which is what lets pre-refactor caches replay bit-identically.
        state = (hierarchy, behavioral, dut.fingerprint())
    return hashlib.sha256(pickle.dumps(state, protocol=4)).hexdigest()[:16]


# --------------------------------------------------------------------- engine
#: Per-process campaign state of the engine workers.  In the parent process
#: the running campaign registers itself here before dispatching, so the
#: serial backend (and fork-started pool workers, which inherit the dict)
#: reuse the existing hierarchy/injector; spawn-started workers find the dict
#: empty and rebuild the campaign once per process from the task context.
_WORKER_STATE: Dict[str, "DefectCampaign"] = {}


def _worker_campaign(context: Mapping[str, Any]) -> "DefectCampaign":
    token = context["token"]
    campaign = _WORKER_STATE.get(token)
    if campaign is None:
        campaign = DefectCampaign(
            adc=context["adc"], deltas=context["deltas"],
            stimulus=context["stimulus"], mode=context["mode"],
            stop_on_detection=context["stop_on_detection"],
            likelihood_model=context["likelihood_model"],
            seconds_per_cycle=context["seconds_per_cycle"])
        _WORKER_STATE.clear()
        _WORKER_STATE[token] = campaign
    return campaign


def _defect_worker(context: Mapping[str, Any], task: Task,
                   rng: np.random.Generator):
    """Engine worker: inject one defect (or a batch) and run the SymBIST test.

    A list payload is a defect batch; the worker returns the ordered list of
    per-defect records, which the dispatching campaign flattens back into the
    unbatched record order.
    """
    campaign = _worker_campaign(context)
    if isinstance(task.payload, list):
        return campaign.simulate_defect_batch(task.payload)
    return campaign.simulate_defect(task.payload)


def defect_to_jsonable(defect: Defect) -> Dict[str, Any]:
    """JSON rendering of one :class:`Defect`, shared by every cache codec
    that stores defects (per-defect campaign records, escape analyses)."""
    return {
        "defect_id": defect.defect_id,
        "block_path": defect.block_path,
        "device_name": defect.device_name,
        "kind": defect.kind.value,
        "terminals": list(defect.terminals),
        "pull": defect.pull.value if defect.pull is not None else None,
        "likelihood": defect.likelihood,
    }


def defect_from_jsonable(raw: Mapping[str, Any]) -> Defect:
    """Inverse of :func:`defect_to_jsonable`."""
    return Defect(
        defect_id=raw["defect_id"], block_path=raw["block_path"],
        device_name=raw["device_name"], kind=DefectKind(raw["kind"]),
        terminals=tuple(raw["terminals"]),
        pull=PullDirection(raw["pull"]) if raw["pull"] is not None else None,
        likelihood=raw["likelihood"])


def _record_to_jsonable(record: DefectSimulationRecord) -> Dict[str, Any]:
    return {
        "defect": defect_to_jsonable(record.defect),
        "detected": record.detected,
        "detecting_invariance": record.detecting_invariance,
        "detection_cycle": record.detection_cycle,
        "cycles_run": record.cycles_run,
        "modeled_sim_time": record.modeled_sim_time,
        "wall_time": record.wall_time,
    }


def _record_from_jsonable(data: Mapping[str, Any]) -> DefectSimulationRecord:
    return DefectSimulationRecord(
        defect=defect_from_jsonable(data["defect"]), detected=data["detected"],
        detecting_invariance=data["detecting_invariance"],
        detection_cycle=data["detection_cycle"],
        cycles_run=data["cycles_run"],
        modeled_sim_time=data["modeled_sim_time"],
        wall_time=data["wall_time"])


def _result_to_jsonable(result) -> Any:
    """Codec encoder for both per-defect records and batched record lists."""
    if isinstance(result, list):
        return [_record_to_jsonable(record) for record in result]
    return _record_to_jsonable(result)


def _result_from_jsonable(data) -> Any:
    if isinstance(data, list):
        return [_record_from_jsonable(raw) for raw in data]
    return _record_from_jsonable(data)


#: Cache codec turning per-defect records (or batched lists of them) into
#: JSON artifacts and back.
RECORD_CODEC = ResultCodec(encode=_result_to_jsonable,
                           decode=_result_from_jsonable)


def _flatten_records(results: Sequence[Any]) -> List[DefectSimulationRecord]:
    """Flatten engine results (records or batched record lists) in order."""
    records: List[DefectSimulationRecord] = []
    for result in results:
        if isinstance(result, list):
            records.extend(result)
        else:
            records.append(result)
    return records


class DefectCampaign:
    """Runs SymBIST defect-simulation campaigns on the SAR ADC IP."""

    def __init__(self, adc: Optional[SarAdc] = None,
                 deltas: Optional[Dict[str, float]] = None,
                 stimulus: Optional[SymBistStimulus] = None,
                 mode: CheckingMode = CheckingMode.SEQUENTIAL,
                 stop_on_detection: bool = True,
                 likelihood_model: Optional[LikelihoodModel] = None,
                 seconds_per_cycle: float = MODEL_SECONDS_PER_CYCLE) -> None:
        if deltas is None:
            raise CoverageError(
                "a calibrated delta table is required (run "
                "repro.core.calibrate_windows first)")
        self.adc = adc or SarAdc()
        self.deltas = dict(deltas)
        self.stimulus = stimulus or SymBistStimulus()
        self.mode = mode
        self.stop_on_detection = stop_on_detection
        self.seconds_per_cycle = seconds_per_cycle
        self.hierarchy = self.adc.build_hierarchy()
        self.likelihood_model = likelihood_model
        self.universe = build_defect_universe(self.hierarchy, likelihood_model)
        self.injector = DefectInjector(self.hierarchy)
        #: Batched-evaluation state, keyed by ADC fingerprint so a golden
        #: trace is never reused across different IP states.
        self._batch_evaluators: Dict[str, BatchedDefectEvaluator] = {}

    def _adc_fingerprint(self) -> str:
        return adc_fingerprint(self.adc, self.hierarchy)

    def _batch_evaluator(self) -> BatchedDefectEvaluator:
        """The golden-trace evaluator for the ADC's current (clean) state."""
        fingerprint = self._adc_fingerprint()
        evaluator = self._batch_evaluators.get(fingerprint)
        if evaluator is None:
            evaluator = BatchedDefectEvaluator(
                adc=self.adc, stimulus=self.stimulus, deltas=self.deltas,
                mode=self.mode, stop_on_detection=self.stop_on_detection,
                fingerprint=fingerprint)
            self._batch_evaluators.clear()
            self._batch_evaluators[fingerprint] = evaluator
        elif evaluator.deltas != self.deltas:
            # Block-study graphs refresh the campaign's delta table per task
            # (per-block k overrides); the golden trace is window-independent.
            evaluator.set_deltas(self.deltas)
        return evaluator

    def _task_spec(self, defect: Defect, adc_fingerprint: str) -> Dict[str, Any]:
        """Cache key material: everything a per-defect record depends on.

        The defect's likelihood is part of the key because cached records
        decode the full :class:`Defect` -- including the likelihood that
        coverage estimators weight by -- so campaigns run under different
        likelihood models must never share artifacts.
        """
        return {"driver": "symbist-defect-campaign",
                "defect_id": defect.defect_id,
                "likelihood": defect.likelihood,
                "adc": adc_fingerprint,
                "deltas": self.deltas,
                "stimulus": asdict(self.stimulus),
                "mode": self.mode.value,
                "stop_on_detection": self.stop_on_detection,
                "seconds_per_cycle": self.seconds_per_cycle}

    def _batch_task_spec(self, defects: Sequence[Defect],
                         adc_fingerprint: str) -> Dict[str, Any]:
        """Cache key material of one batch task: the ordered member list
        (id + likelihood, like the per-defect spec) plus everything the
        shared evaluation depends on."""
        return {"driver": "symbist-defect-batch",
                "members": [{"defect_id": d.defect_id,
                             "likelihood": d.likelihood} for d in defects],
                "adc": adc_fingerprint,
                "deltas": self.deltas,
                "stimulus": asdict(self.stimulus),
                "mode": self.mode.value,
                "stop_on_detection": self.stop_on_detection,
                "seconds_per_cycle": self.seconds_per_cycle}

    # ------------------------------------------------------------------- runs
    def _build_controller(self) -> SymBistController:
        checkers = [WindowComparator(name=name, delta=delta)
                    for name, delta in self.deltas.items()]
        return SymBistController(self.adc, checkers, stimulus=self.stimulus,
                                 mode=self.mode,
                                 stop_on_detection=self.stop_on_detection)

    def simulate_defect(self, defect: Defect) -> DefectSimulationRecord:
        """Inject one defect, run the SymBIST test, and record the outcome."""
        start = time.perf_counter()
        with self.injector.injected(defect):
            result = self._build_controller().run()
        wall = time.perf_counter() - start
        detecting = result.first_detection[0] if result.first_detection else None
        detection_cycle = result.first_detection[1] if result.first_detection \
            else None
        return DefectSimulationRecord(
            defect=defect,
            detected=result.detected,
            detecting_invariance=detecting,
            detection_cycle=detection_cycle,
            cycles_run=result.cycles_run,
            modeled_sim_time=result.cycles_run * self.seconds_per_cycle,
            wall_time=wall)

    def simulate_defect_batch(self, defects: Sequence[Defect]
                              ) -> List[DefectSimulationRecord]:
        """Evaluate a batch of defects against the shared golden trace.

        Per-defect results are bit-identical to :meth:`simulate_defect`: a
        defect local to one block re-evaluates only that block's stage and
        its downstream cone against the cached defect-free trace
        (:mod:`repro.defects.batching`); a non-local defect falls back to
        the full re-simulation.  Only ``wall_time`` -- which is measured,
        never compared -- differs.
        """
        evaluator = self._batch_evaluator()
        records: List[DefectSimulationRecord] = []
        for defect in defects:
            if not evaluator.is_local(defect):
                records.append(self.simulate_defect(defect))
                continue
            start = time.perf_counter()
            with self.injector.injected(defect):
                outcome = evaluator.evaluate(defect)
            wall = time.perf_counter() - start
            detected, detecting, detection_cycle, cycles_run = outcome
            records.append(DefectSimulationRecord(
                defect=defect,
                detected=detected,
                detecting_invariance=detecting,
                detection_cycle=detection_cycle,
                cycles_run=cycles_run,
                modeled_sim_time=cycles_run * self.seconds_per_cycle,
                wall_time=wall))
        return records

    def run(self, plan: Optional[SamplingPlan] = None,
            rng: Optional[np.random.Generator] = None,
            blocks: Optional[Sequence[str]] = None,
            progress: Optional[Callable[[int, int, DefectSimulationRecord], None]] = None,
            backend: Optional[ExecutionBackend] = None,
            cache: Optional[ResultCache] = None,
            telemetry: Optional["TelemetryBus"] = None,
            batch_size: int = 1) -> CampaignResult:
        """Run a campaign over the whole IP or a subset of blocks.

        Parameters
        ----------
        plan:
            Sampling plan; defaults to exhaustive simulation.
        rng:
            Random generator used by LWRS sampling.
        blocks:
            Optional restriction to a list of block paths (used to produce the
            per-block rows of Table I with per-block LWRS budgets).
        progress:
            Optional callback ``progress(index, total, record)`` invoked after
            each defect simulation (in defect order on the serial backend, in
            completion order otherwise).
        backend:
            Campaign-engine execution backend; the default serial backend
            reproduces the historical in-process loop exactly, while a
            :class:`~repro.engine.MultiprocessBackend` shards the defects
            across worker processes with identical results and a
            :class:`~repro.engine.SharedMemoryBackend` additionally ships
            the campaign context (ADC, windows, universe) only once per run
            instead of once per shard.
        cache:
            Optional :class:`~repro.engine.ResultCache`; per-defect records
            are stored as JSON artifacts keyed by the full campaign spec, so
            re-running an identical campaign replays them instead of
            simulating.
        batch_size:
            Number of defects grouped into one engine task.  ``1`` (the
            default) reproduces the historical per-defect task graph exactly
            (same task ids, specs and cache artifacts); larger values
            evaluate each group as one sweep against a cached defect-free
            golden trace with bit-identical records
            (:meth:`simulate_defect_batch`).
        """
        plan = plan or SamplingPlan(exhaustive=True)
        universe = self.universe
        if blocks is not None:
            selected = [d for d in universe.defects if d.block_path in set(blocks)]
            universe = DefectUniverse(selected)
        if len(universe) == 0:
            raise CoverageError("no defects to simulate for the requested blocks")
        defects = select_defects(universe, plan, rng)

        self.adc.clear_defects()
        adc_fingerprint = self._adc_fingerprint()
        tasks = TaskGraph()
        if batch_size == 1:
            for index, defect in enumerate(defects):
                # LWRS samples with replacement, so the same defect may appear
                # several times; the task id is indexed to stay unique while
                # the spec (hence the cache key) depends on the defect alone.
                tasks.add(Task(task_id=f"defect/{index}/{defect.defect_id}",
                               payload=defect,
                               spec=self._task_spec(defect, adc_fingerprint),
                               deterministic=True, group=defect.block_path))
        else:
            for start, stop in batch_spans(len(defects), batch_size):
                members = list(defects[start:stop])
                group = members[0].block_path
                tasks.add(Task(
                    task_id=f"defect-batch/{start}-{stop}",
                    payload=members,
                    spec=self._batch_task_spec(members, adc_fingerprint),
                    seed=batch_seed_span(0, group, start, stop)[0],
                    deterministic=True, group=group,
                    weight=len(members)))

        run = self._dispatch(tasks, backend, cache, progress, telemetry)
        return CampaignResult(records=_flatten_records(run.results),
                              universe=universe, plan=plan,
                              stop_on_detection=self.stop_on_detection,
                              engine_report=run.report)

    def _dispatch(self, tasks: TaskGraph,
                  backend: Optional[ExecutionBackend],
                  cache: Optional[ResultCache],
                  progress: Optional[Callable[[int, int, DefectSimulationRecord], None]],
                  telemetry: Optional["TelemetryBus"] = None):
        """Run defect tasks through one engine invocation.

        Registers this campaign in the per-process worker state (so the
        serial backend and fork-started workers reuse the live
        hierarchy/injector) for the duration of the run -- the single copy
        of the dispatch plumbing shared by :meth:`run` and
        :meth:`run_per_block`.
        """
        engine_progress = None
        if progress is not None:
            def engine_progress(outcome: TaskOutcome) -> None:
                progress(outcome.index, outcome.total, outcome.result)

        token = uuid.uuid4().hex
        context = {"token": token, "adc": self.adc, "deltas": self.deltas,
                   "stimulus": self.stimulus, "mode": self.mode,
                   "stop_on_detection": self.stop_on_detection,
                   "likelihood_model": self.likelihood_model,
                   "seconds_per_cycle": self.seconds_per_cycle}
        _WORKER_STATE.clear()
        _WORKER_STATE[token] = self
        try:
            engine = CampaignEngine(backend=backend, cache=cache,
                                    telemetry=telemetry)
            return engine.run(tasks, _defect_worker, context=context,
                              codec=RECORD_CODEC, progress=engine_progress)
        finally:
            _WORKER_STATE.pop(token, None)

    def run_per_block(self, n_samples_per_block: int,
                      rng: Optional[np.random.Generator] = None,
                      exhaustive_threshold: Optional[int] = None,
                      progress: Optional[Callable[[int, int, DefectSimulationRecord], None]] = None,
                      backend: Optional[ExecutionBackend] = None,
                      cache: Optional[ResultCache] = None,
                      seed: Optional[Any] = None,
                      blocks: Optional[Sequence[str]] = None,
                      exhaustive: bool = False,
                      telemetry: Optional["TelemetryBus"] = None,
                      batch_size: int = 1
                      ) -> Dict[str, CampaignResult]:
        """Run every block's campaign, like the per-block rows of Table I.

        Blocks whose universe is not larger than ``exhaustive_threshold`` (or
        ``n_samples_per_block`` when the threshold is omitted) are simulated
        exhaustively, mirroring the paper where small blocks have
        ``#defects == #defects simulated``; larger blocks use LWRS.

        The whole sweep is **one task graph through one engine run**: every
        block's defect tasks are submitted together (grouped by block in the
        report), so small blocks interleave with large ones and a pool
        backend stays saturated instead of draining per block.  Each block's
        LWRS draws come from a generator derived from the root ``seed`` and
        the block path (:func:`~repro.defects.sampling.block_seed_sequence`)
        -- results are therefore bit-identical for any block order, block
        subset, backend or worker count (defect simulation itself is
        deterministic, so no per-task seed material is needed).  Every
        returned
        :class:`CampaignResult` shares the single
        :class:`~repro.engine.CampaignReport` spanning the sweep.

        Parameters
        ----------
        seed:
            Root seed material (``int`` or ``SeedSequence``) of the
            per-block draws; defaults to 0.
        rng:
            Legacy alternative to ``seed``: one integer is drawn from the
            generator to form the root seed.  The per-block draws still
            derive from that root + block path, so they remain block-order
            invariant (unlike the historical behaviour of threading ``rng``
            itself through the sequential per-block loop).
        blocks / exhaustive:
            Optional restriction to a block subset / force exhaustive
            simulation of every block (the ``repro-campaign campaign``
            options).
        batch_size:
            Number of defects grouped into one engine task.  Batches never
            span blocks; within one block, batch ``[start, stop)`` carries
            the defects the unbatched graph would run at those indices, with
            its engine seed being the first child of
            :func:`~repro.defects.sampling.batch_seed_span` -- the ordered
            span of its children's seeds.  ``1`` reproduces the historical
            per-defect task graph exactly; any value produces bit-identical
            records, coverage and windows.
        ``backend``/``cache``/``progress`` follow the :meth:`run`
        conventions.
        """
        if seed is None:
            seed = int(rng.integers(0, 2 ** 63 - 1)) if rng is not None else 0
        selection = per_block_selection(
            self.universe, seed, n_samples_per_block,
            exhaustive_threshold=exhaustive_threshold, blocks=blocks,
            exhaustive=exhaustive)

        self.adc.clear_defects()
        adc_fingerprint = self._adc_fingerprint()
        tasks = TaskGraph()
        block_task_ids: Dict[str, List[str]] = {}
        for block_path, (plan, defects) in selection.items():
            task_ids = []
            if batch_size == 1:
                for index, defect in enumerate(defects):
                    task = Task(
                        task_id=f"block/{block_path}/{index}/"
                                f"{defect.defect_id}",
                        payload=defect,
                        spec=self._task_spec(defect, adc_fingerprint),
                        deterministic=True, group=block_path)
                    tasks.add(task)
                    task_ids.append(task.task_id)
            else:
                for start, stop in batch_spans(len(defects), batch_size):
                    members = list(defects[start:stop])
                    task = Task(
                        task_id=f"block-batch/{block_path}/{start}-{stop}",
                        payload=members,
                        spec=self._batch_task_spec(members, adc_fingerprint),
                        seed=batch_seed_span(seed, block_path, start,
                                             stop)[0],
                        deterministic=True, group=block_path,
                        weight=len(members))
                    tasks.add(task)
                    task_ids.append(task.task_id)
            block_task_ids[block_path] = task_ids

        run = self._dispatch(tasks, backend, cache, progress, telemetry)
        record_of = dict(zip(run.task_ids, run.results))
        results: Dict[str, CampaignResult] = {}
        for block_path, (plan, _) in selection.items():
            block_universe = self.universe.by_block(block_path)
            results[block_path] = CampaignResult(
                records=_flatten_records([record_of[tid]
                                          for tid in
                                          block_task_ids[block_path]]),
                universe=block_universe, plan=plan,
                stop_on_detection=self.stop_on_detection,
                engine_report=run.report)
        return results
