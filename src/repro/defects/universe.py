"""Defect-universe extraction.

Walks the structural hierarchy of the IP (every device of every A/M-S block)
and enumerates every defect of the standard model, weighted by the likelihood
model.  The resulting :class:`DefectUniverse` is the population over which
likelihood-weighted coverage is defined and from which LWRS draws its samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..circuit.errors import DefectError
from ..circuit.netlist import NetlistHierarchy
from .likelihood import LikelihoodModel
from .model import Defect, DefectKind, enumerate_device_defects


@dataclass
class DefectUniverse:
    """The complete set of modelled defects of an IP (or of one block)."""

    defects: List[Defect] = field(default_factory=list)

    # ----------------------------------------------------------------- sizing
    def __len__(self) -> int:
        return len(self.defects)

    def __iter__(self) -> Iterator[Defect]:
        return iter(self.defects)

    @property
    def total_likelihood(self) -> float:
        return float(sum(d.likelihood for d in self.defects))

    # -------------------------------------------------------------- selection
    def by_block(self, block_path: str) -> "DefectUniverse":
        """Sub-universe restricted to one block."""
        subset = [d for d in self.defects if d.block_path == block_path]
        return DefectUniverse(subset)

    def by_kind(self, kind: DefectKind) -> "DefectUniverse":
        return DefectUniverse([d for d in self.defects if d.kind == kind])

    def block_paths(self) -> List[str]:
        """Block paths present in the universe, in first-appearance order."""
        seen: Dict[str, None] = {}
        for defect in self.defects:
            seen.setdefault(defect.block_path, None)
        return list(seen.keys())

    def find(self, defect_id: str) -> Defect:
        for defect in self.defects:
            if defect.defect_id == defect_id:
                return defect
        raise DefectError(f"defect {defect_id!r} is not in the universe")

    # -------------------------------------------------------------- reporting
    def counts_by_block(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for defect in self.defects:
            counts[defect.block_path] = counts.get(defect.block_path, 0) + 1
        return counts

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for defect in self.defects:
            counts[defect.kind.value] = counts.get(defect.kind.value, 0) + 1
        return counts

    def likelihood_by_block(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for defect in self.defects:
            totals[defect.block_path] = totals.get(defect.block_path, 0.0) \
                + defect.likelihood
        return totals

    # --------------------------------------------------------------- sampling
    def probabilities(self) -> np.ndarray:
        """Per-defect selection probabilities proportional to likelihood."""
        if not self.defects:
            raise DefectError("cannot compute probabilities of an empty universe")
        weights = np.asarray([d.likelihood for d in self.defects], dtype=float)
        return weights / weights.sum()


def build_defect_universe(hierarchy: NetlistHierarchy,
                          likelihood_model: Optional[LikelihoodModel] = None,
                          blocks: Optional[Sequence[str]] = None
                          ) -> DefectUniverse:
    """Enumerate every defect of the hierarchy, with likelihoods.

    Parameters
    ----------
    hierarchy:
        The structural hierarchy built by
        :meth:`repro.adc.sar_adc.SarAdc.build_hierarchy`.
    likelihood_model:
        Likelihood model; defaults to the standard type-prior x area model.
    blocks:
        Optional restriction to a subset of block paths.
    """
    likelihood_model = likelihood_model or LikelihoodModel()
    wanted = set(blocks) if blocks is not None else None
    defects: List[Defect] = []
    for block_path, device in hierarchy.iter_devices(group="ams"):
        if wanted is not None and block_path not in wanted:
            continue
        for defect in enumerate_device_defects(block_path, device):
            defects.append(likelihood_model.reweight(defect, device))
    return DefectUniverse(defects)
