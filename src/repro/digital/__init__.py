"""Digital test substrate: gate-level models and standard digital BIST.

The paper splits the IP into A/M-S blocks (covered by SymBIST) and purely
digital blocks covered by "standard digital BIST" (scan + stuck-at ATPG /
logic BIST).  This package provides that substrate: gate-level netlists of
the SAR logic, SAR control and phase generator, the single-stuck-at fault
model, serial fault simulation, random/greedy ATPG, scan-chain insertion and
an LFSR/MISR logic BIST.
"""

from .atpg import AtpgResult, greedy_atpg, random_atpg
from .bist import LogicBist, LogicBistResult
from .blocks import (N_CONTROL_PULSES, SAR_BITS, build_phase_generator,
                     build_sar_control, build_sar_logic,
                     digital_ip_gate_count)
from .faults import (FaultSimulationResult, ScanPattern, StuckAtFault,
                     enumerate_stuck_at_faults, simulate_faults)
from .gates import FlipFlop, Gate, GateKind, evaluate_gate
from .lfsr import Lfsr, Misr, PRIMITIVE_TAPS
from .netlist import DigitalNetlist, PinOverride, StemOverride
from .scan import ScanChain, insert_scan

__all__ = [
    "AtpgResult", "DigitalNetlist", "FaultSimulationResult", "FlipFlop",
    "Gate", "GateKind", "Lfsr", "LogicBist", "LogicBistResult", "Misr",
    "N_CONTROL_PULSES", "PRIMITIVE_TAPS", "PinOverride", "SAR_BITS",
    "ScanChain", "ScanPattern", "StemOverride", "StuckAtFault",
    "build_phase_generator", "build_sar_control", "build_sar_logic",
    "digital_ip_gate_count", "enumerate_stuck_at_faults", "evaluate_gate",
    "greedy_atpg", "insert_scan", "random_atpg", "simulate_faults",
]
