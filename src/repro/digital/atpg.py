"""Automatic test-pattern generation for the scanned digital blocks.

Two generators are provided:

* :func:`random_atpg` -- pseudo-random patterns with fault simulation and
  fault dropping, which is how logic BIST reaches most faults;
* :func:`greedy_atpg` -- a compaction pass on top: starting from a random
  candidate pool it keeps only the patterns that detect at least one
  not-yet-detected fault, producing a compact deterministic-looking set.

Both operate on the scan view (primary inputs + scanned flip-flop state per
pattern) and report single-stuck-at fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..circuit.errors import DigitalTestError
from .faults import (FaultSimulationResult, ScanPattern, StuckAtFault,
                     enumerate_stuck_at_faults, simulate_faults,
                     _scan_response)
from .netlist import DigitalNetlist
from .scan import ScanChain


@dataclass
class AtpgResult:
    """Pattern set plus the fault coverage it achieves."""

    patterns: List[ScanPattern]
    fault_result: FaultSimulationResult

    @property
    def n_patterns(self) -> int:
        return len(self.patterns)

    @property
    def coverage(self) -> float:
        return self.fault_result.coverage

    @property
    def undetected(self) -> List[StuckAtFault]:
        return self.fault_result.undetected


def _random_pattern(netlist: DigitalNetlist, chain: ScanChain,
                    rng: np.random.Generator) -> ScanPattern:
    inputs = {net: int(rng.integers(0, 2)) for net in netlist.primary_inputs}
    scan_bits = [int(rng.integers(0, 2)) for _ in range(chain.length)]
    return chain.make_pattern(inputs, scan_bits)


def random_atpg(netlist: DigitalNetlist, chain: Optional[ScanChain] = None,
                n_patterns: int = 64,
                faults: Optional[Sequence[StuckAtFault]] = None,
                seed: int = 0) -> AtpgResult:
    """Generate ``n_patterns`` random scan patterns and fault-simulate them."""
    if n_patterns <= 0:
        raise DigitalTestError("n_patterns must be positive")
    chain = chain or ScanChain(netlist)
    rng = np.random.default_rng(seed)
    patterns = [_random_pattern(netlist, chain, rng) for _ in range(n_patterns)]
    fault_result = simulate_faults(netlist, patterns, faults)
    return AtpgResult(patterns=patterns, fault_result=fault_result)


def greedy_atpg(netlist: DigitalNetlist, chain: Optional[ScanChain] = None,
                candidate_patterns: int = 256,
                faults: Optional[Sequence[StuckAtFault]] = None,
                seed: int = 0) -> AtpgResult:
    """Greedy pattern compaction over a random candidate pool.

    Candidates are evaluated in order; a candidate is kept only if it detects
    at least one fault that no kept pattern detects yet.  The result is a much
    smaller pattern set with (by construction) the same coverage as the full
    candidate pool.
    """
    if candidate_patterns <= 0:
        raise DigitalTestError("candidate_patterns must be positive")
    chain = chain or ScanChain(netlist)
    rng = np.random.default_rng(seed)
    fault_list = list(faults) if faults is not None else \
        enumerate_stuck_at_faults(netlist)

    kept: List[ScanPattern] = []
    remaining = list(fault_list)
    detected_total: List[StuckAtFault] = []
    for _ in range(candidate_patterns):
        if not remaining:
            break
        pattern = _random_pattern(netlist, chain, rng)
        good = _scan_response(netlist, pattern)
        newly_detected = []
        still_remaining = []
        for fault in remaining:
            faulty = _scan_response(netlist, pattern, (fault.override(),))
            if faulty != good:
                newly_detected.append(fault)
            else:
                still_remaining.append(fault)
        if newly_detected:
            kept.append(pattern)
            detected_total.extend(newly_detected)
            remaining = still_remaining
    if not kept:
        # Nothing was detectable by the candidate pool; still return a result
        # with one pattern so downstream accounting has something to report.
        kept = [_random_pattern(netlist, chain, rng)]
    fault_result = simulate_faults(netlist, kept, fault_list)
    return AtpgResult(patterns=kept, fault_result=fault_result)
