"""Logic BIST: LFSR-driven scan patterns compacted into a MISR signature.

This is the "standard digital BIST" the paper assumes for the purely digital
blocks of the IP: an LFSR fills the scan chain and the primary inputs with
pseudo-random values, the circuit responses (primary outputs plus the captured
scan state) are folded into a MISR, and the final signature is compared
against the signature of the defect-free circuit.  The fault coverage of the
pattern set is measured with the stuck-at fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.errors import DigitalTestError
from ..circuit.units import F_CLK
from .faults import (ScanPattern, StuckAtFault, enumerate_stuck_at_faults,
                     simulate_faults, _scan_response)
from .lfsr import Lfsr, Misr
from .netlist import DigitalNetlist
from .scan import ScanChain, insert_scan


@dataclass
class LogicBistResult:
    """Outcome of a logic-BIST session on one digital block."""

    block_name: str
    n_patterns: int
    golden_signature: int
    fault_coverage: float
    n_faults: int
    n_detected: int
    undetected: List[StuckAtFault]
    test_cycles: int

    @property
    def test_time(self) -> float:
        """Test time at the IP clock frequency."""
        return self.test_cycles / F_CLK


class LogicBist:
    """LFSR/MISR logic BIST wrapper around one scanned digital block."""

    def __init__(self, netlist: DigitalNetlist,
                 chain: Optional[ScanChain] = None,
                 lfsr_width: int = 16, misr_width: int = 16,
                 lfsr_seed: int = 0xACE1) -> None:
        self.netlist = netlist
        self.chain = chain or insert_scan(netlist)
        self.lfsr_width = lfsr_width
        self.misr_width = misr_width
        self.lfsr_seed = lfsr_seed

    # --------------------------------------------------------------- patterns
    def generate_patterns(self, n_patterns: int) -> List[ScanPattern]:
        """Expand the LFSR stream into scan patterns."""
        if n_patterns <= 0:
            raise DigitalTestError("n_patterns must be positive")
        lfsr = Lfsr(width=self.lfsr_width, seed=self.lfsr_seed)
        patterns = []
        n_inputs = len(self.netlist.primary_inputs)
        for _ in range(n_patterns):
            bits = lfsr.next_bits(n_inputs + self.chain.length)
            inputs = {net: bits[i]
                      for i, net in enumerate(self.netlist.primary_inputs)}
            scan_bits = bits[n_inputs:]
            patterns.append(self.chain.make_pattern(inputs, scan_bits))
        return patterns

    # -------------------------------------------------------------- signature
    def signature_of(self, patterns: Sequence[ScanPattern],
                     overrides: Sequence[object] = ()) -> int:
        """MISR signature of the circuit responses to a pattern set."""
        misr = Misr(width=self.misr_width)
        for pattern in patterns:
            outputs, captured = _scan_response(self.netlist, pattern, overrides)
            response = list(outputs) + list(captured)
            # Fold the response in MISR-width slices.
            for start in range(0, len(response), self.misr_width):
                misr.compact(response[start:start + self.misr_width])
        return misr.signature

    # -------------------------------------------------------------------- run
    def run(self, n_patterns: int = 64,
            faults: Optional[Sequence[StuckAtFault]] = None) -> LogicBistResult:
        """Run the BIST session: golden signature + stuck-at fault coverage."""
        patterns = self.generate_patterns(n_patterns)
        golden = self.signature_of(patterns)
        fault_list = list(faults) if faults is not None else \
            enumerate_stuck_at_faults(self.netlist)
        sim = simulate_faults(self.netlist, patterns, fault_list)
        return LogicBistResult(
            block_name=self.netlist.name,
            n_patterns=n_patterns,
            golden_signature=golden,
            fault_coverage=sim.coverage,
            n_faults=sim.n_faults,
            n_detected=len(sim.detected),
            undetected=sim.undetected,
            test_cycles=self.chain.test_cycles(n_patterns))

    def detects_fault(self, fault: StuckAtFault, n_patterns: int = 64) -> bool:
        """Signature-based detection check for one fault."""
        patterns = self.generate_patterns(n_patterns)
        golden = self.signature_of(patterns)
        faulty = self.signature_of(patterns, (fault.override(),))
        return faulty != golden
