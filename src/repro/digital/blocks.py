"""Gate-level models of the purely digital blocks of the SAR ADC IP.

Three builders are provided, one per block named in the paper (Section III):

* :func:`build_sar_logic` -- the successive-approximation register: a one-hot
  sequence register marches from the MSB to the LSB, the bit under test is
  ORed into the trial code, and the comparator decision is captured into the
  corresponding result flop;
* :func:`build_sar_control` -- the 12-pulse one-hot ring counter generating
  ``P<0:11>``;
* :func:`build_phase_generator` -- decodes the pulses into the sampling /
  conversion / capture phases.

These netlists are the device under test of the digital-BIST experiment (E9)
and also document how large the digital part of the IP is for the area model.
"""

from __future__ import annotations

from .gates import GateKind
from .netlist import DigitalNetlist

#: Number of result bits of the SAR logic.
SAR_BITS = 10
#: Number of control pulses of the SAR control block.
N_CONTROL_PULSES = 12


def build_sar_logic(n_bits: int = SAR_BITS) -> DigitalNetlist:
    """Gate-level successive-approximation register.

    Interface
    ---------
    inputs:
        ``start`` (begin a conversion: loads the MSB marker) and ``comp``
        (comparator decision for the bit under test).
    outputs:
        ``trial<i>`` (the code driven to the DAC during the conversion) and
        ``b<i>`` (the accumulated result).
    """
    net = DigitalNetlist("sar_logic")
    net.add_input("start")
    net.add_input("comp")

    for i in reversed(range(n_bits)):
        seq_q = f"seq{i}_q"
        bit_q = f"b{i}_q"
        # Sequence register: one-hot marker of the bit under test.  The MSB
        # stage reloads from `start`, the others shift from the stage above.
        if i == n_bits - 1:
            net.add_flop(f"seq{i}", d="start", q=seq_q)
        else:
            net.add_flop(f"seq{i}", d=f"seq{i + 1}_q", q=seq_q)

        # Result register: capture the comparator decision while this bit is
        # under test, hold the stored value otherwise, clear on start.
        net.add_gate(f"g_keep{i}", GateKind.AND, [seq_q, "comp"],
                     f"keep{i}")
        net.add_gate(f"g_nsel{i}", GateKind.NOT, [seq_q], f"nsel{i}")
        net.add_gate(f"g_hold{i}", GateKind.AND, [bit_q, f"nsel{i}"],
                     f"hold{i}")
        net.add_gate(f"g_next{i}", GateKind.OR, [f"keep{i}", f"hold{i}"],
                     f"bnext{i}")
        net.add_gate(f"g_nstart{i}", GateKind.NOT, ["start"], f"nstart{i}")
        net.add_gate(f"g_bd{i}", GateKind.AND, [f"bnext{i}", f"nstart{i}"],
                     f"bd{i}")
        net.add_flop(f"b{i}", d=f"bd{i}", q=bit_q)

        # Trial code: the stored bit ORed with the bit-under-test marker.
        net.add_gate(f"g_trial{i}", GateKind.OR, [bit_q, seq_q], f"trial{i}")
        net.add_output(f"trial{i}")
        net.add_output(bit_q)
    return net


def build_sar_control(n_pulses: int = N_CONTROL_PULSES) -> DigitalNetlist:
    """Gate-level one-hot ring counter producing the pulses ``P<0:11>``.

    The ring self-initialises: pulse 0 is reloaded when no other pulse is
    active (NOR of all other stages), which also makes the counter recover
    from an illegal all-zero state after reset.
    """
    net = DigitalNetlist("sar_control")
    net.add_input("enable")

    # p0 reload condition: none of p0..p(n-2) active (i.e. the token is in the
    # last stage or lost).  Built as an OR tree followed by an inverter so
    # that every gate stays within the fan-in limit.
    others = [f"p{i}_q" for i in range(n_pulses - 1)]
    level = 0
    while len(others) > 1:
        merged = []
        for pair_index in range(0, len(others) - 1, 2):
            out = f"any{level}_{pair_index // 2}"
            net.add_gate(f"g_any{level}_{pair_index // 2}", GateKind.OR,
                         [others[pair_index], others[pair_index + 1]], out)
            merged.append(out)
        if len(others) % 2 == 1:
            merged.append(others[-1])
        others = merged
        level += 1
    net.add_gate("g_none", GateKind.NOT, [others[0]], "token_missing")
    net.add_gate("g_wrap", GateKind.OR, [f"p{n_pulses - 1}_q", "token_missing"],
                 "wrap")
    net.add_gate("g_p0d", GateKind.AND, ["wrap", "enable"], "p0_d")
    net.add_flop("p0", d="p0_d", q="p0_q", reset_value=1)
    net.add_output("p0_q")
    for i in range(1, n_pulses):
        net.add_gate(f"g_p{i}d", GateKind.AND, [f"p{i - 1}_q", "enable"],
                     f"p{i}_d")
        net.add_flop(f"p{i}", d=f"p{i}_d", q=f"p{i}_q")
        net.add_output(f"p{i}_q")
    return net


def build_phase_generator(n_pulses: int = N_CONTROL_PULSES) -> DigitalNetlist:
    """Gate-level phase decoder: sampling / conversion / capture phases.

    ``sample`` is active during pulse 0, ``capture`` during the last pulse and
    ``convert`` during every other pulse.  ``track`` gates the input sampling
    switches (sample AND enable).
    """
    net = DigitalNetlist("phase_generator")
    net.add_input("enable")
    for i in range(n_pulses):
        net.add_input(f"p{i}")

    net.add_gate("g_sample", GateKind.BUF, ["p0"], "sample")
    net.add_output("sample")
    net.add_gate("g_capture", GateKind.BUF, [f"p{n_pulses - 1}"], "capture")
    net.add_output("capture")

    # OR-tree over p1..p(n-2) for the conversion phase.
    convert_inputs = [f"p{i}" for i in range(1, n_pulses - 1)]
    previous = convert_inputs[0]
    for index, net_name in enumerate(convert_inputs[1:], start=1):
        out = f"cv{index}"
        net.add_gate(f"g_cv{index}", GateKind.OR, [previous, net_name], out)
        previous = out
    net.add_gate("g_convert", GateKind.AND, [previous, "enable"], "convert")
    net.add_output("convert")

    net.add_gate("g_track", GateKind.AND, ["sample", "enable"], "track")
    net.add_output("track")
    # Comparator strobe: conversion phase and not sampling.
    net.add_gate("g_nsample", GateKind.NOT, ["sample"], "nsample")
    net.add_gate("g_strobe", GateKind.AND, ["convert", "nsample"], "strobe")
    net.add_output("strobe")
    return net


def digital_ip_gate_count() -> int:
    """Total gate count of the digital part of the IP (area model input)."""
    total = 0
    for builder in (build_sar_logic, build_sar_control, build_phase_generator):
        netlist = builder()
        total += netlist.n_gates + 4 * netlist.n_flops  # a flop ~ 4 gates
    return total
