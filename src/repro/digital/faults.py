"""Stuck-at fault model and serial fault simulation for gate-level netlists.

Faults are enumerated on every net stem (output of a gate, flip-flop output,
primary input) and on every gate input pin, each stuck-at-0 and stuck-at-1 --
the classic single-stuck-at model used by the "standard digital BIST" the
paper assumes for the purely digital blocks.

Fault simulation is serial (one fault at a time) over the *scan view* of the
netlist: each pattern supplies both the primary inputs and the flip-flop
states (as a scan load) and observes both the primary outputs and the next
flip-flop states (as a scan unload), which is how scan-based ATPG observes a
sequential block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.errors import DigitalTestError
from .netlist import DigitalNetlist, PinOverride, StemOverride


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault.

    ``pin`` is ``None`` for a stem (net) fault, or ``(gate_name, pin_index)``
    for a gate input-pin fault.
    """

    net: str
    stuck_value: int
    pin: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        if self.stuck_value not in (0, 1):
            raise DigitalTestError("stuck value must be 0 or 1")

    @property
    def fault_id(self) -> str:
        location = self.net if self.pin is None else \
            f"{self.pin[0]}.in{self.pin[1]}({self.net})"
        return f"{location}/sa{self.stuck_value}"

    def override(self):
        """The evaluation override implementing this fault."""
        if self.pin is None:
            return StemOverride(net=self.net, value=self.stuck_value)
        return PinOverride(gate_name=self.pin[0], pin_index=self.pin[1],
                           value=self.stuck_value)


def enumerate_stuck_at_faults(netlist: DigitalNetlist,
                              include_pin_faults: bool = True
                              ) -> List[StuckAtFault]:
    """All single stuck-at faults of a netlist."""
    faults: List[StuckAtFault] = []
    for net in netlist.nets():
        for value in (0, 1):
            faults.append(StuckAtFault(net=net, stuck_value=value))
    if include_pin_faults:
        for gate in netlist.gates:
            for index, net in enumerate(gate.inputs):
                for value in (0, 1):
                    faults.append(StuckAtFault(net=net, stuck_value=value,
                                               pin=(gate.name, index)))
    return faults


@dataclass(frozen=True)
class ScanPattern:
    """One scan test pattern: primary-input values plus the scanned-in state."""

    inputs: Mapping[str, int]
    state: Mapping[str, int]


@dataclass
class FaultSimulationResult:
    """Outcome of simulating a pattern set against a fault list."""

    detected: Dict[str, int] = field(default_factory=dict)  # fault_id -> pattern
    undetected: List[StuckAtFault] = field(default_factory=list)
    n_patterns: int = 0

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage(self) -> float:
        if self.n_faults == 0:
            raise DigitalTestError("no faults were simulated")
        return len(self.detected) / self.n_faults


def _scan_response(netlist: DigitalNetlist, pattern: ScanPattern,
                   overrides: Sequence[object] = ()) -> Tuple[Tuple[int, ...],
                                                              Tuple[int, ...]]:
    """Primary outputs and captured next state for one scan pattern."""
    outputs, next_state = netlist.step(pattern.inputs, pattern.state, overrides)
    out_vec = tuple(outputs[net] for net in netlist.primary_outputs)
    state_vec = tuple(next_state[f.q] for f in netlist.flops)
    return out_vec, state_vec


def simulate_faults(netlist: DigitalNetlist, patterns: Sequence[ScanPattern],
                    faults: Optional[Sequence[StuckAtFault]] = None,
                    drop_detected: bool = True) -> FaultSimulationResult:
    """Serial stuck-at fault simulation with optional fault dropping."""
    if not patterns:
        raise DigitalTestError("at least one pattern is required")
    fault_list = list(faults) if faults is not None else \
        enumerate_stuck_at_faults(netlist)

    good_responses = [_scan_response(netlist, p) for p in patterns]

    result = FaultSimulationResult(n_patterns=len(patterns))
    remaining = list(fault_list)
    for fault in remaining:
        override = fault.override()
        detected_by = None
        for index, pattern in enumerate(patterns):
            faulty = _scan_response(netlist, pattern, (override,))
            if faulty != good_responses[index]:
                detected_by = index
                break
            if not drop_detected:
                continue
        if detected_by is not None:
            result.detected[fault.fault_id] = detected_by
        else:
            result.undetected.append(fault)
    return result
