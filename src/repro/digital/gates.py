"""Gate-level primitives for the purely digital blocks of the IP.

The paper assumes the purely digital blocks (SAR control, phase generator,
SAR logic) are tested "with standard digital BIST, i.e. with scan insertion
and a combination of stuck-at, bridging, Iddq, and transitional ATPG"
(Section II).  This package provides that substrate: combinational gates and
D flip-flops, netlists, stuck-at fault modelling, fault simulation, ATPG,
scan insertion and an LFSR/MISR logic BIST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence, Tuple

from ..circuit.errors import DigitalTestError


class GateKind(str, Enum):
    """Supported combinational gate functions."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"

    @property
    def min_inputs(self) -> int:
        return 1 if self in (GateKind.NOT, GateKind.BUF) else 2

    @property
    def max_inputs(self) -> int:
        return 1 if self in (GateKind.NOT, GateKind.BUF) else 8


def evaluate_gate(kind: GateKind, inputs: Sequence[int]) -> int:
    """Evaluate one gate on binary inputs (0/1)."""
    if any(v not in (0, 1) for v in inputs):
        raise DigitalTestError(f"gate inputs must be 0/1, got {list(inputs)}")
    if kind in (GateKind.NOT, GateKind.BUF):
        if len(inputs) != 1:
            raise DigitalTestError(f"{kind.value} gate takes exactly one input")
        value = inputs[0]
        return value if kind is GateKind.BUF else 1 - value
    if len(inputs) < 2:
        raise DigitalTestError(f"{kind.value} gate needs at least two inputs")
    if kind is GateKind.AND:
        return int(all(inputs))
    if kind is GateKind.OR:
        return int(any(inputs))
    if kind is GateKind.NAND:
        return int(not all(inputs))
    if kind is GateKind.NOR:
        return int(not any(inputs))
    parity = 0
    for value in inputs:
        parity ^= value
    if kind is GateKind.XOR:
        return parity
    return 1 - parity  # XNOR


@dataclass(frozen=True)
class Gate:
    """One combinational gate instance."""

    name: str
    kind: GateKind
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        n = len(self.inputs)
        if not self.kind.min_inputs <= n <= self.kind.max_inputs:
            raise DigitalTestError(
                f"gate {self.name!r} ({self.kind.value}): {n} inputs is outside "
                f"[{self.kind.min_inputs}, {self.kind.max_inputs}]")
        if not self.output:
            raise DigitalTestError(f"gate {self.name!r} has no output net")


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop (the sequential element converted to a scan cell)."""

    name: str
    d: str
    q: str
    reset_value: int = 0

    def __post_init__(self) -> None:
        if self.reset_value not in (0, 1):
            raise DigitalTestError(
                f"flip-flop {self.name!r}: reset value must be 0/1")
