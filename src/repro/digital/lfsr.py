"""Linear-feedback shift registers and MISR signature compaction.

The logic-BIST flavour assumed by the paper ("standard digital BIST") drives
scan chains from a pseudo-random pattern generator (an LFSR) and compacts the
responses into a multiple-input signature register (MISR).  Both primitives
are implemented here in their Fibonacci form with a table of primitive
polynomial taps for common widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..circuit.errors import DigitalTestError

#: Primitive polynomial taps (1-based bit positions, LSB = 1) per width.
PRIMITIVE_TAPS: Dict[int, Tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


def _taps_for_width(width: int) -> Tuple[int, ...]:
    if width in PRIMITIVE_TAPS:
        return PRIMITIVE_TAPS[width]
    raise DigitalTestError(
        f"no primitive polynomial tabulated for width {width}; "
        f"available widths: {sorted(PRIMITIVE_TAPS)}")


@dataclass
class Lfsr:
    """Fibonacci LFSR pseudo-random pattern generator."""

    width: int
    seed: int = 1
    taps: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise DigitalTestError("LFSR width must be positive")
        if not self.taps:
            self.taps = _taps_for_width(self.width)
        mask = (1 << self.width) - 1
        self.state = self.seed & mask
        if self.state == 0:
            raise DigitalTestError("LFSR seed must be non-zero")

    @property
    def period(self) -> int:
        """Maximal-length period of the generator."""
        return (1 << self.width) - 1

    def step(self) -> int:
        """Advance one bit and return the new serial output bit."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        if self.state == 0:  # pragma: no cover - cannot happen with primitive taps
            self.state = 1
        return self.state & 1

    def next_bits(self, n_bits: int) -> List[int]:
        """The next ``n_bits`` serial output bits."""
        if n_bits < 0:
            raise DigitalTestError("n_bits must be non-negative")
        return [self.step() for _ in range(n_bits)]

    def next_pattern(self, n_bits: int) -> List[int]:
        """Alias of :meth:`next_bits`, named for pattern generation."""
        return self.next_bits(n_bits)


@dataclass
class Misr:
    """Multiple-input signature register (parallel-input LFSR compactor)."""

    width: int
    taps: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise DigitalTestError("MISR width must be positive")
        if not self.taps:
            self.taps = _taps_for_width(self.width)
        self.state = 0

    def reset(self) -> None:
        self.state = 0

    def compact(self, bits: Sequence[int]) -> int:
        """Fold one response slice (up to ``width`` bits) into the signature."""
        if len(bits) > self.width:
            raise DigitalTestError(
                f"MISR of width {self.width} cannot absorb {len(bits)} bits "
                "in one cycle")
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        word = 0
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise DigitalTestError("response bits must be 0/1")
            word |= bit << index
        self.state ^= word
        return self.state

    @property
    def signature(self) -> int:
        return self.state
