"""Gate-level netlists with combinational and sequential evaluation.

A :class:`DigitalNetlist` holds primary inputs/outputs, combinational gates
and D flip-flops.  Evaluation supports fault overrides (used by the stuck-at
fault simulator): a *stem* override forces the value of a net after its driver
has been evaluated, a *pin* override forces the value seen by one specific
gate input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..circuit.errors import DigitalTestError
from .gates import FlipFlop, Gate, GateKind, evaluate_gate


@dataclass(frozen=True)
class PinOverride:
    """Force the value seen by input pin ``pin_index`` of gate ``gate_name``."""

    gate_name: str
    pin_index: int
    value: int


@dataclass(frozen=True)
class StemOverride:
    """Force the value of net ``net`` regardless of its driver."""

    net: str
    value: int


FaultOverride = object  # PinOverride | StemOverride (kept simple for py3.9)


class DigitalNetlist:
    """A named gate-level netlist."""

    def __init__(self, name: str) -> None:
        if not name:
            raise DigitalTestError("netlist name must be non-empty")
        self.name = name
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._flops: Dict[str, FlipFlop] = {}
        self._order: Optional[List[str]] = None

    # ------------------------------------------------------------------ build
    def add_input(self, net: str) -> str:
        if net in self.primary_inputs:
            raise DigitalTestError(f"duplicate primary input {net!r}")
        self.primary_inputs.append(net)
        self._order = None
        return net

    def add_output(self, net: str) -> str:
        if net in self.primary_outputs:
            raise DigitalTestError(f"duplicate primary output {net!r}")
        self.primary_outputs.append(net)
        return net

    def add_gate(self, name: str, kind: GateKind, inputs: Sequence[str],
                 output: str) -> Gate:
        if name in self._gates or name in self._flops:
            raise DigitalTestError(f"duplicate element name {name!r}")
        drivers = {g.output for g in self._gates.values()}
        if output in drivers:
            raise DigitalTestError(f"net {output!r} already has a driver")
        gate = Gate(name=name, kind=kind, inputs=tuple(inputs), output=output)
        self._gates[name] = gate
        self._order = None
        return gate

    def add_flop(self, name: str, d: str, q: str,
                 reset_value: int = 0) -> FlipFlop:
        if name in self._gates or name in self._flops:
            raise DigitalTestError(f"duplicate element name {name!r}")
        flop = FlipFlop(name=name, d=d, q=q, reset_value=reset_value)
        self._flops[name] = flop
        self._order = None
        return flop

    # ----------------------------------------------------------------- access
    @property
    def gates(self) -> List[Gate]:
        return list(self._gates.values())

    @property
    def flops(self) -> List[FlipFlop]:
        return list(self._flops.values())

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError as exc:
            raise DigitalTestError(f"no gate named {name!r}") from exc

    @property
    def n_gates(self) -> int:
        return len(self._gates)

    @property
    def n_flops(self) -> int:
        return len(self._flops)

    def nets(self) -> List[str]:
        """Every net referenced in the netlist."""
        nets = set(self.primary_inputs) | set(self.primary_outputs)
        for gate in self._gates.values():
            nets.update(gate.inputs)
            nets.add(gate.output)
        for flop in self._flops.values():
            nets.add(flop.d)
            nets.add(flop.q)
        return sorted(nets)

    # ------------------------------------------------------------- evaluation
    def _topological_order(self) -> List[str]:
        """Topological order of the combinational gates.

        Flip-flop outputs and primary inputs are sources; an unresolvable
        gate indicates a combinational loop.
        """
        if self._order is not None:
            return self._order
        known = set(self.primary_inputs) | {f.q for f in self._flops.values()}
        remaining = dict(self._gates)
        order: List[str] = []
        while remaining:
            ready = [name for name, gate in remaining.items()
                     if all(net in known for net in gate.inputs)]
            if not ready:
                unresolved = sorted(remaining)
                raise DigitalTestError(
                    f"netlist {self.name!r} has a combinational loop or "
                    f"undriven nets involving gates {unresolved[:5]}")
            for name in ready:
                order.append(name)
                known.add(remaining[name].output)
                del remaining[name]
        self._order = order
        return order

    def reset_state(self) -> Dict[str, int]:
        """State (flop q values) after reset."""
        return {f.q: f.reset_value for f in self._flops.values()}

    def evaluate(self, inputs: Mapping[str, int],
                 state: Optional[Mapping[str, int]] = None,
                 overrides: Sequence[FaultOverride] = ()) -> Dict[str, int]:
        """Evaluate the combinational logic and return every net value.

        ``inputs`` must provide every primary input; ``state`` provides the
        flip-flop outputs (defaults to the reset state).
        """
        state = dict(state) if state is not None else self.reset_state()
        values: Dict[str, int] = {}
        for net in self.primary_inputs:
            if net not in inputs:
                raise DigitalTestError(f"missing value for primary input {net!r}")
            values[net] = int(inputs[net])
        values.update(state)

        stem_overrides = {o.net: o.value for o in overrides
                          if isinstance(o, StemOverride)}
        pin_overrides = {(o.gate_name, o.pin_index): o.value for o in overrides
                         if isinstance(o, PinOverride)}
        # Stem overrides on inputs / flop outputs apply immediately.
        for net, value in stem_overrides.items():
            if net in values:
                values[net] = value

        for name in self._topological_order():
            gate = self._gates[name]
            in_values = []
            for index, net in enumerate(gate.inputs):
                if net not in values:
                    raise DigitalTestError(
                        f"gate {name!r}: net {net!r} is undriven")
                value = values[net]
                if (name, index) in pin_overrides:
                    value = pin_overrides[(name, index)]
                in_values.append(value)
            out = evaluate_gate(gate.kind, in_values)
            if gate.output in stem_overrides:
                out = stem_overrides[gate.output]
            values[gate.output] = out
        return values

    def outputs_of(self, values: Mapping[str, int]) -> Dict[str, int]:
        """Extract the primary-output values from a full evaluation."""
        missing = [net for net in self.primary_outputs if net not in values]
        if missing:
            raise DigitalTestError(f"evaluation is missing outputs {missing}")
        return {net: values[net] for net in self.primary_outputs}

    def step(self, inputs: Mapping[str, int],
             state: Optional[Mapping[str, int]] = None,
             overrides: Sequence[FaultOverride] = ()) -> Tuple[Dict[str, int],
                                                               Dict[str, int]]:
        """One clock cycle: evaluate, then capture flip-flop next states.

        Returns ``(primary_outputs, next_state)``.
        """
        values = self.evaluate(inputs, state, overrides)
        next_state: Dict[str, int] = {}
        for flop in self._flops.values():
            if flop.d not in values:
                raise DigitalTestError(
                    f"flip-flop {flop.name!r}: data net {flop.d!r} is undriven")
            next_state[flop.q] = values[flop.d]
        return self.outputs_of(values), next_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DigitalNetlist({self.name!r}, {self.n_gates} gates, "
                f"{self.n_flops} flops)")
