"""Scan-chain insertion model.

Scan insertion replaces every flip-flop with a scan cell and stitches the
cells into a chain.  For test-generation purposes the important consequence is
that the flip-flop states become controllable (scan load) and observable
(scan unload), so the sequential netlist can be tested as a combinational
problem.  :class:`ScanChain` models the chain itself (ordering, load/unload
shifting, test-time accounting) on top of the
:class:`~repro.digital.netlist.DigitalNetlist`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..circuit.errors import DigitalTestError
from .faults import ScanPattern
from .netlist import DigitalNetlist


@dataclass
class ScanChain:
    """A single scan chain covering every flip-flop of a netlist."""

    netlist: DigitalNetlist
    order: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        flop_qs = [f.q for f in self.netlist.flops]
        if not self.order:
            self.order = flop_qs
        if sorted(self.order) != sorted(flop_qs):
            raise DigitalTestError(
                "scan order must contain every flip-flop exactly once")

    # ------------------------------------------------------------------ sizes
    @property
    def length(self) -> int:
        return len(self.order)

    def cycles_per_pattern(self) -> int:
        """Scan-load + capture + (overlapped) scan-unload cycles per pattern."""
        return self.length + 1

    def test_cycles(self, n_patterns: int) -> int:
        """Total test cycles for ``n_patterns`` (final unload included)."""
        if n_patterns <= 0:
            raise DigitalTestError("n_patterns must be positive")
        return n_patterns * self.cycles_per_pattern() + self.length

    # ------------------------------------------------------------------ shift
    def load(self, bits: Sequence[int]) -> Dict[str, int]:
        """Map a serial bit vector onto the flip-flop states (scan load)."""
        if len(bits) != self.length:
            raise DigitalTestError(
                f"scan load needs {self.length} bits, got {len(bits)}")
        if any(b not in (0, 1) for b in bits):
            raise DigitalTestError("scan bits must be 0/1")
        return {q: int(b) for q, b in zip(self.order, bits)}

    def unload(self, state: Mapping[str, int]) -> List[int]:
        """Serialise the flip-flop states into the scan-out order."""
        missing = [q for q in self.order if q not in state]
        if missing:
            raise DigitalTestError(f"state is missing scan cells {missing}")
        return [int(state[q]) for q in self.order]

    # --------------------------------------------------------------- patterns
    def make_pattern(self, inputs: Mapping[str, int],
                     scan_bits: Sequence[int]) -> ScanPattern:
        """Build a :class:`ScanPattern` from primary inputs and scan-in bits."""
        return ScanPattern(inputs=dict(inputs), state=self.load(scan_bits))


def insert_scan(netlist: DigitalNetlist) -> ScanChain:
    """Insert a single scan chain covering every flip-flop of the netlist.

    A purely combinational block yields a zero-length chain: patterns then
    consist of primary-input values only, which is the correct degenerate
    case for blocks like the phase generator.
    """
    return ScanChain(netlist=netlist)
