"""Parametric device-under-test library.

The DUT of the reproduction -- the paper's 65 nm 10-bit SAR ADC -- becomes
declarative data here: :class:`DutSpec` is a typed, validated, serializable
description of one ADC variant, and every block constructor in
:mod:`repro.adc` accepts one.  ``DutSpec()`` reproduces the paper's device
bit-identically; studies sweep variants (resolutions, supply corners,
per-block parameter shifts) by overriding fields declaratively.

See :mod:`repro.dut.params` for the typed-parameter machinery
(``p_field(units=..., soft_set=Range(...), tolerance_guess=...)``) and
``docs/studies.md`` for the study-level ``[dut]`` / ``[[variants]]``
sections.
"""

from ..circuit.errors import DutSpecError
from .params import ParamInfo, Range, p_field
from .spec import DutSpec, default_dut

__all__ = ["DutSpec", "DutSpecError", "ParamInfo", "Range", "default_dut",
           "p_field"]
