"""Typed component parameters for declarative DUT specifications.

The device-under-test spec (:mod:`repro.dut.spec`) declares every electrical
quantity through :func:`p_field` -- a dataclass field that carries its unit,
a soft validity range and a tolerance guess next to the default value, after
faebryk's ``p_field(units=..., soft_set=Range(...), tolerance_guess=...)``
idiom.  Validation happens at construction: a value outside its range, or a
unit-suffixed string with the wrong unit, raises
:class:`~repro.circuit.errors.DutSpecError` with a message naming the field,
the expected unit and the accepted range.

Values may be given as bare numbers (SI units assumed) or as strings with
the unit spelled out (``"1.2 V"``, ``"156e6 Hz"``); the string form is
checked against the field's declared unit so a spec cannot silently mix
volts and amperes.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import Any, Optional

from ..circuit.errors import DutSpecError


@dataclasses.dataclass(frozen=True)
class Range:
    """Closed numeric interval ``[low, high]`` used as a soft validity set."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.high):
            raise DutSpecError(
                f"Range lower bound {self.low!r} exceeds upper bound "
                f"{self.high!r}")

    def __contains__(self, value: Any) -> bool:
        try:
            return self.low <= float(value) <= self.high
        except (TypeError, ValueError):
            return False

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


@dataclasses.dataclass(frozen=True)
class ParamInfo:
    """Declaration metadata of one typed DUT parameter."""

    units: str = ""
    soft_set: Optional[Range] = None
    tolerance_guess: Optional[float] = None
    doc: str = ""
    integer: bool = False
    nullable: bool = False


#: Metadata key under which :func:`p_field` stores its :class:`ParamInfo`.
PARAM_METADATA_KEY = "dut_param"


def p_field(default: Any, units: str = "",
            soft_set: Optional[Range] = None,
            tolerance_guess: Optional[float] = None,
            doc: str = "", integer: bool = False,
            nullable: bool = False) -> Any:
    """A dataclass field declaring a typed, unit-carrying DUT parameter."""
    info = ParamInfo(units=units, soft_set=soft_set,
                     tolerance_guess=tolerance_guess, doc=doc,
                     integer=integer, nullable=nullable)
    return dataclasses.field(default=default,
                             metadata={PARAM_METADATA_KEY: info})


_UNIT_STRING = re.compile(
    r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([^\s]*)\s*$")


def coerce_value(name: str, value: Any, info: ParamInfo) -> Any:
    """Validate ``value`` against a parameter declaration; returns the
    normalized (numeric) value or raises an actionable
    :class:`DutSpecError`."""
    if value is None:
        if info.nullable:
            return None
        raise DutSpecError(f"dut.{name} must not be null")
    if isinstance(value, str):
        match = _UNIT_STRING.match(value)
        if match is None:
            raise DutSpecError(
                f"dut.{name} got the unparseable value {value!r}; write a "
                f"number, optionally with its unit (e.g. "
                f"\"1.2 {info.units or 'V'}\")")
        magnitude, unit = match.group(1), match.group(2)
        if unit and unit != info.units:
            raise DutSpecError(
                f"dut.{name} is specified in {info.units!r}, got {value!r}; "
                f"write e.g. \"{magnitude} {info.units}\" or a bare number "
                f"(SI units assumed)")
        value = float(magnitude)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DutSpecError(
            f"dut.{name} must be a number"
            + (f" in {info.units}" if info.units else "")
            + f", got {value!r}")
    if not math.isfinite(float(value)):
        raise DutSpecError(f"dut.{name} must be finite, got {value!r}")
    if info.integer:
        if float(value) != int(value):
            raise DutSpecError(
                f"dut.{name} must be an integer, got {value!r}")
        value = int(value)
    else:
        value = float(value)
    if info.soft_set is not None and value not in info.soft_set:
        unit = f" {info.units}" if info.units else ""
        raise DutSpecError(
            f"dut.{name} = {value!r} is outside the supported range "
            f"{info.soft_set}{unit}")
    return value
