"""Declarative device-under-test specification.

The paper evaluates SymBIST on exactly one 65 nm 10-bit SAR ADC; this module
makes that device data instead of code.  A :class:`DutSpec` is a frozen,
fully-typed description of one ADC variant -- resolution, supply rails,
common-mode voltages, bias, unit components, per-block behavioral parameter
overrides and process-variation sigmas -- with a canonical TOML/JSON
round-trip and a stable content :meth:`~DutSpec.fingerprint` that feeds
cache keys and warehouse rows.

``DutSpec()`` (all defaults) describes the paper's ADC exactly: every
default below equals the module constant it replaces, so threading the spec
through the model layer is bit-identical to the historical constant reads.
Studies sweep variants by overriding fields (``[dut]`` / ``[[variants]]``
sections of a study spec, or ``--set dut.resolution_bits=8`` from the CLI).

Derived geometry is exposed as properties: an ``n``-bit converter splits its
code between two ``n/2``-bit sub-DACs (hence ``resolution_bits`` must be
even), giving ``2**(n/2) + 1`` reference-ladder taps, a
``2**(n/2)``-code BIST counter and a mid-scale code of
``2**(n/2 - 1) * (2**(n/2) + 1)`` (528 for the paper's 10-bit device).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, Mapping, Optional

from ..circuit.errors import DutSpecError
from ..circuit.variation import VariationSpec
from .params import PARAM_METADATA_KEY, ParamInfo, Range, coerce_value, p_field

#: VariationSpec field names accepted under ``[dut.variation]``.
_VARIATION_FIELDS = tuple(
    f.name for f in dataclasses.fields(VariationSpec))


@dataclasses.dataclass(frozen=True)
class DutSpec:
    """Typed, serializable description of one SAR ADC variant.

    Every electrical field is declared through
    :func:`~repro.dut.params.p_field` with its unit, validity range and
    tolerance guess; construction validates all of them and raises
    :class:`~repro.circuit.errors.DutSpecError` with an actionable message
    on the first violation.
    """

    resolution_bits: int = p_field(
        10, units="bit", soft_set=Range(4, 16), integer=True,
        doc="ADC output bits; even, the code splits over two equal sub-DACs")
    vdd: float = p_field(
        1.2, units="V", soft_set=Range(0.6, 3.3), tolerance_guess=0.005,
        doc="supply rail of the A/M-S part")
    vss: float = p_field(
        0.0, units="V", soft_set=Range(-0.3, 0.3),
        doc="ground reference")
    vcm: Optional[float] = p_field(
        None, units="V", soft_set=Range(0.2, 3.0), nullable=True,
        tolerance_guess=0.01,
        doc="DAC common-mode voltage; defaults to mid-rail")
    vcm2: float = p_field(
        0.55, units="V", soft_set=Range(0.2, 3.0), tolerance_guess=0.02,
        doc="pre-amplifier output common mode (Vcm2 in the paper)")
    vbg: float = p_field(
        1.2, units="V", soft_set=Range(0.5, 1.5), tolerance_guess=0.002,
        doc="nominal bandgap reference voltage")
    ibias: float = p_field(
        20e-6, units="A", soft_set=Range(1e-6, 1e-3), tolerance_guess=0.05,
        doc="nominal master bias current")
    f_clk: float = p_field(
        156e6, units="Hz", soft_set=Range(1e6, 1e9),
        doc="BIST / conversion clock frequency")
    c_unit: float = p_field(
        50e-15, units="F", soft_set=Range(1e-15, 1e-12),
        tolerance_guess=0.01,
        doc="unit capacitance of the switched-capacitor array")
    r_ladder: float = p_field(
        500.0, units="ohm", soft_set=Range(10.0, 1e5),
        tolerance_guess=0.015,
        doc="unit resistance of one reference-ladder segment")
    test_input_diff: float = p_field(
        0.275, units="V", soft_set=Range(-3.0, 3.0),
        doc="constant differential input of the SymBIST stimulus")
    #: Per-block behavioral parameter overrides, keyed by block path then
    #: parameter name (the names each block registers via
    #: ``declare_parameter``); overrides move the parameter's *nominal*.
    block_params: Mapping[str, Mapping[str, float]] = \
        dataclasses.field(default_factory=dict)
    #: Process-corner overrides of :class:`VariationSpec` fields; ``None``
    #: keeps the study's (or the default) variation spec.
    variation: Optional[Mapping[str, float]] = None

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        for spec_field in dataclasses.fields(self):
            info = spec_field.metadata.get(PARAM_METADATA_KEY)
            if isinstance(info, ParamInfo):
                value = coerce_value(spec_field.name,
                                     getattr(self, spec_field.name), info)
                object.__setattr__(self, spec_field.name, value)
        if self.resolution_bits % 2 != 0:
            raise DutSpecError(
                f"dut.resolution_bits must be even (the conversion splits "
                f"the code between two equal sub-DACs), got "
                f"{self.resolution_bits}; use e.g. 8, 10 or 12")
        if not self.vdd > self.vss:
            raise DutSpecError(
                f"dut.vdd ({self.vdd:g} V) must exceed dut.vss "
                f"({self.vss:g} V)")
        for name in ("vcm", "vcm2"):
            value = getattr(self, name)
            if value is not None and not (self.vss < value < self.vdd):
                raise DutSpecError(
                    f"dut.{name} = {value:g} V must lie strictly between "
                    f"the rails ({self.vss:g} V, {self.vdd:g} V)")
        object.__setattr__(self, "block_params",
                           self._checked_block_params(self.block_params))
        object.__setattr__(self, "variation",
                           self._checked_variation(self.variation))

    @staticmethod
    def _checked_block_params(value: Any) -> Dict[str, Dict[str, float]]:
        if not isinstance(value, Mapping):
            raise DutSpecError(
                f"dut.block_params must be a table of "
                f"{{block: {{parameter: value}}}}, got {value!r}")
        checked: Dict[str, Dict[str, float]] = {}
        for block, params in value.items():
            if not isinstance(block, str) or not isinstance(params, Mapping):
                raise DutSpecError(
                    f"dut.block_params entries must map a block path to a "
                    f"parameter table, got {block!r} = {params!r}")
            checked[block] = {}
            for name, raw in params.items():
                if isinstance(raw, bool) or \
                        not isinstance(raw, (int, float)) or \
                        not math.isfinite(float(raw)):
                    raise DutSpecError(
                        f"dut.block_params.{block}.{name} must be a finite "
                        f"number, got {raw!r}")
                checked[block][str(name)] = float(raw)
        return checked

    @staticmethod
    def _checked_variation(value: Any) -> Optional[Dict[str, float]]:
        if value is None:
            return None
        if not isinstance(value, Mapping):
            raise DutSpecError(
                f"dut.variation must be a table of VariationSpec fields, "
                f"got {value!r}")
        checked: Dict[str, float] = {}
        for name, raw in value.items():
            if name not in _VARIATION_FIELDS:
                raise DutSpecError(
                    f"dut.variation has no field {name!r}; choose from: "
                    + ", ".join(_VARIATION_FIELDS))
            if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                    or not math.isfinite(float(raw)):
                raise DutSpecError(
                    f"dut.variation.{name} must be a finite number, "
                    f"got {raw!r}")
            checked[str(name)] = float(raw)
        # Construct once so VariationSpec's own validation (non-negative
        # sigmas) fires at spec construction, not mid-study.
        VariationSpec(**checked)
        return checked

    # ------------------------------------------------------------- geometry
    @property
    def half_bits(self) -> int:
        """Bits per sub-DAC (``resolution_bits / 2``)."""
        return self.resolution_bits // 2

    @property
    def n_codes(self) -> int:
        """Number of output codes (``2 ** resolution_bits``)."""
        return 2 ** self.resolution_bits

    @property
    def full_code(self) -> int:
        """Highest output code (``2 ** resolution_bits - 1``)."""
        return self.n_codes - 1

    @property
    def counter_codes(self) -> int:
        """Codes per sub-DAC / span of the BIST counter (``2**half_bits``)."""
        return 2 ** self.half_bits

    @property
    def n_ref_levels(self) -> int:
        """Reference-ladder taps ``VREF<0:2**half_bits>``."""
        return self.counter_codes + 1

    @property
    def mid_tap(self) -> int:
        """Index of the mid-scale ladder tap (VREF<16> on the paper's DUT)."""
        return self.n_ref_levels // 2

    @property
    def mid_code(self) -> int:
        """Output code at zero differential input (528 on the paper's DUT)."""
        return (self.counter_codes // 2) * self.n_ref_levels

    @property
    def cycles_per_conversion(self) -> int:
        """Clock cycles per conversion: sample + ``bits`` + capture."""
        return self.resolution_bits + 2

    @property
    def common_mode(self) -> float:
        """Effective DAC common mode: ``vcm``, or mid-rail when unset."""
        if self.vcm is not None:
            return self.vcm
        return (self.vdd + self.vss) / 2.0

    @property
    def is_default(self) -> bool:
        """True when this spec describes the paper's (default) ADC."""
        return self == _default()

    def variation_spec(self) -> Optional[VariationSpec]:
        """The corner's :class:`VariationSpec`, or ``None`` when unset."""
        if self.variation is None:
            return None
        return VariationSpec(**dict(self.variation))

    def parameter_info(self, name: str) -> ParamInfo:
        """Declaration metadata (unit, range, tolerance guess) of a field."""
        for spec_field in dataclasses.fields(self):
            if spec_field.name == name:
                info = spec_field.metadata.get(PARAM_METADATA_KEY)
                if isinstance(info, ParamInfo):
                    return info
                break
        raise DutSpecError(f"DutSpec has no typed parameter {name!r}")

    # -------------------------------------------------------- serialization
    def to_jsonable(self) -> Dict[str, Any]:
        """Minimal JSON-ready mapping: fields at their default are dropped,
        so the default spec serializes to ``{}`` and the fingerprint is
        insensitive to spelled-out defaults."""
        default = _default()
        payload: Dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if value == getattr(default, spec_field.name):
                continue
            if isinstance(value, Mapping):
                value = {key: dict(inner) if isinstance(inner, Mapping)
                         else inner for key, inner in value.items()}
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "DutSpec":
        if not isinstance(payload, Mapping):
            raise DutSpecError(
                f"a DUT spec must be a table/object, got {payload!r}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise DutSpecError(
                f"unknown [dut] key(s) {', '.join(map(repr, unknown))}; "
                f"known keys: " + ", ".join(sorted(known)))
        return cls(**dict(payload))

    def merged(self, overrides: Mapping[str, Any]) -> "DutSpec":
        """A new spec with ``overrides`` applied over this one (the variant
        overlay operation: the study-level ``[dut]`` merged with one
        ``[variants.dut]`` table)."""
        payload = self.to_jsonable()
        payload.update(overrides)
        return type(self).from_jsonable(payload)

    def fingerprint(self) -> str:
        """Stable 16-hex-digit content hash of the canonical serialization;
        feeds cache keys and the warehouse's ``dut_fingerprint`` column."""
        canonical = json.dumps(self.to_jsonable(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ----------------------------------------------------------------- TOML
    def to_toml(self) -> str:
        """Canonical TOML rendering (a standalone ``[dut]`` document)."""
        payload = self.to_jsonable()
        lines = ["[dut]"]
        tables = []
        for key, value in payload.items():
            if isinstance(value, Mapping):
                tables.append((key, value))
            else:
                lines.append(f"{key} = {_toml_scalar(value)}")
        for key, value in tables:
            if key == "variation":
                lines.append("")
                lines.append("[dut.variation]")
                for name, inner in value.items():
                    lines.append(f"{name} = {_toml_scalar(inner)}")
            else:  # block_params: one sub-table per block
                for block, params in value.items():
                    lines.append("")
                    lines.append(f"[dut.{key}.{block}]")
                    for name, inner in params.items():
                        lines.append(f"{name} = {_toml_scalar(inner)}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "DutSpec":
        """Parse a TOML document holding a ``[dut]`` table (or the bare
        fields at top level)."""
        data = _parse_toml(text)
        payload = data.get("dut", data)
        return cls.from_jsonable(payload)


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise DutSpecError(f"cannot render {value!r} as a TOML value")


def _parse_toml(text: str) -> Dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover (python < 3.11)
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError as exc:
            raise DutSpecError(
                "parsing TOML DUT specs needs tomllib (python >= 3.11) "
                "or tomli") from exc
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise DutSpecError(f"invalid TOML DUT spec: {exc}") from exc


_DEFAULT_DUT: Optional[DutSpec] = None


def _default() -> DutSpec:
    """The cached all-defaults spec (the paper's ADC)."""
    global _DEFAULT_DUT
    if _DEFAULT_DUT is None:
        _DEFAULT_DUT = DutSpec()
    return _DEFAULT_DUT


def default_dut() -> DutSpec:
    """The paper's 65 nm 10-bit SAR ADC as a :class:`DutSpec`."""
    return _default()
