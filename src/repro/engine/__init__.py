"""Campaign-execution engine: sharded workers, seeding, caching, pipelines.

Every heavyweight workload of the reproduction -- window calibration, defect
campaigns (Table I), Monte Carlo analyses, the yield-loss-versus-k sweep --
decomposes into many simulations, some independent and some consuming other
simulations' results.  This subpackage is the shared infrastructure that
executes such workloads:

* :mod:`repro.engine.task` -- :class:`Task`/:class:`TaskGraph`, describing
  the units of work and the dependency edges between them (a DAG by
  construction: parents are added before children);
* :mod:`repro.engine.backends` -- pluggable executors:
  :class:`SerialBackend` (default, bit-identical to the historical loops),
  :class:`MultiprocessBackend` (chunked sharding over a process pool) and
  :class:`SharedMemoryBackend` (process pool whose campaign context is
  pickled once into a shared-memory segment instead of re-shipped per
  shard), each offering batch (``map_items``) and incremental (``stream``)
  interfaces;
* :mod:`repro.engine.executor` -- :class:`CampaignEngine`, which adds
  deterministic per-task seeding (``SeedSequence`` children by task index;
  results do not depend on worker count or completion order),
  content-addressed result caching, topological scheduling of dependency
  graphs (no stage barriers; failed tasks skip their descendants; cached
  parents unblock children immediately) and :class:`CampaignReport`
  instrumentation;
* :mod:`repro.engine.cache` -- :class:`ResultCache`, the JSON-on-disk
  artifact store keyed by task spec + seed + code version, with optional
  ``max_bytes``/``max_age`` LRU eviction;
* :mod:`repro.engine.pipeline` -- the :class:`Pipeline` API (named stages
  over one task graph) and the built-in workflows:
  :func:`calibrate_then_campaign` (window calibration + defect campaign as
  one graph), :func:`block_study` (per-block window calibration + every
  block's defect campaign + per-block yield/coverage reductions as one
  graph -- Table I in a single engine run) and :func:`yield_loss_study`
  (calibration + campaign + yield-loss sweep + functional escape analysis
  as one graph);
* :mod:`repro.engine.registry` -- the **stage registry**: every composable
  simulation stage (``calibrate``, ``windows``, ``campaign``, ``yield``,
  ``escape``, ``block-summary``) registered under a stable name with a
  typed parameter schema and a graph expander;
* :mod:`repro.engine.spec` -- the **declarative study layer**:
  :class:`StudySpec` documents (TOML/JSON round-trippable) compiled by
  :func:`build_study` against the registry into one task graph, with the
  canned studies (:data:`CALIBRATE_THEN_CAMPAIGN`, :data:`BLOCK_STUDY`,
  :data:`YIELD_LOSS_STUDY`) that the builders above are thin wrappers of;
* :mod:`repro.engine.cli` -- the ``repro-campaign`` command-line entry
  point, including ``repro-campaign run STUDY.toml`` for arbitrary specs.

The drivers in :mod:`repro.analysis.monte_carlo`,
:mod:`repro.core.calibration`, :mod:`repro.defects.simulator` and
:mod:`repro.analysis.yield_loss` all route their work through this engine;
passing ``backend=MultiprocessBackend(max_workers=N)`` and/or a
:class:`ResultCache` to any of them parallelises/caches that workload without
changing its results.
"""

from .backends import (ExecutionBackend, MultiprocessBackend, PayloadReport,
                       SerialBackend, SharedMemoryBackend, WorkStream)
from .cache import (MISS, ResultCache, callable_token, canonical_json,
                    factory_token)
from .executor import (CampaignEngine, CampaignReport, EngineRun,
                       IDENTITY_CODEC, ResultCodec, STATUS_CACHED,
                       STATUS_EXECUTED, STATUS_FAILED, STATUS_SKIPPED,
                       TaskOutcome)
from .pipeline import (Pipeline, PipelineResult, PipelineStage,
                       block_study, build_block_study,
                       build_calibrate_then_campaign, build_yield_loss_study,
                       calibrate_then_campaign, yield_loss_study)
from .registry import (StageDefinition, StageParam, available_stages,
                       register_stage, stage_definition)
from .spec import (BLOCK_STUDY, CALIBRATE_THEN_CAMPAIGN, CANNED_STUDIES,
                   StageSpec, StudyOutcome, StudyPlan, StudySpec,
                   VariantSpec, YIELD_LOSS_STUDY, build_study, load_study,
                   run_study)
from .task import Task, TaskGraph
from .telemetry import (ChromeTraceSink, EVENT_TYPES, JsonlTraceSink,
                        MetricsRegistry, MetricsSink, ProgressSink, TaskSpan,
                        TelemetryBus, TelemetryEvent, TelemetrySink,
                        chrome_trace, follow_trace, read_trace)
from .trace import TraceSummary, format_summary, summarize_trace

#: Deprecated aliases: the per-study Plan/Outcome triplets collapsed into
#: the single StudyPlan/StudyOutcome of the declarative spec layer.
BlockStudyOutcome = StudyOutcome
BlockStudyPlan = StudyPlan
CalibrateCampaignOutcome = StudyOutcome
CalibrateCampaignPlan = StudyPlan
YieldLossStudyOutcome = StudyOutcome
YieldLossStudyPlan = StudyPlan

__all__ = [
    "BLOCK_STUDY", "BlockStudyOutcome", "BlockStudyPlan",
    "CALIBRATE_THEN_CAMPAIGN", "CANNED_STUDIES",
    "CalibrateCampaignOutcome", "CalibrateCampaignPlan", "CampaignEngine",
    "CampaignReport", "ChromeTraceSink", "EVENT_TYPES", "EngineRun",
    "ExecutionBackend", "IDENTITY_CODEC", "JsonlTraceSink", "MISS",
    "MetricsRegistry", "MetricsSink", "MultiprocessBackend", "PayloadReport",
    "Pipeline", "PipelineResult", "PipelineStage", "ProgressSink",
    "ResultCache", "ResultCodec",
    "STATUS_CACHED", "STATUS_EXECUTED", "STATUS_FAILED", "STATUS_SKIPPED",
    "SerialBackend", "SharedMemoryBackend", "StageDefinition", "StageParam",
    "StageSpec", "StudyOutcome", "StudyPlan", "StudySpec", "Task",
    "VariantSpec",
    "TaskGraph", "TaskOutcome", "TaskSpan", "TelemetryBus", "TelemetryEvent",
    "TelemetrySink", "TraceSummary", "WorkStream", "YIELD_LOSS_STUDY",
    "YieldLossStudyOutcome", "YieldLossStudyPlan", "available_stages",
    "block_study", "build_block_study", "build_calibrate_then_campaign",
    "build_study", "build_yield_loss_study", "calibrate_then_campaign",
    "callable_token", "canonical_json", "chrome_trace", "factory_token",
    "follow_trace", "format_summary",
    "load_study", "read_trace", "register_stage", "run_study",
    "stage_definition", "summarize_trace", "yield_loss_study",
]
