"""Campaign-execution engine: sharded workers, seeding, result caching.

Every heavyweight workload of the reproduction -- window calibration, defect
campaigns (Table I), Monte Carlo analyses, the yield-loss-versus-k sweep --
decomposes into many *independent* simulations.  This subpackage is the shared
infrastructure that executes such workloads:

* :mod:`repro.engine.task` -- :class:`Task`/:class:`TaskGraph`, describing the
  units of work;
* :mod:`repro.engine.backends` -- pluggable executors:
  :class:`SerialBackend` (default, bit-identical to the historical loops) and
  :class:`MultiprocessBackend` (chunked sharding over a process pool);
* :mod:`repro.engine.executor` -- :class:`CampaignEngine`, which adds
  deterministic per-task seeding (``SeedSequence.spawn``; results do not
  depend on worker count or completion order), content-addressed result
  caching and :class:`CampaignReport` instrumentation;
* :mod:`repro.engine.cache` -- :class:`ResultCache`, the JSON-on-disk
  artifact store keyed by task spec + seed + code version;
* :mod:`repro.engine.cli` -- the ``repro-campaign`` command-line entry point.

The drivers in :mod:`repro.analysis.monte_carlo`,
:mod:`repro.core.calibration`, :mod:`repro.defects.simulator` and
:mod:`repro.analysis.yield_loss` all route their work through this engine;
passing ``backend=MultiprocessBackend(max_workers=N)`` and/or a
:class:`ResultCache` to any of them parallelises/caches that workload without
changing its results.
"""

from .backends import (ExecutionBackend, MultiprocessBackend, SerialBackend)
from .cache import MISS, ResultCache, callable_token, canonical_json
from .executor import (CampaignEngine, CampaignReport, EngineRun,
                       IDENTITY_CODEC, ResultCodec, TaskOutcome)
from .task import Task, TaskGraph

__all__ = [
    "CampaignEngine", "CampaignReport", "EngineRun", "ExecutionBackend",
    "IDENTITY_CODEC", "MISS", "MultiprocessBackend", "ResultCache",
    "ResultCodec", "SerialBackend", "Task", "TaskGraph", "TaskOutcome",
    "callable_token", "canonical_json",
]
