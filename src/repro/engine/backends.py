"""Execution backends of the campaign engine.

A backend runs a picklable function over work items.  It offers two
interfaces:

* :meth:`ExecutionBackend.map_items` -- batch mode: map the function over a
  fixed list of independent items and return the results *in submission
  order*, whatever order the items actually complete in.  Used for flat
  (edge-free) task graphs, where the full work list is known up front and
  chunking can amortise per-item overhead.
* :meth:`ExecutionBackend.stream` -- incremental mode: open a
  :class:`WorkStream` that accepts items one at a time and yields outcomes
  as they complete.  Used by the dependency-aware graph scheduler
  (:mod:`repro.engine.executor`), which only learns that a task is runnable
  when its parents finish.

Two backends are provided:

* :class:`SerialBackend` -- runs items one by one in the calling process; the
  default, bit-identical to the historical serial loops of the drivers.
* :class:`MultiprocessBackend` -- executes on a
  :class:`concurrent.futures.ProcessPoolExecutor`; chunked sharding in batch
  mode, per-item submission in stream mode.  Because every task carries its
  own seed material (see :mod:`repro.engine.executor`) the results are
  identical to the serial backend regardless of worker count, chunking or
  completion order.

Workers and their context must be picklable for the multiprocess backend
(module-level functions, dataclasses, numpy objects); closures and lambdas
only work with the serial backend.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..circuit.errors import EngineError

#: An item handed to a backend: ``(index, task, seed_material)`` in batch
#: mode, ``(index, task, seed_material, inputs)`` in stream (graph) mode.
WorkItem = Any
#: ``fn(item) -> (index, result, duration_seconds)``.
WorkFn = Callable[[WorkItem], Any]
#: Optional per-completion callback ``on_result(outcome_tuple)``.
ResultCallback = Optional[Callable[[Any], None]]
#: A stream outcome: ``(item, ok, value)`` where ``value`` is ``fn(item)``'s
#: return value when ``ok`` and the raised exception otherwise.
StreamOutcome = Tuple[WorkItem, bool, Any]


class WorkStream(ABC):
    """Incremental submission channel opened by :meth:`ExecutionBackend.stream`.

    The graph scheduler submits items as their dependencies resolve and
    drains completions one at a time; a stream therefore never sees the whole
    work list and must not reorder bookkeeping around it.  Item failures are
    *reported*, not raised: :meth:`next_outcome` returns ``(item, ok, value)``
    triples so the scheduler can mark the task failed, skip its descendants
    and keep the rest of the graph running.

    Streams are context managers; :meth:`close` releases any pool resources.
    """

    @abstractmethod
    def submit(self, item: WorkItem) -> None:
        """Queue one item for execution."""

    @abstractmethod
    def next_outcome(self) -> StreamOutcome:
        """Block until one submitted item finishes; return its outcome.

        Raises :class:`EngineError` when nothing is pending or the backing
        pool died.
        """

    def close(self) -> None:
        """Release backend resources; pending items may be abandoned."""

    def __enter__(self) -> "WorkStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _SerialWorkStream(WorkStream):
    """FIFO stream running items in the calling process on demand."""

    def __init__(self, fn: WorkFn) -> None:
        self._fn = fn
        self._queue: deque = deque()

    def submit(self, item: WorkItem) -> None:
        self._queue.append(item)

    def next_outcome(self) -> StreamOutcome:
        if not self._queue:
            raise EngineError("no submitted work is pending on the stream")
        item = self._queue.popleft()
        try:
            return item, True, self._fn(item)
        except Exception as exc:
            return item, False, exc


# Per-process slot for the stream work function, installed once per pool
# worker by the initializer so submissions only pickle the (small) item
# instead of re-shipping the function + campaign context every time.
_STREAM_FN: Optional[WorkFn] = None


def _stream_initializer(fn: WorkFn) -> None:
    global _STREAM_FN
    _STREAM_FN = fn


def _stream_run_item(item: WorkItem) -> Tuple[bool, Any]:
    try:
        return True, _STREAM_FN(item)
    except Exception as exc:
        return False, exc


class _PoolWorkStream(WorkStream):
    """Stream over a :class:`ProcessPoolExecutor`, one future per item."""

    def __init__(self, fn: WorkFn, max_workers: int) -> None:
        from concurrent.futures import ProcessPoolExecutor
        self._pool = ProcessPoolExecutor(max_workers=max_workers,
                                         initializer=_stream_initializer,
                                         initargs=(fn,))
        self._items: dict = {}
        self._pending: set = set()
        self._ready: deque = deque()

    def submit(self, item: WorkItem) -> None:
        future = self._pool.submit(_stream_run_item, item)
        self._items[future] = item
        self._pending.add(future)

    def next_outcome(self) -> StreamOutcome:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool
        if self._ready:
            return self._ready.popleft()
        if not self._pending:
            raise EngineError("no submitted work is pending on the stream")
        done, self._pending = wait(self._pending,
                                   return_when=FIRST_COMPLETED)
        for future in done:
            item = self._items.pop(future)
            try:
                ok, value = future.result()
            except BrokenProcessPool as exc:
                raise EngineError(
                    "a campaign worker process died unexpectedly (crashed "
                    "or was killed); rerun serially to locate the failing "
                    "task") from exc
            except Exception as exc:
                # e.g. the worker's result (or exception) failed to pickle
                # on its way back: report it as that item's failure instead
                # of aborting the whole stream.
                ok, value = False, exc
            self._ready.append((item, ok, value))
        return self._ready.popleft()

    def close(self) -> None:
        for future in self._pending:
            future.cancel()
        self._pool.shutdown(wait=True)


class ExecutionBackend(ABC):
    """Maps a function over work items, in batch or incremental mode."""

    #: Short name used in reports.
    name: str = "backend"

    #: Number of OS processes doing the work (1 for in-process execution).
    workers: int = 1

    @abstractmethod
    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        """Apply ``fn`` to every item; results returned in item order.

        ``on_result`` is invoked in the calling process once per completed
        item, in completion order (== submission order for the serial
        backend).
        """

    def stream(self, fn: WorkFn) -> WorkStream:
        """Open an incremental :class:`WorkStream` executing ``fn``.

        The default runs items in the calling process (correct for any
        backend); pool backends override it to fan submissions out.
        """
        return _SerialWorkStream(fn)


class SerialBackend(ExecutionBackend):
    """Runs every item in the calling process, in submission order."""

    name = "serial"
    workers = 1

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        results = []
        for item in items:
            outcome = fn(item)
            if on_result is not None:
                on_result(outcome)
            results.append(outcome)
        return results


def _run_chunk(fn: WorkFn, chunk: List[WorkItem]) -> List[Any]:
    """Executed inside a pool worker: run one shard of items.

    Each item is reported as an ``(ok, value)`` pair rather than letting the
    first failure abort the shard, so items completed before a failing
    chunk-mate still reach the parent (and e.g. its result cache).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append((True, fn(item)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


class MultiprocessBackend(ExecutionBackend):
    """Chunked fan-out over a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Items per shard.  Defaults to ``ceil(n / (4 * workers))`` so each
        worker receives ~4 shards -- large enough to amortise the per-shard
        pickling of the worker context, small enough to balance load.
    """

    name = "multiprocess"

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        import os
        if max_workers is not None and max_workers <= 0:
            raise EngineError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise EngineError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = max_workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def _chunks(self, items: Sequence[WorkItem]) -> List[List[WorkItem]]:
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (4 * self.workers)))
        return [list(items[i:i + size]) for i in range(0, len(items), size)]

    def stream(self, fn: WorkFn) -> WorkStream:
        return _PoolWorkStream(fn, self.workers)

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        if not items:
            return []
        # Lazy import: keeps the serial path free of multiprocessing plumbing.
        from concurrent.futures import (CancelledError, FIRST_COMPLETED,
                                        ProcessPoolExecutor, wait)
        from concurrent.futures.process import BrokenProcessPool

        chunks = self._chunks(items)
        ordered: List[Any] = [None] * len(items)
        offsets = {}
        start = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = set()
            for chunk in chunks:
                future = pool.submit(_run_chunk, fn, chunk)
                offsets[future] = (start, len(chunk))
                pending.add(future)
                start += len(chunk)
            try:
                failure: Optional[BaseException] = None
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        offset, _ = offsets[future]
                        try:
                            outcomes = future.result()
                        except CancelledError:
                            continue
                        except Exception as exc:
                            if failure is None:
                                failure = exc
                            continue
                        for position, (ok, value) in enumerate(outcomes):
                            if not ok:
                                if failure is None:
                                    failure = value
                                continue
                            ordered[offset + position] = value
                            if on_result is not None:
                                on_result(value)
                    if failure is not None and pending:
                        # Stop chunks that have not started, but keep
                        # draining the ones already running: their completed
                        # work must still reach on_result (which e.g.
                        # persists results to the cache) before the failure
                        # propagates.
                        pending = {f for f in pending if not f.cancel()}
                if failure is not None:
                    raise failure
            except BrokenProcessPool as exc:
                raise EngineError(
                    "a campaign worker process died unexpectedly (crashed or "
                    "was killed); rerun serially to locate the failing task"
                ) from exc
            finally:
                for future in pending:
                    future.cancel()
        return ordered
