"""Execution backends of the campaign engine.

A backend runs a picklable function over work items.  It offers two
interfaces:

* :meth:`ExecutionBackend.map_items` -- batch mode: map the function over a
  fixed list of independent items and return the results *in submission
  order*, whatever order the items actually complete in.  Used for flat
  (edge-free) task graphs, where the full work list is known up front and
  chunking can amortise per-item overhead.
* :meth:`ExecutionBackend.stream` -- incremental mode: open a
  :class:`WorkStream` that accepts items one at a time and yields outcomes
  as they complete.  Used by the dependency-aware graph scheduler
  (:mod:`repro.engine.executor`), which only learns that a task is runnable
  when its parents finish.

Three backends are provided:

* :class:`SerialBackend` -- runs items one by one in the calling process; the
  default, bit-identical to the historical serial loops of the drivers.
* :class:`MultiprocessBackend` -- executes on a
  :class:`concurrent.futures.ProcessPoolExecutor`; chunked sharding in batch
  mode, per-item submission in stream mode.  Each batch-mode chunk submission
  re-pickles the work function -- and therefore the whole campaign context it
  closes over (the behavioral ADC, the calibrated windows, ...) -- through
  the pool's pipe.
* :class:`SharedMemoryBackend` -- like the multiprocess backend, but the work
  function (with its captured campaign context) is pickled **once** into a
  ``multiprocessing.shared_memory`` segment at pool startup; each worker
  rehydrates it read-only in the pool initializer, so per-task submissions
  shrink to the bare work items (task id, seed material, small spec dict).
  At realistic campaign sizes this removes the context re-pickling that
  dominates the multiprocess backend's dispatch cost.

Because every task carries its own seed material (see
:mod:`repro.engine.executor`) the pool backends produce results identical to
the serial backend regardless of worker count, chunking or completion order.

Workers and their context must be picklable for the pool backends
(module-level functions, dataclasses, numpy objects); closures and lambdas
only work with the serial backend.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import signal
import struct
import sys
import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit.errors import EngineError

#: Pickle protocol of every payload shipped to pool workers (submissions,
#: shared segments, and the opt-in payload measurements -- one protocol so
#: measured bytes match shipped bytes).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: An item handed to a backend: ``(index, task, seed_material)`` in batch
#: mode, ``(index, task, seed_material, inputs)`` in stream (graph) mode.
WorkItem = Any
#: ``fn(item) -> (index, result, duration_seconds, task_span)`` -- the
#: :class:`~repro.engine.telemetry.TaskSpan` carries the worker-side clock
#: readings back for telemetry; backends treat the tuple opaquely.
WorkFn = Callable[[WorkItem], Any]
#: Optional per-completion callback ``on_result(outcome_tuple)``.
ResultCallback = Optional[Callable[[Any], None]]
#: A stream outcome: ``(item, ok, value)`` where ``value`` is ``fn(item)``'s
#: return value when ``ok`` and the raised exception otherwise.
StreamOutcome = Tuple[WorkItem, bool, Any]


class WorkStream(ABC):
    """Incremental submission channel opened by :meth:`ExecutionBackend.stream`.

    The graph scheduler submits items as their dependencies resolve and
    drains completions one at a time; a stream therefore never sees the whole
    work list and must not reorder bookkeeping around it.  Item failures are
    *reported*, not raised: :meth:`next_outcome` returns ``(item, ok, value)``
    triples so the scheduler can mark the task failed, skip its descendants
    and keep the rest of the graph running.

    Streams are context managers; :meth:`close` releases any pool resources.
    """

    @abstractmethod
    def submit(self, item: WorkItem) -> None:
        """Queue one item for execution."""

    @abstractmethod
    def next_outcome(self) -> StreamOutcome:
        """Block until one submitted item finishes; return its outcome.

        Raises :class:`EngineError` when nothing is pending or the backing
        pool died.
        """

    def close(self) -> None:
        """Release backend resources; pending items may be abandoned."""

    def __enter__(self) -> "WorkStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _SerialWorkStream(WorkStream):
    """FIFO stream running items in the calling process on demand."""

    def __init__(self, fn: WorkFn) -> None:
        self._fn = fn
        self._queue: deque = deque()

    def submit(self, item: WorkItem) -> None:
        self._queue.append(item)

    def next_outcome(self) -> StreamOutcome:
        if not self._queue:
            raise EngineError("no submitted work is pending on the stream")
        item = self._queue.popleft()
        try:
            return item, True, self._fn(item)
        except Exception as exc:
            return item, False, exc


@dataclass
class PayloadReport:
    """Bytes pickled to pool workers during one backend run (opt-in).

    Populated on :attr:`MultiprocessBackend.last_payload` when the backend is
    constructed with ``measure_payload=True``; measuring re-pickles every
    submission, so it is meant for benchmarks, not production runs.

    ``task_bytes`` counts the per-submission payloads.  For the multiprocess
    backend every batch chunk re-pickles the work function -- hence the whole
    campaign context it closes over -- alongside its items; for the
    shared-memory backend submissions carry the bare items only.
    ``context_bytes`` counts what ships up front instead of per submission:
    the one-time shared segment for the shm backend, and the
    once-per-worker initializer pickling of the function for the
    multiprocess backend's stream mode (zero in its batch mode, where the
    function rides inside every ``task_bytes`` submission).
    """

    n_items: int = 0
    task_bytes: int = 0
    context_bytes: int = 0

    @property
    def per_task_bytes(self) -> float:
        """Average bytes shipped per work item, excluding the shared segment."""
        return self.task_bytes / self.n_items if self.n_items else 0.0


# Per-process slot for the pool work function, installed once per worker by
# the pool initializer so submissions only pickle the (small) items instead
# of re-shipping the function + campaign context every time.  The
# multiprocess backend ships the function through the initializer arguments
# (pickled once per worker process); the shared-memory backend ships only a
# segment name and the initializer rehydrates the function from the segment.
_WORKER_FN: Optional[WorkFn] = None


def _install_fn(fn: WorkFn) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _install_shared_fn(segment_name: str) -> None:
    _install_fn(_SharedObject.load(segment_name))


def _run_installed_item(item: WorkItem) -> Tuple[bool, Any]:
    try:
        return True, _WORKER_FN(item)
    except Exception as exc:
        return False, exc


def _run_installed_chunk(chunk: List[WorkItem]) -> List[Any]:
    return _run_chunk(_WORKER_FN, chunk)


# Live shared-memory segments owned by this process, so an asynchronous
# death (SIGTERM on a daemon, atexit on an interpreter teardown that never
# reached the stream's close()) still unlinks every /dev/shm entry.  The
# normal KeyboardInterrupt/close paths already destroy segments; this is
# the backstop for the paths that never return to them.
_LIVE_SEGMENTS: set = set()
_SEGMENTS_LOCK = threading.Lock()
_ATEXIT_INSTALLED = False
_SIGTERM_INSTALLED = False
_PREVIOUS_SIGTERM: Any = None


def _destroy_live_segments() -> None:
    """Unlink every segment this process still owns (idempotent).

    Guarded by owner pid: a forked child inherits the registry (and the
    SIGTERM handler) but must never unlink its parent's live segments.
    """
    with _SEGMENTS_LOCK:
        segments = list(_LIVE_SEGMENTS)
    for segment in segments:
        if segment._owner_pid != os.getpid():
            continue
        try:
            segment.destroy()
        except Exception:
            pass  # dying anyway; best effort on the remaining segments


def _sigterm_cleanup(signum: int, frame: Any) -> None:
    _destroy_live_segments()
    previous = _PREVIOUS_SIGTERM
    if callable(previous):
        previous(signum, frame)
    else:
        # Preserve die-by-SIGTERM semantics (exit status, waitpid) instead
        # of swallowing the signal: re-deliver it with the default action.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_segment_cleanup() -> None:
    """Register the atexit + chained-SIGTERM segment reapers (once each).

    The SIGTERM hook only installs from the main thread (the interpreter
    rejects it elsewhere); until a main-thread segment creation comes
    along, atexit still covers normal teardown.
    """
    global _ATEXIT_INSTALLED, _SIGTERM_INSTALLED, _PREVIOUS_SIGTERM
    if not _ATEXIT_INSTALLED:
        _ATEXIT_INSTALLED = True
        atexit.register(_destroy_live_segments)
    if _SIGTERM_INSTALLED or \
            threading.current_thread() is not threading.main_thread():
        return
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm_cleanup)
    except (ValueError, OSError):  # pragma: no cover (exotic embeddings)
        return
    _SIGTERM_INSTALLED = True
    if previous not in (signal.SIG_DFL, signal.SIG_IGN, None):
        _PREVIOUS_SIGTERM = previous


class _SharedObject:
    """One pickled object living in a ``multiprocessing.shared_memory`` segment.

    The creating process owns the segment and must call :meth:`destroy`
    exactly once (idempotent) when the pool is done; worker processes attach
    by name through :meth:`load`, copy the bytes out and detach immediately,
    so the segment disappears from ``/dev/shm`` the moment the owner unlinks
    it.  The payload is length-prefixed because the kernel may round the
    segment up to a whole page.  Segments register in a process-wide
    reaper (atexit + chained SIGTERM) so even a killed owner leaves no
    ``/dev/shm`` entry behind.
    """

    _HEADER = struct.Struct("<Q")

    def __init__(self, obj: Any) -> None:
        from multiprocessing import shared_memory
        body = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
        self.nbytes = len(body)
        self._owner_pid = os.getpid()
        self._segment = shared_memory.SharedMemory(
            create=True, size=self._HEADER.size + len(body))
        self._segment.buf[:self._HEADER.size] = self._HEADER.pack(len(body))
        self._segment.buf[self._HEADER.size:self._HEADER.size + len(body)] = \
            body
        self.name = self._segment.name
        _install_segment_cleanup()
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.add(self)

    @classmethod
    def load(cls, name: str) -> Any:
        """Attach to a segment by name, unpickle its object, detach."""
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(name=name)
        try:
            (size,) = cls._HEADER.unpack(
                bytes(segment.buf[:cls._HEADER.size]))
            return pickle.loads(
                bytes(segment.buf[cls._HEADER.size:cls._HEADER.size + size]))
        finally:
            segment.close()

    def destroy(self) -> None:
        """Close and unlink the segment; safe to call more than once."""
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.discard(self)
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


class _PoolWorkStream(WorkStream):
    """Stream over a :class:`ProcessPoolExecutor`, one future per item.

    The work function reaches the workers through the pool initializer
    (``pool_kwargs``); submissions pickle only the item and invoke
    ``run_item``, which resolves the per-process function slot.  ``on_close``
    releases whatever shipped the function (e.g. the shared-memory segment).
    """

    def __init__(self, max_workers: int, pool_kwargs: Dict[str, Any],
                 run_item: Callable[[WorkItem], Tuple[bool, Any]],
                 report: Optional[PayloadReport] = None,
                 on_close: Optional[Callable[[], None]] = None,
                 mp_context: Any = None) -> None:
        from concurrent.futures import ProcessPoolExecutor
        self._pool = ProcessPoolExecutor(max_workers=max_workers,
                                         mp_context=mp_context,
                                         **pool_kwargs)
        self._run_item = run_item
        self._report = report
        self._on_close = on_close
        self._items: dict = {}
        self._pending: set = set()
        self._ready: deque = deque()

    def submit(self, item: WorkItem) -> None:
        if self._report is not None:
            self._report.n_items += 1
            self._report.task_bytes += len(
                pickle.dumps(item, protocol=_PICKLE_PROTOCOL))
        future = self._pool.submit(self._run_item, item)
        self._items[future] = item
        self._pending.add(future)

    def next_outcome(self) -> StreamOutcome:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool
        if self._ready:
            return self._ready.popleft()
        if not self._pending:
            raise EngineError("no submitted work is pending on the stream")
        done, self._pending = wait(self._pending,
                                   return_when=FIRST_COMPLETED)
        for future in done:
            item = self._items.pop(future)
            try:
                ok, value = future.result()
            except BrokenProcessPool as exc:
                raise EngineError(
                    "a campaign worker process died unexpectedly (crashed "
                    "or was killed); rerun serially to locate the failing "
                    "task") from exc
            except Exception as exc:
                # e.g. the worker's result (or exception) failed to pickle
                # on its way back: report it as that item's failure instead
                # of aborting the whole stream.
                ok, value = False, exc
            self._ready.append((item, ok, value))
        return self._ready.popleft()

    def close(self) -> None:
        try:
            try:
                for future in self._pending:
                    future.cancel()
                self._pool.shutdown(wait=True)
            except BaseException:
                # A consumer-side interrupt (e.g. a KeyboardInterrupt
                # delivered while the pool drains, or a second Ctrl-C during
                # the graceful shutdown above) must not leave the pool -- or
                # the shared segment released by on_close below -- behind:
                # give up on the workers without blocking and re-raise.
                # cancel_futures only exists on Python >= 3.9; the explicit
                # cancel loop above already covered the pending futures.
                if sys.version_info >= (3, 9):
                    self._pool.shutdown(wait=False, cancel_futures=True)
                else:  # pragma: no cover (requires-python allows 3.8)
                    self._pool.shutdown(wait=False)
                raise
        finally:
            # Covers every exit path, including consumer-side interrupts:
            # whatever shipped the work function (e.g. the /dev/shm segment
            # of the shared-memory backend) is unlinked exactly once.
            if self._on_close is not None:
                self._on_close()


class ExecutionBackend(ABC):
    """Maps a function over work items, in batch or incremental mode."""

    #: Short name used in reports.
    name: str = "backend"

    #: Number of OS processes doing the work (1 for in-process execution).
    workers: int = 1

    @abstractmethod
    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        """Apply ``fn`` to every item; results returned in item order.

        ``on_result`` is invoked in the calling process once per completed
        item, in completion order (== submission order for the serial
        backend).
        """

    def stream(self, fn: WorkFn) -> WorkStream:
        """Open an incremental :class:`WorkStream` executing ``fn``.

        The default runs items in the calling process (correct for any
        backend); pool backends override it to fan submissions out.
        """
        return _SerialWorkStream(fn)


class SerialBackend(ExecutionBackend):
    """Runs every item in the calling process, in submission order."""

    name = "serial"
    workers = 1

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        results = []
        for item in items:
            outcome = fn(item)
            if on_result is not None:
                on_result(outcome)
            results.append(outcome)
        return results


def _run_chunk(fn: WorkFn, chunk: List[WorkItem]) -> List[Any]:
    """Executed inside a pool worker: run one shard of items.

    Each item is reported as an ``(ok, value)`` pair rather than letting the
    first failure abort the shard, so items completed before a failing
    chunk-mate still reach the parent (and e.g. its result cache).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append((True, fn(item)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


class _FnShipment:
    """Batch-mode shipping strategy of :class:`MultiprocessBackend`.

    The work function travels inside every chunk submission, so each shard
    re-pickles it (and the campaign context it closes over) through the
    pool's pipe.
    """

    pool_kwargs: Dict[str, Any] = {}

    def __init__(self, fn: WorkFn,
                 report: Optional[PayloadReport] = None) -> None:
        self._fn = fn
        self._report = report

    def submit(self, pool: Any, chunk: List[WorkItem]) -> Any:
        if self._report is not None:
            self._report.n_items += len(chunk)
            self._report.task_bytes += len(
                pickle.dumps((self._fn, chunk), protocol=_PICKLE_PROTOCOL))
        return pool.submit(_run_chunk, self._fn, chunk)

    def close(self) -> None:
        pass


class _SharedShipment:
    """Batch-mode shipping strategy of :class:`SharedMemoryBackend`.

    The work function is pickled once into a shared-memory segment; the pool
    initializer rehydrates it per worker, and chunk submissions carry only
    the items.
    """

    def __init__(self, fn: WorkFn,
                 report: Optional[PayloadReport] = None) -> None:
        self._segment = _SharedObject(fn)
        self.pool_kwargs = {"initializer": _install_shared_fn,
                            "initargs": (self._segment.name,)}
        self._report = report
        if report is not None:
            report.context_bytes = self._segment.nbytes

    def submit(self, pool: Any, chunk: List[WorkItem]) -> Any:
        if self._report is not None:
            self._report.n_items += len(chunk)
            self._report.task_bytes += len(
                pickle.dumps(chunk, protocol=_PICKLE_PROTOCOL))
        return pool.submit(_run_installed_chunk, chunk)

    def close(self) -> None:
        self._segment.destroy()


class MultiprocessBackend(ExecutionBackend):
    """Chunked fan-out over a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Items per shard.  Defaults to ``ceil(n / (4 * workers))`` so each
        worker receives ~4 shards -- large enough to amortise the per-shard
        pickling of the worker context, small enough to balance load.
    measure_payload:
        When True, every run records the bytes shipped to the pool on
        :attr:`last_payload` (a :class:`PayloadReport`).  Measuring
        re-pickles each submission, so leave it off outside benchmarks.
    mp_context:
        Worker start method: ``"fork"``, ``"spawn"`` or ``"forkserver"``
        (whatever :func:`multiprocessing.get_all_start_methods` offers on
        this platform).  ``None`` (the default) keeps the interpreter's
        default start method -- the historical behaviour.  ``"forkserver"``
        amortises worker startup across pools on platforms where ``fork``
        is unsafe; results are identical under any start method because
        every task carries its own seed material.
    """

    name = "multiprocess"

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 measure_payload: bool = False,
                 mp_context: Optional[str] = None) -> None:
        import os
        if max_workers is not None and max_workers <= 0:
            raise EngineError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise EngineError(f"chunk_size must be positive, got {chunk_size}")
        if mp_context is not None:
            import multiprocessing
            valid = multiprocessing.get_all_start_methods()
            if mp_context not in valid:
                raise EngineError(
                    f"mp_context must be one of {sorted(valid)} on this "
                    f"platform, got {mp_context!r}")
        self.workers = max_workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.measure_payload = measure_payload
        self.mp_context = mp_context
        #: Payload measurement of the most recent run (None unless
        #: ``measure_payload`` is set).
        self.last_payload: Optional[PayloadReport] = None

    def _pool_context(self) -> Any:
        """The ``multiprocessing`` context handed to the pool (None = default)."""
        if self.mp_context is None:
            return None
        import multiprocessing
        return multiprocessing.get_context(self.mp_context)

    def _chunks(self, items: Sequence[WorkItem]) -> List[List[WorkItem]]:
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (4 * self.workers)))
        return [list(items[i:i + size]) for i in range(0, len(items), size)]

    def _new_report(self) -> Optional[PayloadReport]:
        self.last_payload = PayloadReport() if self.measure_payload else None
        return self.last_payload

    # ------------------------------------------------------ shipping strategy
    def _shipment(self, fn: WorkFn) -> Any:
        """Batch-mode shipping strategy; overridden by the shm backend."""
        return _FnShipment(fn, self._new_report())

    def stream(self, fn: WorkFn) -> WorkStream:
        report = self._new_report()
        if report is not None:
            # The initializer arguments re-pickle the function (and its
            # captured campaign context) once per worker process.
            report.context_bytes = self.workers * len(
                pickle.dumps(fn, protocol=_PICKLE_PROTOCOL))
        return _PoolWorkStream(self.workers,
                               {"initializer": _install_fn, "initargs": (fn,)},
                               _run_installed_item,
                               report=report,
                               mp_context=self._pool_context())

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        if not items:
            return []
        # Lazy import: keeps the serial path free of multiprocessing plumbing.
        from concurrent.futures import (CancelledError, FIRST_COMPLETED,
                                        ProcessPoolExecutor, wait)
        from concurrent.futures.process import BrokenProcessPool

        chunks = self._chunks(items)
        ordered: List[Any] = [None] * len(items)
        offsets = {}
        start = 0
        shipment = self._shipment(fn)
        try:
            with ProcessPoolExecutor(max_workers=self.workers,
                                     mp_context=self._pool_context(),
                                     **shipment.pool_kwargs) as pool:
                pending = set()
                for chunk in chunks:
                    future = shipment.submit(pool, chunk)
                    offsets[future] = (start, len(chunk))
                    pending.add(future)
                    start += len(chunk)
                try:
                    failure: Optional[BaseException] = None
                    while pending:
                        done, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                        for future in done:
                            offset, _ = offsets[future]
                            try:
                                outcomes = future.result()
                            except CancelledError:
                                continue
                            except Exception as exc:
                                if failure is None:
                                    failure = exc
                                continue
                            for position, (ok, value) in enumerate(outcomes):
                                if not ok:
                                    if failure is None:
                                        failure = value
                                    continue
                                ordered[offset + position] = value
                                if on_result is not None:
                                    on_result(value)
                        if failure is not None and pending:
                            # Stop chunks that have not started, but keep
                            # draining the ones already running: their
                            # completed work must still reach on_result
                            # (which e.g. persists results to the cache)
                            # before the failure propagates.
                            pending = {f for f in pending if not f.cancel()}
                    if failure is not None:
                        raise failure
                except BrokenProcessPool as exc:
                    raise EngineError(
                        "a campaign worker process died unexpectedly "
                        "(crashed or was killed); rerun serially to locate "
                        "the failing task") from exc
                finally:
                    for future in pending:
                        future.cancel()
        finally:
            # After the pool has fully shut down (the `with` exit waits), so
            # no worker can still be attached to a shared segment.
            shipment.close()
        return ordered


class SharedMemoryBackend(MultiprocessBackend):
    """Multiprocess execution with the campaign context shared, not shipped.

    Identical scheduling, chunking and failure semantics to
    :class:`MultiprocessBackend`; only the transport differs.  The work
    function -- together with the campaign context it closes over (the
    behavioral ADC spec, calibration windows, defect universe, ...) -- is
    pickled **once** into a ``multiprocessing.shared_memory`` segment when
    the pool starts, and every worker rehydrates it read-only in its pool
    initializer.  Submissions then carry only the bare work items (task id,
    seed material, small spec dict), so per-task payload bytes shrink by the
    size of the context times the number of shards.

    The owning process unlinks the segment when the run finishes (batch
    mode) or the stream is closed, so no ``/dev/shm`` entries outlive the
    engine.  Results are bit-identical to the serial and multiprocess
    backends under the same seed: the transport never touches seeding or
    completion-order bookkeeping.
    """

    name = "shm"

    def _shipment(self, fn: WorkFn) -> Any:
        return _SharedShipment(fn, self._new_report())

    def stream(self, fn: WorkFn) -> WorkStream:
        report = self._new_report()
        segment = _SharedObject(fn)
        if report is not None:
            report.context_bytes = segment.nbytes
        try:
            return _PoolWorkStream(self.workers,
                                   {"initializer": _install_shared_fn,
                                    "initargs": (segment.name,)},
                                   _run_installed_item,
                                   report=report,
                                   on_close=segment.destroy,
                                   mp_context=self._pool_context())
        except BaseException:
            # Pool construction failed; nobody will ever call close(), so
            # the segment must be unlinked here or it outlives the engine.
            segment.destroy()
            raise
