"""Execution backends of the campaign engine.

A backend maps a picklable function over a list of work items and returns the
results *in submission order*, whatever order the items actually complete in.
Two backends are provided:

* :class:`SerialBackend` -- runs items one by one in the calling process; the
  default, bit-identical to the historical serial loops of the drivers.
* :class:`MultiprocessBackend` -- shards the items into chunks and executes
  them on a :class:`concurrent.futures.ProcessPoolExecutor`.  Because every
  task carries its own seed material (see :mod:`repro.engine.executor`) the
  results are identical to the serial backend regardless of worker count,
  chunking or completion order.

Workers and their context must be picklable for the multiprocess backend
(module-level functions, dataclasses, numpy objects); closures and lambdas
only work with the serial backend.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

from ..circuit.errors import EngineError

#: An item handed to a backend: ``(index, task, seed_material)``.
WorkItem = Any
#: ``fn(item) -> (index, result, duration_seconds)``.
WorkFn = Callable[[WorkItem], Any]
#: Optional per-completion callback ``on_result(outcome_tuple)``.
ResultCallback = Optional[Callable[[Any], None]]


class ExecutionBackend(ABC):
    """Maps a function over independent work items, preserving item order."""

    #: Short name used in reports.
    name: str = "backend"

    #: Number of OS processes doing the work (1 for in-process execution).
    workers: int = 1

    @abstractmethod
    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        """Apply ``fn`` to every item; results returned in item order.

        ``on_result`` is invoked in the calling process once per completed
        item, in completion order (== submission order for the serial
        backend).
        """


class SerialBackend(ExecutionBackend):
    """Runs every item in the calling process, in submission order."""

    name = "serial"
    workers = 1

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        results = []
        for item in items:
            outcome = fn(item)
            if on_result is not None:
                on_result(outcome)
            results.append(outcome)
        return results


def _run_chunk(fn: WorkFn, chunk: List[WorkItem]) -> List[Any]:
    """Executed inside a pool worker: run one shard of items.

    Each item is reported as an ``(ok, value)`` pair rather than letting the
    first failure abort the shard, so items completed before a failing
    chunk-mate still reach the parent (and e.g. its result cache).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append((True, fn(item)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


class MultiprocessBackend(ExecutionBackend):
    """Chunked fan-out over a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunk_size:
        Items per shard.  Defaults to ``ceil(n / (4 * workers))`` so each
        worker receives ~4 shards -- large enough to amortise the per-shard
        pickling of the worker context, small enough to balance load.
    """

    name = "multiprocess"

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        import os
        if max_workers is not None and max_workers <= 0:
            raise EngineError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise EngineError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = max_workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def _chunks(self, items: Sequence[WorkItem]) -> List[List[WorkItem]]:
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (4 * self.workers)))
        return [list(items[i:i + size]) for i in range(0, len(items), size)]

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        if not items:
            return []
        # Lazy import: keeps the serial path free of multiprocessing plumbing.
        from concurrent.futures import (CancelledError, FIRST_COMPLETED,
                                        ProcessPoolExecutor, wait)
        from concurrent.futures.process import BrokenProcessPool

        chunks = self._chunks(items)
        ordered: List[Any] = [None] * len(items)
        offsets = {}
        start = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = set()
            for chunk in chunks:
                future = pool.submit(_run_chunk, fn, chunk)
                offsets[future] = (start, len(chunk))
                pending.add(future)
                start += len(chunk)
            try:
                failure: Optional[BaseException] = None
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        offset, _ = offsets[future]
                        try:
                            outcomes = future.result()
                        except CancelledError:
                            continue
                        except Exception as exc:
                            if failure is None:
                                failure = exc
                            continue
                        for position, (ok, value) in enumerate(outcomes):
                            if not ok:
                                if failure is None:
                                    failure = value
                                continue
                            ordered[offset + position] = value
                            if on_result is not None:
                                on_result(value)
                    if failure is not None and pending:
                        # Stop chunks that have not started, but keep
                        # draining the ones already running: their completed
                        # work must still reach on_result (which e.g.
                        # persists results to the cache) before the failure
                        # propagates.
                        pending = {f for f in pending if not f.cancel()}
                if failure is not None:
                    raise failure
            except BrokenProcessPool as exc:
                raise EngineError(
                    "a campaign worker process died unexpectedly (crashed or "
                    "was killed); rerun serially to locate the failing task"
                ) from exc
            finally:
                for future in pending:
                    future.cancel()
        return ordered
