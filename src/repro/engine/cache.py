"""Content-addressed result cache / artifact store of the campaign engine.

Each cached artifact is one JSON file on disk whose name is the SHA-256 of a
canonical JSON rendering of everything the result depends on::

    key = sha256({"namespace", "version", "spec", "seed"})

* ``namespace`` separates workload families (defect campaigns, calibration,
  yield-loss points) sharing one cache directory,
* ``version`` is the library version (any release invalidates the cache),
* ``spec`` is the task's own JSON description -- changing any part of the
  task spec (deltas, stimulus, defect id, sampling mode, ...) changes the key,
* ``seed`` is the per-task seed material, omitted for deterministic tasks.

Repeated campaign/calibration runs with identical specs are therefore
near-free: the engine replays the stored artifacts instead of simulating.

Eviction policy
---------------
An unbounded artifact store eventually fills the disk, so the cache supports
three complementary bounds, all optional:

* ``max_age`` (seconds): artifacts expire a fixed time after creation.  The
  creation timestamp is stored *inside* the artifact, so expiry survives
  process restarts; expired artifacts are treated as misses on read and
  deleted.
* ``max_bytes``: a size budget over the whole cache directory.  When a write
  pushes the directory over budget, least-recently-*used* artifacts are
  deleted until it fits.  Recency is the file's mtime, which :meth:`get`
  refreshes on every hit (LRU-on-read), so hot artifacts survive while stale
  ones age out.
* :meth:`evict` can also be called directly for an explicit GC pass.

Both bounds are enforced opportunistically on :meth:`put`; a cache opened
read-only never deletes anything except artifacts it observes to be expired.

Sidecar arrays
--------------
Array-heavy results (residual pools, per-cycle signal traces) bloat the JSON
artifacts and dominate parse time.  A :class:`~repro.engine.ResultCodec`
with ``sidecar=True`` asks :meth:`put` to *externalize* them: every long
homogeneous float list in the encoded result is written to its own
``<key>.<i>.npy`` file next to the JSON entry, which keeps a
``{"__npy__": i}`` reference in its place.  :meth:`get` transparently
internalizes the references back into plain Python lists, so readers see a
bit-identical result whichever representation is on disk (float64 round-trips
JSON exactly).  Sidecars count toward the size budget and are evicted,
cleared and expired together with their JSON entry; an entry whose sidecar
is missing or unreadable reads as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..circuit.errors import EngineError

#: Sentinel distinguishing "no cached entry" from a cached ``None`` result.
MISS = object()

#: Homogeneous float lists at least this long are externalized to ``.npy``
#: sidecars by sidecar-enabled codecs; shorter ones stay inline JSON.
SIDECAR_MIN_FLOATS = 16

#: Reference marker replacing an externalized array inside the JSON entry.
SIDECAR_MARKER = "__npy__"

#: ``.tmp`` files (and orphaned ``.npy`` sidecars) older than this many
#: seconds are presumed leftovers of a crashed writer and are swept by
#: :meth:`ResultCache.evict`/:meth:`ResultCache.clear`; younger ones may
#: belong to an in-flight :meth:`ResultCache.put` and are left alone.
TMP_GRACE_SECONDS = 600.0


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering used for cache keys.

    NaN/Infinity are rejected (``allow_nan=False``): they are not JSON, and
    a key minted from them would be unreadable by any strict parser
    downstream (the SQLite warehouse included).
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise EngineError(
            f"task spec is not JSON-serialisable: {exc}") from exc


class ResultCache:
    """JSON-on-disk artifact store keyed by content hashes.

    Parameters
    ----------
    cache_dir:
        Directory holding the artifacts (created on demand).
    namespace:
        Workload family; part of every key.
    version:
        Code-version token mixed into every key; defaults to the installed
        :mod:`repro` version so upgrading the library invalidates the cache.
    max_bytes:
        Optional size budget for the cache directory; writes that exceed it
        evict least-recently-used artifacts (see :meth:`evict`).
    max_age:
        Optional artifact lifetime in seconds, measured from creation.
        Expired artifacts read as misses (and are deleted on sight); they are
        also removed by the eviction pass that runs on every write.
    """

    def __init__(self, cache_dir: str, namespace: str = "default",
                 version: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 max_age: Optional[float] = None) -> None:
        if not cache_dir:
            raise EngineError("cache_dir must be a non-empty path")
        if max_bytes is not None and max_bytes <= 0:
            raise EngineError(f"max_bytes must be positive, got {max_bytes}")
        if max_age is not None and max_age <= 0:
            raise EngineError(f"max_age must be positive, got {max_age}")
        self.cache_dir = str(cache_dir)
        self.namespace = namespace
        if version is None:
            from .. import __version__
            version = __version__
        self.version = version
        self.max_bytes = max_bytes
        self.max_age = max_age
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Amortised eviction bookkeeping: a (conservatively over-counted)
        # running byte total and the time of the last age sweep, so put()
        # does not scan the whole directory on every write.
        self._approx_bytes: Optional[int] = None
        self._last_age_sweep = 0.0

    # ------------------------------------------------------------------- keys
    def key_for(self, spec: Mapping[str, Any],
                seed_material: Optional[str] = None) -> str:
        payload = {"namespace": self.namespace, "version": self.version,
                   "spec": spec, "seed": seed_material}
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _sidecar_path(self, key: str, index: int) -> str:
        return os.path.join(self.cache_dir, f"{key}.{index}.npy")

    def _sidecar_paths(self, key: str) -> Iterator[str]:
        """Existing sidecar files of one artifact, in index order.

        Sidecar indices are contiguous from 0 by construction (and an
        overwrite replaces the low indices in place), so scanning until the
        first missing index covers every sidecar without a directory listing.
        """
        index = 0
        while True:
            path = self._sidecar_path(key, index)
            if not os.path.exists(path):
                return
            yield path
            index += 1

    # ---------------------------------------------------------------- storage
    def get(self, key: str) -> Any:
        """Stored result for ``key``, or the :data:`MISS` sentinel.

        A hit refreshes the artifact's mtime so size-budget eviction removes
        least-recently-*used* artifacts first (LRU-on-read).
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, ValueError):
            # A torn or corrupt artifact (bad JSON, or not even UTF-8) is
            # treated as a miss and overwritten.
            self.misses += 1
            return MISS
        if not isinstance(entry, dict):
            # Valid JSON but not an artifact (externally overwritten): miss.
            self.misses += 1
            return MISS
        if self._expired(entry):
            self._unlink(path)
            self.misses += 1
            return MISS
        result = entry.get("result")
        if entry.get("sidecars"):
            result = self._internalize(key, result, entry["sidecars"])
            if result is MISS:
                # A torn artifact (sidecar lost but JSON survived, or vice
                # versa mid-eviction): drop the remains and re-execute.
                self._unlink(path)
                self.misses += 1
                return MISS
        self.hits += 1
        try:
            os.utime(path, None)
        except OSError:
            pass  # recency tracking is best-effort
        return result

    def put(self, key: str, result: Any, task_id: Optional[str] = None,
            spec: Optional[Mapping[str, Any]] = None,
            sidecar: bool = False) -> None:
        """Store one artifact atomically (write + rename).

        With ``sidecar=True`` long homogeneous float lists of the encoded
        result are written to ``<key>.<i>.npy`` files (see the module
        docstring); the JSON entry keeps references.  Triggers an eviction
        pass when the running size total exceeds ``max_bytes`` or an age
        sweep is due (see :meth:`_eviction_due`).
        """
        os.makedirs(self.cache_dir, exist_ok=True)
        arrays: List[List[float]] = []
        if sidecar:
            result = _externalize(result, arrays, task_id)
        entry = {"key": key, "task_id": task_id, "spec": spec,
                 "result": result, "created": time.time()}
        if arrays:
            entry["sidecars"] = len(arrays)
        try:
            body = json.dumps(entry, sort_keys=True, allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise EngineError(
                f"result of task {task_id!r} is not JSON-serialisable; "
                f"provide a codec to the engine: {exc}") from exc
        for index, values in enumerate(arrays):
            self._write_sidecar(key, index, values, task_id)
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            self._publish(tmp_path, self._path(key))
        except BaseException:
            # Any crash between mkstemp and the rename (not just OSError --
            # an interrupt or injected failure too) must not leak the temp
            # file; leftovers of a killed *process* are swept by evict().
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if self._eviction_due(len(body)):
            self.evict()

    @staticmethod
    def _publish(tmp_path: str, destination: str) -> None:
        """Atomically move a finished temp file onto its final key path.

        Concurrent writers are legal: the cache is content-addressed, so
        two processes (or threads) racing on one key are by construction
        writing the same artifact, and whoever renames last wins with
        identical content.  ``os.replace`` is already a silent overwrite on
        POSIX; on platforms where replacing a destination that another
        writer is simultaneously creating/holding raises instead, the loser
        discards its temp file and treats the winner's artifact as its own
        successful put.
        """
        try:
            os.replace(tmp_path, destination)
        except OSError:
            if not os.path.exists(destination):
                raise  # a real failure, not a lost race
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def _write_sidecar(self, key: str, index: int, values: List[float],
                       task_id: Optional[str]) -> None:
        """Write one ``.npy`` sidecar atomically (write + rename)."""
        import numpy as np
        array = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(array)):
            raise EngineError(
                f"result of task {task_id!r} contains NaN/Infinity, which "
                f"the JSON artifact store rejects; provide a codec to the "
                f"engine that encodes them explicitly")
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, array, allow_pickle=False)
            self._publish(tmp_path, self._sidecar_path(key, index))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _internalize(self, key: str, result: Any, n_sidecars: int) -> Any:
        """Resolve ``{"__npy__": i}`` references back into plain lists."""
        import numpy as np
        arrays: List[Any] = []
        for index in range(n_sidecars):
            try:
                arrays.append(np.load(self._sidecar_path(key, index),
                                      allow_pickle=False).tolist())
            except (OSError, ValueError):
                return MISS

        def resolve(value: Any) -> Any:
            if isinstance(value, dict):
                if SIDECAR_MARKER in value:
                    return arrays[value[SIDECAR_MARKER]]
                return {k: resolve(v) for k, v in value.items()}
            if isinstance(value, list):
                return [resolve(v) for v in value]
            return value

        try:
            return resolve(result)
        except (IndexError, TypeError):
            return MISS

    def _eviction_due(self, bytes_written: int) -> bool:
        """Whether this write warrants a (full-scan) eviction pass.

        The size budget is tracked with a running total seeded by one
        directory scan and bumped per write; it only over-counts (overwrites
        and external deletions are not subtracted), which at worst triggers
        an early pass -- :meth:`evict` re-measures exactly.  Age sweeps are
        rate-limited to one per tenth of ``max_age``; in between, expired
        artifacts are still deleted lazily by :meth:`get`.
        """
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += bytes_written
            if self._approx_bytes > self.max_bytes:
                return True
        if self.max_age is not None and \
                time.time() - self._last_age_sweep >= self.max_age / 10.0:
            return True
        return False

    # --------------------------------------------------------------- eviction
    def _expired(self, entry: Mapping[str, Any]) -> bool:
        if self.max_age is None:
            return False
        created = entry.get("created")
        if not isinstance(created, (int, float)):
            return False  # pre-eviction artifact without a timestamp
        return time.time() - created > self.max_age

    def _unlink(self, path: str) -> bool:
        removed = self._remove_artifact(path)
        if removed:
            self.evictions += 1
        return removed

    def _remove_artifact(self, path: str) -> bool:
        """Delete one JSON entry and its sidecars; True when the entry went."""
        key = os.path.basename(path)[:-len(".json")]
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        for sidecar in list(self._sidecar_paths(key)):
            try:
                os.unlink(sidecar)
            except OSError:
                pass
        return True

    def _artifact_stats(self) -> List[Tuple[float, int, str]]:
        """``(mtime, size, path)`` of every artifact, oldest first.

        ``size`` covers the JSON entry *plus* its ``.npy`` sidecars (grouped
        by key prefix), so the size budget sees the artifact's whole
        footprint; ``path`` is the JSON entry, the handle :meth:`_unlink`
        removes the group by.
        """
        try:
            names = os.listdir(self.cache_dir)
        except FileNotFoundError:
            return []
        sidecar_bytes: Dict[str, int] = {}
        entries: List[Tuple[str, str]] = []
        for name in names:
            path = os.path.join(self.cache_dir, name)
            if name.endswith(".json"):
                entries.append((name[:-len(".json")], path))
            elif name.endswith(".npy"):
                key = name.split(".", 1)[0]
                try:
                    sidecar_bytes[key] = sidecar_bytes.get(key, 0) + \
                        os.stat(path).st_size
                except OSError:
                    continue
        stats = []
        for key, path in entries:
            try:
                st = os.stat(path)
            except OSError:
                continue
            stats.append((st.st_mtime,
                          st.st_size + sidecar_bytes.get(key, 0), path))
        stats.sort()
        return stats

    def _sweep_stale_files(self, grace: float = TMP_GRACE_SECONDS) -> int:
        """Remove crash leftovers: stale ``.tmp`` files and orphaned
        ``.npy`` sidecars (no JSON entry) older than ``grace`` seconds.

        A killed process can die between ``mkstemp`` and ``os.replace`` (or
        between sidecar and JSON writes); nothing references the leftovers,
        so without this sweep they are invisible to the size budget and
        never reclaimed.  Young files may belong to a concurrent writer and
        are kept.
        """
        try:
            names = os.listdir(self.cache_dir)
        except FileNotFoundError:
            return 0
        json_keys = {name[:-len(".json")] for name in names
                     if name.endswith(".json")}
        cutoff = time.time() - grace
        removed = 0
        for name in names:
            if name.endswith(".tmp"):
                stale = True
            elif name.endswith(".npy"):
                stale = name.split(".", 1)[0] not in json_keys
            else:
                continue
            if not stale:
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                if os.stat(path).st_mtime >= cutoff:
                    continue
                os.unlink(path)
            except OSError:
                continue
            removed += 1
        return removed

    def total_bytes(self) -> int:
        """Current on-disk size of all artifacts."""
        return sum(size for _, size, _ in self._artifact_stats())

    #: ``put`` writes artifacts with ``sort_keys=True``, so ``"created"`` is
    #: the first key and a bounded prefix read suffices during GC sweeps.
    _CREATED_PREFIX_RE = re.compile(r'^\{\s*"created":\s*(-?[0-9.eE+]+)')

    def _created_of(self, path: str) -> Optional[float]:
        """Stored creation timestamp of one artifact, or None.

        Reads only the first few bytes in the common case (our own sorted
        JSON layout) so an eviction sweep over a large cache does not parse
        every result payload; artifacts with an unexpected layout fall back
        to a full parse.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                match = self._CREATED_PREFIX_RE.match(handle.read(64))
                if match:
                    try:
                        return float(match.group(1))
                    except ValueError:
                        return None
                handle.seek(0)
                entry = json.load(handle)
        except (OSError, ValueError):
            # Unreadable, non-UTF-8 or non-JSON file: no timestamp.
            return None
        if not isinstance(entry, Mapping):
            return None
        created = entry.get("created")
        return created if isinstance(created, (int, float)) else None

    def evict(self) -> int:
        """Enforce ``max_age`` then ``max_bytes``; returns artifacts removed.

        ``max_age`` removal first keys off the file mtime: because the mtime
        is refreshed on reads it is never older than the creation time, so an
        artifact whose mtime has aged past ``max_age`` is guaranteed to be
        expired and is unlinked without opening it.  Artifacts with a fresh
        mtime may *still* be expired -- reads refresh the mtime of an
        artifact created long ago (LRU-on-read) -- so the sweep then checks
        their stored creation timestamps; a GC pass therefore removes every
        expired artifact, not only the ones that happened to sit idle.
        ``max_bytes`` removal then drops least-recently-used artifacts until
        the directory is below a low-water mark slightly under the budget
        (so steady writes do not re-trigger a scan every time).  Every pass
        also sweeps stale ``.tmp`` files and orphaned sidecars left by a
        crashed writer (see :meth:`_sweep_stale_files`).
        """
        removed = self._sweep_stale_files()
        stats = self._artifact_stats()
        if self.max_age is not None:
            cutoff = time.time() - self.max_age
            fresh = []
            for mtime, size, path in stats:
                if mtime < cutoff:
                    removed += self._unlink(path)
                    continue
                created = self._created_of(path)
                if created is not None and created < cutoff:
                    removed += self._unlink(path)
                else:
                    fresh.append((mtime, size, path))
            stats = fresh
            self._last_age_sweep = time.time()
        total = sum(size for _, size, _ in stats)
        if self.max_bytes is not None and total > self.max_bytes:
            # Trim below a low-water mark (95% of the budget), not to the
            # budget exactly: a cache sitting at capacity would otherwise
            # re-trigger a full directory scan on every subsequent write.
            target = int(self.max_bytes * 0.95)
            for mtime, size, path in stats:
                if total <= target:
                    break
                if self._unlink(path):
                    removed += 1
                    total -= size
        self._approx_bytes = total
        return removed

    # ------------------------------------------------------------- management
    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.cache_dir)
                       if name.endswith(".json"))
        except FileNotFoundError:
            return 0

    def keys(self) -> List[str]:
        try:
            return sorted(name[:-len(".json")]
                          for name in os.listdir(self.cache_dir)
                          if name.endswith(".json"))
        except FileNotFoundError:
            return []

    def clear(self) -> int:
        """Delete every artifact (and stale crash leftovers); returns the
        number of artifacts removed."""
        removed = 0
        for key in self.keys():
            if self._remove_artifact(self._path(key)):
                removed += 1
        self._sweep_stale_files()
        self._approx_bytes = 0
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "artifacts": len(self), "evictions": self.evictions}


def _externalize(value: Any, arrays: List[List[float]],
                 task_id: Optional[str]) -> Any:
    """Pull long homogeneous float lists out of ``value`` into ``arrays``.

    Returns a structurally equal value with each pulled list replaced by a
    ``{"__npy__": index}`` reference.  Only lists of plain floats at least
    :data:`SIDECAR_MIN_FLOATS` long are externalized -- exactly the shapes
    float64 round-trips bit-identically -- so internalization reproduces the
    pure-JSON result byte for byte.
    """
    if isinstance(value, dict):
        if SIDECAR_MARKER in value:
            raise EngineError(
                f"result of task {task_id!r} contains a reserved "
                f"{SIDECAR_MARKER!r} key; sidecar encoding cannot store it")
        return {key: _externalize(entry, arrays, task_id)
                for key, entry in value.items()}
    if isinstance(value, list):
        if len(value) >= SIDECAR_MIN_FLOATS and \
                all(type(entry) is float for entry in value):
            arrays.append(value)
            return {SIDECAR_MARKER: len(arrays) - 1}
        return [_externalize(entry, arrays, task_id) for entry in value]
    return value


def callable_token(fn: Any) -> Optional[str]:
    """Stable cache-key token for a callable, or None if it has none.

    Only callables with a qualified name (functions, classes) can be
    content-addressed; instances with ``__call__`` or partials have only an
    address-bearing repr, so callers must skip caching for them.
    """
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if qualname and module:
        return f"{module}.{qualname}"
    return None


def factory_token(fn: Any) -> Optional[str]:
    """Cache-key token for an ADC/DUT factory.

    Factories that carry declarative state (e.g.
    :class:`~repro.adc.sar_adc.DutAdcFactory`) expose a ``token`` attribute
    that folds the state's fingerprint into the key; plain callables fall
    back to :func:`callable_token`.  Returns None (caching disabled) only
    when neither applies.
    """
    token = getattr(fn, "token", None)
    if token is not None:
        return str(token)
    return callable_token(fn)
