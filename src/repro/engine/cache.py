"""Content-addressed result cache / artifact store of the campaign engine.

Each cached artifact is one JSON file on disk whose name is the SHA-256 of a
canonical JSON rendering of everything the result depends on::

    key = sha256({"namespace", "version", "spec", "seed"})

* ``namespace`` separates workload families (defect campaigns, calibration,
  yield-loss points) sharing one cache directory,
* ``version`` is the library version (any release invalidates the cache),
* ``spec`` is the task's own JSON description -- changing any part of the
  task spec (deltas, stimulus, defect id, sampling mode, ...) changes the key,
* ``seed`` is the per-task seed material, omitted for deterministic tasks.

Repeated campaign/calibration runs with identical specs are therefore
near-free: the engine replays the stored artifacts instead of simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional

from ..circuit.errors import EngineError

#: Sentinel distinguishing "no cached entry" from a cached ``None`` result.
MISS = object()


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering used for cache keys."""
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise EngineError(
            f"task spec is not JSON-serialisable: {exc}") from exc


class ResultCache:
    """JSON-on-disk artifact store keyed by content hashes.

    Parameters
    ----------
    cache_dir:
        Directory holding the artifacts (created on demand).
    namespace:
        Workload family; part of every key.
    version:
        Code-version token mixed into every key; defaults to the installed
        :mod:`repro` version so upgrading the library invalidates the cache.
    """

    def __init__(self, cache_dir: str, namespace: str = "default",
                 version: Optional[str] = None) -> None:
        if not cache_dir:
            raise EngineError("cache_dir must be a non-empty path")
        self.cache_dir = str(cache_dir)
        self.namespace = namespace
        if version is None:
            from .. import __version__
            version = __version__
        self.version = version
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------- keys
    def key_for(self, spec: Mapping[str, Any],
                seed_material: Optional[str] = None) -> str:
        payload = {"namespace": self.namespace, "version": self.version,
                   "spec": spec, "seed": seed_material}
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    # ---------------------------------------------------------------- storage
    def get(self, key: str) -> Any:
        """Stored result for ``key``, or the :data:`MISS` sentinel."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, json.JSONDecodeError):
            # A torn or corrupt artifact is treated as a miss and overwritten.
            self.misses += 1
            return MISS
        if not isinstance(entry, dict):
            # Valid JSON but not an artifact (externally overwritten): miss.
            self.misses += 1
            return MISS
        self.hits += 1
        return entry.get("result")

    def put(self, key: str, result: Any, task_id: Optional[str] = None,
            spec: Optional[Mapping[str, Any]] = None) -> None:
        """Store one artifact atomically (write + rename)."""
        os.makedirs(self.cache_dir, exist_ok=True)
        entry = {"key": key, "task_id": task_id, "spec": spec,
                 "result": result}
        try:
            body = json.dumps(entry, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise EngineError(
                f"result of task {task_id!r} is not JSON-serialisable; "
                f"provide a codec to the engine: {exc}") from exc
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- management
    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.cache_dir)
                       if name.endswith(".json"))
        except FileNotFoundError:
            return 0

    def keys(self) -> List[str]:
        try:
            return sorted(name[:-len(".json")]
                          for name in os.listdir(self.cache_dir)
                          if name.endswith(".json"))
        except FileNotFoundError:
            return []

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for key in self.keys():
            try:
                os.unlink(self._path(key))
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "artifacts": len(self)}


def callable_token(fn: Any) -> Optional[str]:
    """Stable cache-key token for a callable, or None if it has none.

    Only callables with a qualified name (functions, classes) can be
    content-addressed; instances with ``__call__`` or partials have only an
    address-bearing repr, so callers must skip caching for them.
    """
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if qualname and module:
        return f"{module}.{qualname}"
    return None
