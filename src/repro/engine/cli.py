"""``repro-campaign`` -- run calibrations and defect campaigns from the shell.

The command line drives the heavyweight workloads of the reproduction
through the campaign engine, with sharded workers and a persistent artifact
cache::

    repro-campaign run examples/studies/block_study.toml --workers 4
    repro-campaign run yield-loss-study --set campaign.samples=40
    repro-campaign calibrate --monte-carlo 100 --workers 4 --cache-dir .cache
    repro-campaign campaign --blocks sc_array vcm_generator --workers 4
    repro-campaign pipeline --workers 4 --cache-dir .cache --json out.json
    repro-campaign block-study --workers 4 --backend shm --json table1.json
    repro-campaign yield-study --workers 4 --backend shm --json study.json
    repro-campaign cache stats --cache-dir .cache
    repro-campaign warehouse index .cache --db results.sqlite
    repro-campaign warehouse query per-block-coverage --db results.sqlite

``run`` is the general entry point: it loads a declarative study spec (a
TOML/JSON document, or the name of a canned study -- see ``docs/studies.md``
and ``examples/studies/``), applies ``--set stage.param=value`` overrides,
compiles it against the stage registry and executes the whole study as one
dependency-aware task graph.  The legacy study subcommands are thin aliases
of it over the canned specs: ``pipeline`` (calibrate -> campaign),
``block-study`` (per-block window calibration + every block's defect
campaign + per-block reductions; Table I in one engine run) and
``yield-study`` (the pipeline graph extended with the yield-loss sweep and
the functional escape analysis).  ``calibrate`` and ``campaign`` run the two
phases separately; ``cache`` inspects and garbage-collects a cache
directory; ``warehouse`` maintains and queries a SQLite index of the
completed results (``--warehouse DB`` on any workload subcommand keeps it
up to date as runs finish).

Every campaign-shaped subcommand emits the same per-block JSON schema, with
the single engine report of the run under the top-level ``engine`` key.

``--workers 1`` (the default) executes serially; any higher count shards the
work across a process pool with byte-identical results.  ``--backend shm``
ships the campaign context (the behavioral ADC, windows, universe) to the
workers once through a shared-memory segment instead of re-pickling it per
task shard; ``--mp-context`` picks the worker start method (fork, spawn or
forkserver).  ``--cache-dir`` makes repeated runs near-free: every
per-defect record and per-sample residual set is stored as a
content-addressed JSON artifact, optionally bounded by
``--cache-max-bytes`` / ``--cache-max-age`` LRU eviction.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from . import console


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover (python < 3.8)
        PackageNotFoundError, version = Exception, None
    if version is not None:
        try:
            return version("symbist-repro")
        except PackageNotFoundError:
            pass
    from .. import __version__
    return __version__


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value!r}")
    return parsed


def _build_backend(args: argparse.Namespace):
    from . import MultiprocessBackend, SerialBackend, SharedMemoryBackend
    choice = getattr(args, "backend", None)
    if choice is None:
        choice = "serial" if args.workers <= 1 else "multiprocess"
    if choice == "serial":
        return SerialBackend()
    cls = SharedMemoryBackend if choice == "shm" else MultiprocessBackend
    return cls(max_workers=max(args.workers, 1),
               mp_context=getattr(args, "mp_context", None))


def _build_cache(args: argparse.Namespace, namespace: str):
    from . import ResultCache
    if args.cache_dir is None:
        return None
    return ResultCache(args.cache_dir, namespace=namespace,
                       max_bytes=args.cache_max_bytes,
                       max_age=args.cache_max_age)


def _add_engine_arguments(parser: argparse.ArgumentParser,
                          seeded: bool = False) -> None:
    """Execution/caching options shared by every workload subcommand.

    ``seeded=True`` adds the legacy study knobs (``--seed``,
    ``--monte-carlo``, ``--k``) that the `run` subcommand replaces with
    spec entries / ``--set`` overrides.
    """
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial; results are "
                             "identical for any value)")
    parser.add_argument("--backend", choices=("serial", "multiprocess", "shm"),
                        default=None,
                        help="execution backend (default: serial when "
                             "--workers 1, multiprocess otherwise; shm ships "
                             "the campaign context once via shared memory)")
    parser.add_argument("--mp-context",
                        choices=("fork", "spawn", "forkserver"), default=None,
                        help="worker start method of the pool backends "
                             "(default: the platform default)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory of the content-addressed result "
                             "cache; omit to disable caching")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="cache size budget; least-recently-used "
                             "artifacts are evicted past it")
    parser.add_argument("--cache-max-age", type=float, default=None,
                        help="cache artifact lifetime in seconds; older "
                             "artifacts expire (survives restarts)")
    if seeded:
        parser.add_argument("--seed", type=int, default=1,
                            help="root seed of every random draw")
        parser.add_argument("--monte-carlo", type=int, default=50,
                            help="Monte Carlo samples of the window "
                                 "calibration")
        parser.add_argument("--k", type=float, default=5.0,
                            help="window guard-band multiplier "
                                 "(delta = k*sigma)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the machine-readable results to this file")
    parser.add_argument("--trace", default=None, metavar="FILE.jsonl",
                        help="append the run's telemetry events to this "
                             "JSONL trace (analyse with `repro-campaign "
                             "trace`)")
    parser.add_argument("--warehouse", default=None, metavar="DB",
                        help="index the run's completed results into this "
                             "SQLite warehouse when the run finishes "
                             "(needs --cache-dir; query with "
                             "`repro-campaign warehouse`)")
    parser.add_argument("--progress", action="store_true",
                        help="live per-stage progress line on stderr")
    _add_output_arguments(parser)


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quiet", action="store_true",
                        help="suppress narration and tables (errors still "
                             "print)")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level console output")


def _telemetry_from_args(args: argparse.Namespace,
                         study: Optional[str] = None):
    """Build the run's :class:`~repro.engine.TelemetryBus` from ``--trace``,
    ``--progress`` and ``--warehouse`` (``None`` when none is given, so
    unobserved runs skip event emission entirely).  Callers must
    ``close()`` it."""
    from . import JsonlTraceSink, ProgressSink, TelemetryBus
    sinks: List[Any] = []
    if getattr(args, "trace", None):
        sinks.append(JsonlTraceSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink())
    if getattr(args, "warehouse", None):
        if not getattr(args, "cache_dir", None):
            from ..circuit.errors import EngineError
            raise EngineError(
                "--warehouse indexes cached artifacts, so it needs "
                "--cache-dir; add one (or backfill later with "
                "`repro-campaign warehouse index`)")
        from ..warehouse import WarehouseSink
        sinks.append(WarehouseSink(args.warehouse, cache_dir=args.cache_dir,
                                   study=study))
    return TelemetryBus(sinks) if sinks else None


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    _add_engine_arguments(parser, seeded=True)


def _calibrate(args: argparse.Namespace, telemetry: Any = None):
    from ..core import calibrate_windows
    return calibrate_windows(
        k=args.k, n_monte_carlo=args.monte_carlo,
        rng=np.random.default_rng(args.seed),
        backend=_build_backend(args),
        cache=_build_cache(args, "calibration"),
        telemetry=telemetry)


def _emit(args: argparse.Namespace, payload: Dict[str, Any]) -> None:
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        console.info(f"wrote {args.json_path}")


def cmd_calibrate(args: argparse.Namespace) -> int:
    from ..core import format_table
    telemetry = _telemetry_from_args(args, study="calibrate")
    try:
        calibration = _calibrate(args, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    rows = [[name, f"{calibration.sigmas[name]:.3e}",
             f"{calibration.means[name]:+.3e}", f"{delta:.3e}"]
            for name, delta in calibration.deltas.items()]
    console.info(format_table(
        ["invariance", "sigma", "mean", f"delta (k={args.k:g})"], rows,
        title="SymBIST window calibration"))
    _emit(args, {"k": args.k, "n_samples": calibration.n_samples,
                 "sigmas": calibration.sigmas, "means": calibration.means,
                 "deltas": calibration.deltas})
    return 0


def _block_json(block: str, result: Any, variant: Optional[str] = None,
                dut_fingerprint: Optional[str] = None) -> Dict[str, Any]:
    """Machine-readable per-block payload, shared by every campaign-shaped
    subcommand (``campaign``, ``pipeline``, ``yield-study``, ``block-study``)
    so they can never drift apart in JSON schema.

    Every row names the device it ran against (``dut_fingerprint``,
    defaulting to the paper's device) and the study variant it belongs to
    (``variant``, None outside multi-variant studies), mirroring the
    warehouse columns.

    The engine keys (``engine_wall_time``, ``cache_hit_rate``) are dropped
    from ``timing``: every subcommand now runs its whole sweep as one engine
    run, so those numbers are graph-wide, not per-block, and are reported
    once at the top level (the ``engine`` key) instead.
    """
    from ..dut import default_dut
    report = result.block_report(block)
    timing = result.timing_summary()
    timing.pop("engine_wall_time", None)
    timing.pop("cache_hit_rate", None)
    return {
        "block": block, "n_defects": report.n_defects,
        "n_simulated": report.n_simulated,
        "n_detected": result.n_detected,
        "n_escaped": result.n_simulated - result.n_detected,
        "coverage": report.coverage.value,
        "ci_half_width": report.coverage.ci_half_width,
        "variant": variant,
        "dut_fingerprint": dut_fingerprint or default_dut().fingerprint(),
        "timing": timing}


def cmd_campaign(args: argparse.Namespace) -> int:
    from ..adc import SarAdc
    from ..core import format_confidence, format_table
    from ..defects import DefectCampaign

    backend = _build_backend(args)
    cache = _build_cache(args, "defects")

    console.info(f"calibrating comparison windows (delta = {args.k:g} sigma, "
                 f"{args.monte_carlo} MC samples)...")
    calibration = _calibrate(args)
    campaign = DefectCampaign(
        adc=SarAdc(), deltas=calibration.deltas,
        stop_on_detection=not args.no_stop_on_detection)
    console.info(f"defect universe: {len(campaign.universe)} defects across "
                 f"{len(campaign.universe.block_paths())} A/M-S blocks")

    # One engine run spans the whole sweep: every block's defect tasks are
    # submitted together, with per-block seeds derived from --seed + the
    # block path (identical results for any block order or worker count).
    # Telemetry covers this run (the workload), not the calibration above,
    # so a --trace file holds exactly one run and reconciles with the
    # engine report.
    telemetry = _telemetry_from_args(args, study="campaign")
    try:
        results = campaign.run_per_block(
            n_samples_per_block=args.samples, seed=args.seed,
            exhaustive_threshold=args.exhaustive_threshold,
            blocks=args.blocks or None,  # a bare `--blocks` means every block
            exhaustive=args.exhaustive, batch_size=args.batch_size,
            backend=backend, cache=cache,
            telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()

    rows: List[List[Any]] = []
    results_json: List[Dict[str, Any]] = []
    for block, result in results.items():
        report = result.block_report(block)
        rows.append([block, report.n_defects, report.n_simulated,
                     result.n_detected,
                     f"{report.modeled_sim_time:.0f}",
                     format_confidence(report.coverage.value,
                                       report.coverage.ci_half_width)])
        results_json.append(_block_json(block, result))
    engine_report = next(iter(results.values())).engine_report

    console.info()
    console.info(format_table(
        ["A/M-S block", "#defects", "#simulated", "#detected",
         "model sim time (s)", "L-W defect coverage"],
        rows, title="SymBIST defect-simulation campaign (Table I style)"))
    console.info()
    console.info(f"engine: {engine_report.summary()}")
    from ..dut import default_dut
    _emit(args, {"deltas": calibration.deltas, "workers": args.workers,
                 "k": args.k, "seed": args.seed, "blocks": results_json,
                 "dut": default_dut().fingerprint(),
                 "engine": engine_report.summary()})
    return 0


def _parse_set_assignment(entry: str) -> "Tuple[str, Any]":
    """One ``--set KEY=VALUE`` override; VALUE parses as JSON when it can.

    ``--set campaign.samples=40`` assigns the integer 40;
    ``--set campaign.blocks=sc_array,subdac1`` assigns a string the
    parameter schema splits into a list; quote JSON for anything richer
    (``--set 'windows.block_k={"sc_array": 7.0}'``).
    """
    from ..circuit.errors import EngineError
    key, separator, raw = entry.partition("=")
    if not separator or not key.strip():
        raise EngineError(
            f"--set expects KEY=VALUE (e.g. campaign.samples=40), "
            f"got {entry!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw
    return key.strip(), value


def _run_study(args: argparse.Namespace, spec: Any,
               label: Optional[str] = None) -> int:
    """Compile a study spec, run it and report -- the shared implementation
    of ``run`` and the legacy study subcommands.

    The cache namespace is "calibration" (not a study-private one) so the
    calibrate stage replays artifacts written by ``repro-campaign
    calibrate`` and vice versa; every other stage's artifacts carry
    distinct "driver" fields and cannot collide.
    """
    from .spec import build_study

    label = label or spec.name
    plan = build_study(spec)
    if plan.variants:
        console.info(f"running study {spec.name!r} as one task graph "
                     f"({len(plan.variants)} DUT variants: "
                     f"{', '.join(plan.variants)}; seed {spec.seed})...")
    else:
        console.info(f"running study {spec.name!r} as one task graph "
                     f"(delta = {plan.k:g} sigma, {plan.n_monte_carlo} MC "
                     f"samples, seed {spec.seed})...")
    telemetry = _telemetry_from_args(args, study=spec.name)
    try:
        outcome = plan.run(backend=_build_backend(args),
                           cache=_build_cache(args, "calibration"),
                           telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()

    if plan.variants:
        for name, vplan in plan.variants.items():
            _print_stage_tables(vplan, outcome.variants[name],
                                f"{label}:{name}")
    else:
        _print_stage_tables(plan, outcome, label)

    console.info()
    console.info(f"engine: {outcome.report.summary()}")
    stage_line = outcome.report.stage_summary()
    if stage_line:
        console.info(f"stages: {stage_line}")
    _emit(args, study_payload(spec, plan, outcome, workers=args.workers))
    return 0


def study_payload(spec: Any, plan: Any, outcome: Any,
                  workers: int) -> Dict[str, Any]:
    """The machine-readable result of one compiled study run -- exactly
    the JSON ``repro-campaign run --json`` writes.

    Pure (no console output) so the campaign daemon can persist the same
    payload for a submitted study; daemon results and CLI results are
    compared with ``tools/diff_study_json.py``, which pins the key schema,
    so the two paths must never drift apart.
    """
    payload: Dict[str, Any] = {"workers": workers, "k": plan.k,
                               "seed": spec.seed,
                               "dut": plan.dut_fingerprint}
    if plan.variants:
        payload["variants"] = [
            {"variant": name, "dut": vplan.dut_fingerprint,
             **_stage_payload(vplan, outcome.variants[name])}
            for name, vplan in plan.variants.items()]
    else:
        payload.update(_stage_payload(plan, outcome))
    payload["engine"] = outcome.report.summary()
    return payload


def _stage_payload(plan: Any, outcome: Any) -> Dict[str, Any]:
    """One (variant's) study outcome as its JSON fragment -- the payload
    keys shared by the single-DUT and per-variant paths.  Pure; the
    corresponding tables are printed by :func:`_print_stage_tables`."""
    payload: Dict[str, Any] = {}

    # With a uniform k the per-block window calibrations are identical;
    # emit one table either way.
    calibration = outcome.calibration
    if calibration is not None:
        payload["deltas"] = calibration.deltas

    if plan.campaign_stage is not None:
        payload["blocks"] = [
            _block_json(block, result, variant=outcome.variant,
                        dut_fingerprint=plan.dut_fingerprint)
            for block, result in outcome.results.items()]

    if plan.yield_stage is not None:
        payload["yield_loss"] = [
            {"k": p.k, "analytic_per_run": p.analytic_per_run,
             "analytic_ppm": p.analytic_ppm, "empirical": p.empirical,
             "empirical_ci_half_width": p.empirical_ci_half_width}
            for p in outcome.yield_points]

    escapes = outcome.escapes
    if escapes is not None:
        payload["escapes"] = {
            "n_undetected_total": escapes.n_undetected_total,
            "n_analyzed": escapes.n_analyzed,
            "n_functional_escapes": escapes.n_functional_escapes,
            "n_benign": escapes.n_benign,
            "violations": escapes.violations_histogram()}

    return payload


def _print_stage_tables(plan: Any, outcome: Any, label: str) -> None:
    """Print one (variant's) study outcome: the per-stage console tables
    backing the JSON fragments of :func:`_stage_payload`."""
    from ..core import format_confidence, format_table

    calibration = outcome.calibration
    if calibration is not None:
        cal_rows = [[name, f"{calibration.sigmas[name]:.3e}",
                     f"{calibration.means[name]:+.3e}", f"{delta:.3e}"]
                    for name, delta in calibration.deltas.items()]
        console.info()
        console.info(format_table(
            ["invariance", "sigma", "mean", f"delta (k={plan.k:g})"],
            cal_rows,
            title=f"SymBIST window calibration ({label} stage 1)"))

    if plan.campaign_stage is not None:
        rows: List[List[Any]] = []
        for block, result in outcome.results.items():
            report = result.block_report(block)
            rows.append([block, report.n_defects, report.n_simulated,
                         result.n_detected,
                         f"{report.modeled_sim_time:.0f}",
                         format_confidence(report.coverage.value,
                                           report.coverage.ci_half_width)])
        title = (f"SymBIST per-block defect campaigns "
                 f"({label} stages 2-3)") if plan.per_block \
            else f"SymBIST defect campaign ({label} stage 2)"
        console.info()
        console.info(format_table(
            ["A/M-S block", "#defects", "#simulated", "#detected",
             "model sim time (s)", "L-W defect coverage"], rows,
            title=title))

    if plan.yield_stage is not None:
        yield_rows = [[f"{p.k:g}", f"{p.analytic_ppm:.3g}",
                       f"{p.empirical:.4f}"
                       if p.empirical is not None else "-",
                       f"{p.empirical_ci_half_width:.4f}"
                       if p.empirical_ci_half_width is not None else "-"]
                      for p in outcome.yield_points]
        console.info()
        console.info(format_table(
            ["k", "analytic (ppm)", "empirical", "95% CI"],
            yield_rows, title=f"yield loss versus k ({label} stage 3)"))

    escapes = outcome.escapes
    if escapes is not None:
        console.info()
        console.info(f"escape analysis: {escapes.n_analyzed} of "
                     f"{escapes.n_undetected_total} undetected defects "
                     f"analysed, {escapes.n_functional_escapes} functional "
                     f"escapes, {escapes.n_benign} benign")
        for name, count in sorted(escapes.violations_histogram().items()):
            console.info(f"  {name}: {count}")


def _legacy_study_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """The shared campaign flags of the legacy study subcommands, as spec
    overrides (study-level ``k`` feeds every stage declaring it)."""
    return {
        "seed": args.seed,
        "k": args.k,
        "calibrate.n_monte_carlo": args.monte_carlo,
        "campaign.blocks": args.blocks or None,  # bare --blocks == all
        "campaign.samples": args.samples,
        "campaign.exhaustive": args.exhaustive,
        "campaign.exhaustive_threshold": args.exhaustive_threshold,
        "campaign.stop_on_detection": not args.no_stop_on_detection,
        "campaign.batch_size": args.batch_size,
    }


def cmd_run(args: argparse.Namespace) -> int:
    from .spec import load_study
    spec = load_study(args.study)
    assignments = [_parse_set_assignment(entry)
                   for entry in (args.set or [])]
    if assignments:
        spec = spec.override(dict(assignments))
    return _run_study(args, spec)


def cmd_pipeline(args: argparse.Namespace) -> int:
    from .spec import CALIBRATE_THEN_CAMPAIGN
    spec = CALIBRATE_THEN_CAMPAIGN.override(_legacy_study_overrides(args))
    return _run_study(args, spec, label="pipeline")


def cmd_yield_study(args: argparse.Namespace) -> int:
    from .spec import YIELD_LOSS_STUDY
    spec = YIELD_LOSS_STUDY.override({
        **_legacy_study_overrides(args),
        "yield.k_values": [float(value) for value in args.k_values],
        "escape.max_escape_defects": args.max_escape_defects})
    return _run_study(args, spec, label="study")


def cmd_block_study(args: argparse.Namespace) -> int:
    from .spec import BLOCK_STUDY
    spec = BLOCK_STUDY.override(_legacy_study_overrides(args))
    return _run_study(args, spec, label="block-study")


def _open_cache(args: argparse.Namespace):
    from . import ResultCache
    return ResultCache(args.cache_dir,
                       max_bytes=args.cache_max_bytes,
                       max_age=args.cache_max_age)


def cmd_cache_stats(args: argparse.Namespace) -> int:
    import time
    cache = _open_cache(args)
    artifacts = len(cache)
    total = cache.total_bytes()
    ages: List[float] = []
    now = time.time()
    for key in cache.keys():
        created = cache._created_of(cache._path(key))
        if created is not None:
            ages.append(now - created)
    expired = None
    if args.cache_max_age is not None:
        expired = sum(1 for age in ages if age > args.cache_max_age)
    console.info(f"cache {args.cache_dir}: {artifacts} artifacts, "
                 f"{total} bytes")
    if ages:
        console.info(f"  age: oldest {max(ages):.0f}s, "
                     f"newest {min(ages):.0f}s")
    if expired is not None:
        console.info(f"  expired (> {args.cache_max_age:g}s): {expired}")
    payload = {"cache_dir": args.cache_dir, "artifacts": artifacts,
               "total_bytes": total,
               "oldest_age": max(ages) if ages else None,
               "newest_age": min(ages) if ages else None}
    if expired is not None:
        payload["expired"] = expired
    _emit(args, payload)
    return 0


def cmd_cache_evict(args: argparse.Namespace) -> int:
    from ..circuit.errors import EngineError
    if args.cache_max_bytes is None and args.cache_max_age is None:
        raise EngineError(
            "cache evict needs at least one bound: --cache-max-bytes "
            "and/or --cache-max-age")
    cache = _open_cache(args)
    before = cache.total_bytes()
    removed = cache.evict()
    after = cache.total_bytes()
    console.info(f"cache {args.cache_dir}: evicted {removed} artifacts "
                 f"({before - after} bytes), {len(cache)} artifacts "
                 f"({after} bytes) kept")
    _emit(args, {"cache_dir": args.cache_dir, "evicted": removed,
                 "freed_bytes": before - after, "artifacts": len(cache),
                 "total_bytes": after})
    return 0


def cmd_warehouse_index(args: argparse.Namespace) -> int:
    from ..warehouse import index_cache, open_warehouse
    connection = open_warehouse(args.db)
    try:
        written = index_cache(connection, args.cache_dir, study=args.study)
    finally:
        connection.close()
    console.info(f"indexed {written} artifacts from {args.cache_dir} "
                 f"into {args.db}")
    _emit(args, {"db": args.db, "cache_dir": args.cache_dir,
                 "study": args.study, "rows": written})
    return 0


def _render_query(args: argparse.Namespace, headers: List[str],
                  rows: List[Tuple[Any, ...]],
                  extra: Dict[str, Any]) -> int:
    from ..core import format_table
    if rows:
        console.info(format_table(headers,
                                  [list(row) for row in rows]))
    console.info(f"{len(rows)} row{'s' if len(rows) != 1 else ''}")
    _emit(args, {**extra, "headers": headers,
                 "rows": [list(row) for row in rows]})
    return 0


def cmd_warehouse_query(args: argparse.Namespace) -> int:
    from ..warehouse import open_warehouse, run_canned_query
    connection = open_warehouse(args.db, readonly=True)
    try:
        headers, rows = run_canned_query(connection, args.report)
    finally:
        connection.close()
    return _render_query(args, headers, rows,
                         {"db": args.db, "report": args.report})


def cmd_warehouse_sql(args: argparse.Namespace) -> int:
    from ..warehouse import open_warehouse, run_sql
    connection = open_warehouse(args.db, readonly=True)
    try:
        headers, rows = run_sql(connection, args.sql)
    finally:
        connection.close()
    return _render_query(args, headers, rows,
                         {"db": args.db, "sql": args.sql})


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from . import format_summary, read_trace, summarize_trace
    summary = summarize_trace(read_trace(args.trace_file))
    console.info(format_summary(summary))
    _emit(args, {
        "backend": summary.backend, "workers": summary.workers,
        "mode": summary.mode, "wall_time": summary.wall_time,
        **summary.counts,
        "n_items": summary.n_items,
        "phase_seconds": summary.phase_seconds,
        "stages": [{"stage": row.stage, "total": row.total,
                    "executed": row.executed, "cached": row.cached,
                    "failed": row.failed, "skipped": row.skipped,
                    "items": row.items,
                    "execute_seconds": row.execute_seconds,
                    "mean_queue_wait": row.mean_queue_wait}
                   for row in summary.stages],
        "workers_table": [{"worker": row.worker, "tasks": row.tasks,
                           "busy_seconds": row.busy_seconds,
                           "utilization":
                               row.utilization(summary.wall_time)}
                          for row in summary.worker_rows],
        "critical_path": summary.critical_path,
        "critical_path_seconds": summary.critical_path_seconds})
    return 0


def _chrome_output_path(trace_file: str) -> str:
    base = trace_file[:-len(".jsonl")] if trace_file.endswith(".jsonl") \
        else trace_file
    return base + ".chrome.json"


def cmd_trace_export(args: argparse.Namespace) -> int:
    from . import chrome_trace, read_trace
    data = chrome_trace(read_trace(args.trace_file))
    output = args.output or _chrome_output_path(args.trace_file)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    console.info(f"wrote {output} ({len(data['traceEvents'])} trace events; "
                 f"load it in Perfetto or chrome://tracing)")
    return 0


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", required=True,
                        help="directory of the content-addressed result "
                             "cache")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="size budget; least-recently-used artifacts "
                             "beyond it are evicted")
    parser.add_argument("--cache-max-age", type=float, default=None,
                        help="artifact lifetime in seconds; older artifacts "
                             "are expired")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the machine-readable results to this file")
    _add_output_arguments(parser)


_DEFAULT_STATE_DIR = ".repro-service"


def _service_address(args: argparse.Namespace) -> str:
    """The daemon control address a client subcommand should talk to."""
    if getattr(args, "control", None):
        return args.control
    return "unix:%s" % os.path.join(
        getattr(args, "state_dir", None) or _DEFAULT_STATE_DIR,
        "control.sock")


def _add_service_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--control", default=None, metavar="ADDR",
                        help="daemon control socket (unix:PATH or "
                             "tcp:HOST:PORT; default: "
                             "unix:<state-dir>/control.sock)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="daemon state directory the default control "
                             f"socket lives in (default: "
                             f"{_DEFAULT_STATE_DIR})")
    _add_output_arguments(parser)


def cmd_serve(args: argparse.Namespace) -> int:
    from ..service import CampaignDaemon
    daemon = CampaignDaemon(
        state_dir=args.state_dir or _DEFAULT_STATE_DIR,
        control=args.control,
        worker_socket=args.worker_socket,
        spawn_workers=args.spawn_workers,
        serial=args.serial,
        max_concurrent=args.max_concurrent,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age,
        task_timeout=args.task_timeout)
    console.info(f"campaign daemon up: control {daemon.control_address}")
    if daemon.worker_address is not None:
        console.info(f"workers connect with: repro-campaign worker "
                     f"--connect {daemon.worker_address}")
    console.info(f"state dir: {daemon.state_dir}")
    daemon.serve_forever()
    console.info("campaign daemon stopped")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from ..service import run_worker
    executed = run_worker(args.connect, max_tasks=args.max_tasks,
                          crash_after=args.crash_after)
    console.info(f"worker done: {executed} tasks executed")
    return 0


def _load_spec_with_overrides(args: argparse.Namespace):
    from .spec import load_study
    spec = load_study(args.study)
    assignments = [_parse_set_assignment(entry)
                   for entry in (args.set or [])]
    if assignments:
        spec = spec.override(dict(assignments))
    return spec.validated()


def cmd_submit(args: argparse.Namespace) -> int:
    from ..service import client
    spec = _load_spec_with_overrides(args)
    address = _service_address(args)
    response = client.submit(address, spec.to_jsonable(), wait=args.wait)
    console.info(f"submitted {spec.name!r} as {response['id']} "
                 f"[{response['state']}] to {address}")
    if not args.wait:
        return 0
    state = response["state"]
    if state != "done":
        console.error(f"study {response['id']} finished as {state}"
                      + (f": {response['error']}"
                         if response.get("error") else ""))
        return 1
    result = response.get("result")
    if result is not None:
        _emit(args, result)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from ..core import format_table
    from ..service import client
    response = client.status(_service_address(args), args.id,
                             with_result=bool(args.json_path))
    if args.id is not None:
        console.info(f"{response['id']}: {response['state']}"
                     + (f" ({response['error']})"
                        if response.get("error") else ""))
        if response.get("result_path"):
            console.info(f"result: {response['result_path']}")
        _emit(args, {key: value for key, value in response.items()
                     if key != "ok"})
        return 0
    rows = [[entry["id"], entry["name"], entry["state"],
             entry.get("error") or ""]
            for entry in response["studies"]]
    console.info(format_table(["id", "study", "state", "error"], rows,
                              title="campaign daemon studies"))
    _emit(args, {"studies": response["studies"]})
    return 0


def cmd_attach(args: argparse.Namespace) -> int:
    from ..service import client
    final_state = None
    for line in client.attach(_service_address(args), args.id):
        if isinstance(line, dict) and line.get("done"):
            final_state = line.get("state")
            if line.get("error"):
                console.error(f"{args.id}: {line['error']}")
            break
        print(json.dumps(line, sort_keys=True), flush=True)
    console.info(f"{args.id}: {final_state or 'detached'}")
    return 0 if final_state in (None, "done") else 1


def cmd_cancel(args: argparse.Namespace) -> int:
    from ..service import client
    response = client.cancel(_service_address(args), args.id)
    console.info(f"cancel requested for {response['id']} "
                 f"(was {response['state']})")
    return 0


def cmd_shutdown(args: argparse.Namespace) -> int:
    from ..service import client
    client.shutdown(_service_address(args))
    console.info("daemon shutdown requested; running studies persist "
                 "and resume on the next `repro-campaign serve`")
    return 0


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--blocks", nargs="*", default=None,
                        help="restrict the campaign to these block paths")
    parser.add_argument("--samples", type=int, default=60,
                        help="LWRS budget for blocks too large to exhaust")
    parser.add_argument("--exhaustive", action="store_true",
                        help="simulate every defect of every block")
    parser.add_argument("--exhaustive-threshold", type=int, default=120,
                        help="blocks with at most this many defects are "
                             "simulated exhaustively")
    parser.add_argument("--no-stop-on-detection", action="store_true",
                        help="run the full test even after detection")
    parser.add_argument("--batch-size", type=_positive_int, default=1,
                        help="defects evaluated per task as one vectorized "
                             "sweep against a cached defect-free golden "
                             "trace (results are bit-identical for every "
                             "batch size)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="SymBIST reproduction campaigns through the "
                    "parallel/cached execution engine")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="compile and run a declarative study spec (TOML/JSON file or "
             "canned study name) as one task graph")
    run.add_argument("study",
                     help="path to a .toml/.json study spec, or a canned "
                          "study name (calibrate-then-campaign, "
                          "block-study, yield-loss-study)")
    run.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                     help="override a spec entry: seed=..., <param>=... "
                          "(study-wide), <stage>.<param>=... (one stage) or "
                          "dut.<field>=... (the device under test, e.g. "
                          "dut.resolution_bits=8); repeatable")
    _add_engine_arguments(run)
    run.set_defaults(func=cmd_run)

    calibrate = sub.add_parser(
        "calibrate", help="Monte Carlo window calibration (delta = k*sigma)")
    _add_common_arguments(calibrate)
    calibrate.set_defaults(func=cmd_calibrate)

    campaign = sub.add_parser(
        "campaign", help="defect-simulation campaign (Table I style)")
    _add_common_arguments(campaign)
    _add_campaign_arguments(campaign)
    campaign.set_defaults(func=cmd_campaign)

    pipeline = sub.add_parser(
        "pipeline",
        help="calibrate -> campaign as one dependency-aware task graph")
    _add_common_arguments(pipeline)
    _add_campaign_arguments(pipeline)
    pipeline.set_defaults(func=cmd_pipeline)

    block_study = sub.add_parser(
        "block-study",
        help="per-block window calibration + every block's defect campaign "
             "as one task graph (Table I in one engine run)")
    _add_common_arguments(block_study)
    _add_campaign_arguments(block_study)
    block_study.set_defaults(func=cmd_block_study)

    study = sub.add_parser(
        "yield-study",
        help="calibrate -> campaign -> yield sweep -> escape analysis as "
             "one task graph")
    _add_common_arguments(study)
    _add_campaign_arguments(study)
    study.add_argument("--k-values", type=float, nargs="+",
                       default=[2.0, 3.0, 4.0, 5.0, 6.0],
                       help="window multipliers of the yield-loss sweep")
    study.add_argument("--max-escape-defects", type=int, default=20,
                       help="functional-test budget: analyse at most this "
                            "many undetected defects")
    study.set_defaults(func=cmd_yield_study)

    trace = sub.add_parser(
        "trace",
        help="analyse a JSONL telemetry trace saved with --trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="critical path, per-stage/per-worker utilization and "
             "queue-wait breakdown of a trace")
    summarize.add_argument("trace_file",
                           help="JSONL trace written by --trace")
    summarize.add_argument("--json", dest="json_path", default=None,
                           help="write the machine-readable summary to "
                                "this file")
    _add_output_arguments(summarize)
    summarize.set_defaults(func=cmd_trace_summarize)
    export = trace_sub.add_parser(
        "export", help="convert a JSONL trace for an external viewer")
    export.add_argument("trace_file", help="JSONL trace written by --trace")
    export.add_argument("--format", choices=("chrome",), default="chrome",
                        help="output format (chrome: trace-event JSON for "
                             "Perfetto / chrome://tracing)")
    export.add_argument("--output", "-o", default=None,
                        help="output path (default: the trace path with a "
                             ".chrome.json suffix)")
    _add_output_arguments(export)
    export.set_defaults(func=cmd_trace_export)

    cache = sub.add_parser(
        "cache", help="inspect or garbage-collect a result-cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="artifact count, footprint and age of a cache")
    _add_cache_arguments(stats)
    stats.set_defaults(func=cmd_cache_stats)
    evict = cache_sub.add_parser(
        "evict", help="apply --cache-max-bytes/--cache-max-age bounds now")
    _add_cache_arguments(evict)
    evict.set_defaults(func=cmd_cache_evict)

    warehouse = sub.add_parser(
        "warehouse",
        help="SQLite index of completed results: backfill it from a cache "
             "directory and query it with canned reports or raw SQL")
    warehouse_sub = warehouse.add_subparsers(dest="warehouse_command",
                                             required=True)
    index = warehouse_sub.add_parser(
        "index",
        help="backfill a warehouse database from a cache directory")
    index.add_argument("cache_dir",
                       help="result-cache directory to index")
    index.add_argument("--db", required=True,
                       help="SQLite warehouse database (created on demand)")
    index.add_argument("--study", default=None,
                       help="study name to record on the indexed rows "
                            "(default: none)")
    index.add_argument("--json", dest="json_path", default=None,
                       help="write the machine-readable summary to this "
                            "file")
    _add_output_arguments(index)
    index.set_defaults(func=cmd_warehouse_index)
    query = warehouse_sub.add_parser(
        "query",
        help="run a canned report: per-block-coverage, slowest-stages or "
             "cache-composition")
    query.add_argument("report",
                       help="report name (per-block-coverage, "
                            "slowest-stages, cache-composition)")
    query.add_argument("--db", required=True,
                       help="SQLite warehouse database (read-only)")
    query.add_argument("--json", dest="json_path", default=None,
                       help="write the headers and rows to this file")
    _add_output_arguments(query)
    query.set_defaults(func=cmd_warehouse_query)
    sql = warehouse_sub.add_parser(
        "sql", help="run one SQL statement against the warehouse "
                    "(read-only)")
    sql.add_argument("sql", metavar="SQL",
                     help="SQL to execute, e.g. \"SELECT block, coverage "
                          "FROM results WHERE stage_kind = "
                          "'block-summary'\"")
    sql.add_argument("--db", required=True,
                     help="SQLite warehouse database (read-only)")
    sql.add_argument("--json", dest="json_path", default=None,
                     help="write the headers and rows to this file")
    _add_output_arguments(sql)
    sql.set_defaults(func=cmd_warehouse_sql)

    serve = sub.add_parser(
        "serve",
        help="persistent campaign daemon: submit studies over a control "
             "socket onto one shared scheduler, warm cache and worker pool")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="root of the daemon's persistent state: study "
                            "records, traces, results, cache and the "
                            "default sockets (default: "
                            f"{_DEFAULT_STATE_DIR})")
    serve.add_argument("--control", default=None, metavar="ADDR",
                       help="control socket address (unix:PATH or "
                            "tcp:HOST:PORT; default: "
                            "unix:<state-dir>/control.sock)")
    serve.add_argument("--worker-socket", default=None, metavar="ADDR",
                       help="socket remote workers connect to (default: "
                            "unix:<state-dir>/workers.sock)")
    serve.add_argument("--spawn-workers", type=int, default=0,
                       metavar="N",
                       help="local worker processes to launch immediately; "
                            "they persist across study runs (default: 0 -- "
                            "workers join with `repro-campaign worker`)")
    serve.add_argument("--serial", action="store_true",
                       help="execute studies in-process instead of on "
                            "socket workers (same control protocol)")
    serve.add_argument("--max-concurrent", type=_positive_int, default=2,
                       help="studies executing simultaneously on the "
                            "shared backend")
    serve.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-task deadline; a worker exceeding it is "
                            "declared dead and its task is requeued")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="shared cache size budget (LRU eviction)")
    serve.add_argument("--cache-max-age", type=float, default=None,
                       help="shared cache artifact lifetime in seconds")
    _add_output_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="execute tasks for a socket backend or daemon somewhere else")
    worker.add_argument("--connect", required=True, metavar="ADDR",
                        help="worker socket of the backend/daemon "
                             "(unix:PATH or tcp:HOST:PORT)")
    worker.add_argument("--max-tasks", type=_positive_int, default=None,
                        help="exit cleanly after this many tasks "
                             "(default: run until the server says bye)")
    worker.add_argument("--crash-after", type=int, default=None,
                        metavar="N",
                        help="testing aid: hard-exit on receiving task "
                             "N+1, exercising the dead-worker requeue path")
    _add_output_arguments(worker)
    worker.set_defaults(func=cmd_worker)

    submit = sub.add_parser(
        "submit",
        help="submit a study spec to a running campaign daemon")
    submit.add_argument("study",
                        help="path to a .toml/.json study spec, or a "
                             "canned study name")
    submit.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override a spec entry (same syntax as "
                             "`repro-campaign run --set`); repeatable")
    submit.add_argument("--wait", action="store_true",
                        help="block until the study finishes and report "
                             "its result")
    submit.add_argument("--json", dest="json_path", default=None,
                        help="with --wait: write the study's result "
                             "payload (the `run --json` schema) to this "
                             "file")
    _add_service_client_arguments(submit)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status",
        help="list a daemon's studies, or show one study's state")
    status.add_argument("id", nargs="?", default=None,
                        help="study id (omit to list every study)")
    status.add_argument("--json", dest="json_path", default=None,
                        help="write the machine-readable status to this "
                             "file (single-study status includes the "
                             "result payload when available)")
    _add_service_client_arguments(status)
    status.set_defaults(func=cmd_status)

    attach = sub.add_parser(
        "attach",
        help="stream a daemon study's live telemetry events (JSONL trace "
             "schema) to stdout")
    attach.add_argument("id", help="study id to attach to")
    _add_service_client_arguments(attach)
    attach.set_defaults(func=cmd_attach)

    cancel = sub.add_parser(
        "cancel", help="request cooperative cancellation of a daemon study")
    cancel.add_argument("id", help="study id to cancel")
    _add_service_client_arguments(cancel)
    cancel.set_defaults(func=cmd_cancel)

    shutdown = sub.add_parser(
        "shutdown",
        help="stop a running campaign daemon (unfinished studies resume "
             "on restart)")
    _add_service_client_arguments(shutdown)
    shutdown.set_defaults(func=cmd_shutdown)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        # A bare invocation gets the subcommand list, not an argparse
        # "the following arguments are required" error.
        console.configure()
        parser = build_parser()
        console.error(
            f"repro-campaign {_package_version()}: missing a subcommand")
        console.error()
        parser.print_usage(sys.stderr)
        console.error("\nsubcommands:")
        for action in parser._subparsers._group_actions:  # type: ignore[union-attr]
            for choice in action._choices_actions:
                console.error(f"  {choice.dest:<12} {choice.help}")
        console.error("\nrun `repro-campaign <subcommand> --help` for "
                      "details")
        return 2
    args = build_parser().parse_args(argv)
    console.configure(quiet=getattr(args, "quiet", False),
                      verbose=getattr(args, "verbose", False))
    from ..circuit import ReproError
    try:
        return args.func(args)
    except ReproError as exc:
        console.error(f"repro-campaign: error: {exc}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
