"""CLI console: ``logging``-backed output honoring ``--quiet``/``--verbose``.

``repro-campaign`` used to bare-``print`` its tables and status lines; this
module routes everything through one ``logging`` logger instead, so
``--quiet`` suppresses the narration (errors still reach stderr) and
``--verbose`` turns on the engine's debug chatter -- without changing what a
default invocation looks like.

Two details matter for testability:

* Handlers resolve ``sys.stdout``/``sys.stderr`` **at emit time**, not at
  handler construction, so pytest's ``capsys`` (which swaps the module
  attributes) sees every line.
* :func:`configure` is idempotent -- repeated ``main()`` invocations in one
  process (the CLI test-suite pattern) never stack handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Callable, IO

#: The CLI logger; ``INFO`` lines go to stdout, ``WARNING`` and up to stderr.
LOGGER_NAME = "repro.campaign"

logger = logging.getLogger(LOGGER_NAME)


class _DeferredStreamHandler(logging.Handler):
    """Writes to whatever the resolver returns *now* (capsys-safe)."""

    def __init__(self, resolver: Callable[[], IO[str]]) -> None:
        super().__init__()
        self._resolver = resolver

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = self._resolver()
            stream.write(self.format(record) + "\n")
            stream.flush()
        except Exception:  # pragma: no cover - mirror logging's resilience
            self.handleError(record)


class _BelowWarning(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < logging.WARNING


def configure(quiet: bool = False, verbose: bool = False) -> logging.Logger:
    """(Re)configure the CLI logger; returns it.

    ``quiet`` raises the threshold to WARNING (tables and status lines are
    suppressed, errors still print); ``verbose`` lowers it to DEBUG.  The
    message itself is the whole format -- the console is a narration
    channel, not a log file.
    """
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    out = _DeferredStreamHandler(lambda: sys.stdout)
    out.addFilter(_BelowWarning())
    err = _DeferredStreamHandler(lambda: sys.stderr)
    err.setLevel(logging.WARNING)
    formatter = logging.Formatter("%(message)s")
    out.setFormatter(formatter)
    err.setFormatter(formatter)
    logger.addHandler(out)
    logger.addHandler(err)
    logger.setLevel(logging.DEBUG if verbose
                    else logging.WARNING if quiet else logging.INFO)
    logger.propagate = False
    return logger


def _ensure_configured() -> None:
    if not logger.handlers:
        configure()


def info(message: Any = "") -> None:
    """A normal narration line (stdout; suppressed by ``--quiet``)."""
    _ensure_configured()
    logger.info("%s", message)


def debug(message: Any = "") -> None:
    """Detail shown only with ``--verbose``."""
    _ensure_configured()
    logger.debug("%s", message)


def warn(message: Any = "") -> None:
    """A warning (stderr; survives ``--quiet``)."""
    _ensure_configured()
    logger.warning("%s", message)


def error(message: Any = "") -> None:
    """An error line (stderr; survives ``--quiet``)."""
    _ensure_configured()
    logger.error("%s", message)
