"""Campaign executor: seeding, cache orchestration, instrumentation.

:class:`CampaignEngine` takes a :class:`~repro.engine.task.TaskGraph` and a
*worker* callable and produces one result per task plus a
:class:`CampaignReport` of timing/progress instrumentation.  The execution
pipeline is:

1. derive one ``np.random.SeedSequence`` child per task (by task index, from
   the engine root seed) -- identical seeds whatever backend runs the task;
2. resolve tasks against the :class:`~repro.engine.cache.ResultCache` (when
   configured and the task carries a ``spec``);
3. hand the remaining tasks to the execution backend
   (:class:`~repro.engine.backends.SerialBackend` by default);
4. store freshly computed results back into the cache and assemble all
   results in task order.

The worker contract is ``worker(context, task, rng) -> result``.  ``context``
is an arbitrary (picklable, for multiprocess execution) object shared by all
tasks of a run; ``rng`` is a ``numpy`` generator seeded from the task's own
``SeedSequence`` child, so results are independent of worker count and
completion order.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..circuit.errors import EngineError, TaskExecutionError
from .backends import ExecutionBackend, SerialBackend
from .cache import MISS, ResultCache
from .task import Task, TaskGraph


@dataclass(frozen=True)
class TaskOutcome:
    """One completed task, as seen by progress callbacks."""

    index: int
    task: Task
    result: Any
    duration: float
    from_cache: bool
    done: int
    total: int


#: ``progress(outcome)`` -- invoked once per completed task, in completion
#: order (cache hits first, then live executions as they finish).
ProgressCallback = Callable[[TaskOutcome], None]


@dataclass(frozen=True)
class ResultCodec:
    """Converts worker results to/from the JSON stored by the cache."""

    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]


#: Codec for results that are natively JSON-serialisable.
IDENTITY_CODEC = ResultCodec(encode=lambda value: value,
                             decode=lambda value: value)


@dataclass
class CampaignReport:
    """Timing and progress instrumentation of one engine run."""

    backend: str
    workers: int
    n_tasks: int
    n_executed: int
    n_cache_hits: int
    wall_time: float
    task_durations: Dict[str, float] = field(default_factory=dict)
    group_durations: Dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cache_hits / self.n_tasks if self.n_tasks else 0.0

    @property
    def tasks_per_second(self) -> float:
        return self.n_tasks / self.wall_time if self.wall_time > 0 else 0.0

    def summary(self) -> str:
        """One-line human-readable digest for logs and CLIs."""
        parts = [f"{self.n_tasks} tasks via {self.backend}"
                 f" ({self.workers} worker{'s' if self.workers != 1 else ''})",
                 f"{self.n_executed} executed",
                 f"{self.n_cache_hits} cached"
                 f" ({100.0 * self.cache_hit_rate:.0f}%)",
                 f"{self.wall_time:.2f}s wall",
                 f"{self.tasks_per_second:.1f} tasks/s"]
        return ", ".join(parts)


@dataclass
class EngineRun:
    """Results (in task order) and instrumentation of one engine run."""

    results: List[Any]
    report: CampaignReport
    task_ids: List[str] = field(default_factory=list)

    def result_for(self, task_id: str) -> Any:
        try:
            return self.results[self.task_ids.index(task_id)]
        except ValueError as exc:
            raise EngineError(f"run has no task {task_id!r}") from exc


def _seed_token(seed_material: Any) -> str:
    """Stable string identifying seed material inside cache keys."""
    if seed_material is None:
        return "none"
    if isinstance(seed_material, np.random.SeedSequence):
        return (f"entropy:{seed_material.entropy}"
                f"/spawn:{tuple(seed_material.spawn_key)}")
    return f"int:{int(seed_material)}"


def _execute_task(worker: Callable[[Any, Task, np.random.Generator], Any],
                  context: Any,
                  item: Tuple[int, Task, Any]) -> Tuple[int, Any, float]:
    """Run one task (in whatever process the backend chose).

    Module-level (and wrapped with :func:`functools.partial`) so the
    multiprocess backend can pickle it.  Failures are re-raised as
    :class:`TaskExecutionError` naming the task, so the parent process can
    attribute crashes even across the pool boundary.
    """
    index, task, seed_material = item
    rng = np.random.default_rng(seed_material)
    start = time.perf_counter()
    try:
        result = worker(context, task, rng)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError(
            f"task {task.task_id!r} failed: {type(exc).__name__}: {exc}") \
            from exc
    return index, result, time.perf_counter() - start


class CampaignEngine:
    """Executes a task graph through a backend with seeding + caching.

    Parameters
    ----------
    backend:
        Execution backend; defaults to :class:`SerialBackend` (bit-identical
        to the historical in-process loops).
    cache:
        Optional :class:`ResultCache`; only tasks carrying a ``spec``
        participate.
    seed:
        Root seed (``int`` or ``SeedSequence``) from which one child
        ``SeedSequence`` per task is spawned, by task index.
    progress:
        Optional default :data:`ProgressCallback`.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: Optional[ResultCache] = None,
                 seed: Union[int, np.random.SeedSequence] = 0,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.backend = backend or SerialBackend()
        self.cache = cache
        self.seed = seed
        self.progress = progress

    # -------------------------------------------------------------------- run
    def run(self, tasks: Union[TaskGraph, Sequence[Task]],
            worker: Callable[[Any, Task, np.random.Generator], Any],
            context: Any = None,
            codec: Optional[ResultCodec] = None,
            progress: Optional[ProgressCallback] = None) -> EngineRun:
        """Execute every task; results come back in task order."""
        graph = tasks if isinstance(tasks, TaskGraph) else TaskGraph(tasks)
        codec = codec or IDENTITY_CODEC
        progress = progress or self.progress
        n_tasks = len(graph)
        started = time.perf_counter()

        root = self.seed if isinstance(self.seed, np.random.SeedSequence) \
            else np.random.SeedSequence(self.seed)
        # Children are derived statelessly (not via root.spawn, which
        # advances the parent's spawn counter) so repeated runs of the same
        # engine -- or one sharing a caller-owned SeedSequence -- always see
        # identical per-task seeds.  For a fresh root this matches spawn().
        children = [np.random.SeedSequence(entropy=root.entropy,
                                           spawn_key=tuple(root.spawn_key)
                                           + (i,))
                    for i in range(n_tasks)]
        seeds = [task.seed if task.seed is not None else children[i]
                 for i, task in enumerate(graph)]

        results: List[Any] = [None] * n_tasks
        durations: Dict[str, float] = {}
        done = 0

        # ------------------------------------------------------ cache lookup
        keys: List[Optional[str]] = [None] * n_tasks
        pending: List[Tuple[int, Task, Any]] = []
        for i, task in enumerate(graph):
            if self.cache is not None and task.spec is not None:
                seed_token = None if task.deterministic \
                    else _seed_token(seeds[i])
                keys[i] = self.cache.key_for(task.spec, seed_token)
                stored = self.cache.get(keys[i])
                if stored is not MISS:
                    results[i] = codec.decode(stored)
                    durations[task.task_id] = 0.0
                    done += 1
                    if progress is not None:
                        progress(TaskOutcome(index=i, task=task,
                                             result=results[i], duration=0.0,
                                             from_cache=True, done=done,
                                             total=n_tasks))
                    continue
            pending.append((i, task, seeds[i]))
        n_cache_hits = done

        # --------------------------------------------------------- execution
        def on_result(outcome: Tuple[int, Any, float]) -> None:
            nonlocal done
            index, result, duration = outcome
            done += 1
            task = graph[index]
            # Store per completion (not after the whole run) so results of
            # completed tasks survive a later task failure or interrupt.
            if self.cache is not None and keys[index] is not None:
                self.cache.put(keys[index], codec.encode(result),
                               task_id=task.task_id, spec=task.spec)
            if progress is not None:
                progress(TaskOutcome(index=index, task=task, result=result,
                                     duration=duration, from_cache=False,
                                     done=done, total=n_tasks))

        fn = functools.partial(_execute_task, worker, context)
        for index, result, duration in self.backend.map_items(
                fn, pending, on_result=on_result):
            results[index] = result
            durations[graph[index].task_id] = duration

        # ------------------------------------------------------------ report
        group_durations: Dict[str, float] = {}
        for task in graph:
            if task.group is not None:
                group_durations[task.group] = \
                    group_durations.get(task.group, 0.0) \
                    + durations.get(task.task_id, 0.0)
        report = CampaignReport(
            backend=self.backend.name,
            workers=self.backend.workers,
            n_tasks=n_tasks,
            n_executed=len(pending),
            n_cache_hits=n_cache_hits,
            wall_time=time.perf_counter() - started,
            task_durations=durations,
            group_durations=group_durations)
        return EngineRun(results=results, report=report, task_ids=graph.ids())
