"""Campaign executor: seeding, cache orchestration, graph scheduling.

:class:`CampaignEngine` takes a :class:`~repro.engine.task.TaskGraph` and a
*worker* callable and produces one result per task plus a
:class:`CampaignReport` of timing/progress instrumentation.  The execution
pipeline is:

1. derive one ``np.random.SeedSequence`` child per task (by task index, from
   the engine root seed) -- identical seeds whatever backend runs the task;
2. resolve tasks against the :class:`~repro.engine.cache.ResultCache` (when
   configured and the task carries a ``spec``);
3. hand the remaining tasks to the execution backend
   (:class:`~repro.engine.backends.SerialBackend` by default);
4. store freshly computed results back into the cache and assemble all
   results in task order.

Flat graphs (no dependency edges) are executed in one batch through
:meth:`~repro.engine.backends.ExecutionBackend.map_items`.  Graphs *with*
edges go through a topological scheduler instead: tasks are dispatched to the
backend's :class:`~repro.engine.backends.WorkStream` the moment their last
parent completes (no stage barriers), a cache hit on a parent unblocks its
children immediately without touching the backend, and a failed task marks
every descendant ``skipped`` while the rest of the graph keeps running.

Worker contract
---------------
Flat graphs: ``worker(context, task, rng) -> result``.  Dependency graphs:
``worker(context, task, rng, inputs) -> result`` where ``inputs`` maps each
parent task id to its result (empty for root tasks).  ``context`` is an
arbitrary (picklable, for multiprocess execution) object shared by all tasks
of a run; ``rng`` is a ``numpy`` generator seeded from the task's own
``SeedSequence`` child, so results are independent of worker count and
completion order.
"""

from __future__ import annotations

import functools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..circuit.errors import EngineError, TaskExecutionError
from .backends import ExecutionBackend, SerialBackend
from .cache import MISS, ResultCache
from .task import Task, TaskGraph
from .telemetry import TaskSpan, TelemetryBus

#: Per-task terminal states recorded in :attr:`EngineRun.statuses`.
STATUS_EXECUTED = "executed"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class TaskOutcome:
    """One completed task, as seen by progress callbacks."""

    index: int
    task: Task
    result: Any
    duration: float
    from_cache: bool
    done: int
    total: int


#: ``progress(outcome)`` -- invoked once per completed task, in completion
#: order (cache hits first, then live executions as they finish).  Failed and
#: skipped tasks are not reported through progress; read
#: :attr:`EngineRun.statuses` instead.
ProgressCallback = Callable[[TaskOutcome], None]


@dataclass(frozen=True)
class ResultCodec:
    """Converts worker results to/from the JSON stored by the cache.

    ``sidecar=True`` marks the encoded result as array-heavy: the cache
    externalizes its long float lists to ``.npy`` sidecar files instead of
    inlining them in the JSON entry (bit-identical on read either way; see
    :mod:`repro.engine.cache`).
    """

    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]
    sidecar: bool = False


#: Codec for results that are natively JSON-serialisable.
IDENTITY_CODEC = ResultCodec(encode=lambda value: value,
                             decode=lambda value: value)

#: A codec argument: one codec for every task, or a per-task resolver
#: (used by pipelines whose stages store different result shapes).
CodecArg = Optional[Union[ResultCodec, Callable[[Task], ResultCodec]]]


@dataclass
class CampaignReport:
    """Timing and progress instrumentation of one engine run."""

    backend: str
    workers: int
    n_tasks: int
    n_executed: int
    n_cache_hits: int
    wall_time: float
    task_durations: Dict[str, float] = field(default_factory=dict)
    group_durations: Dict[str, float] = field(default_factory=dict)
    #: Execution time per pipeline stage (only when the run was given a
    #: ``stage_of`` mapping; pipelines pass theirs automatically).  Unlike
    #: :attr:`group_durations` -- whose labels a task may override, e.g. with
    #: its block path -- this always aggregates by stage.
    stage_durations: Dict[str, float] = field(default_factory=dict)
    #: Completed-task count per pipeline stage (same conditions).
    stage_counts: Dict[str, int] = field(default_factory=dict)
    #: Tasks whose worker raised (dependency-graph runs only).
    n_failed: int = 0
    #: Tasks never dispatched because an ancestor failed.
    n_skipped: int = 0
    #: Failed-task count per pipeline stage (same conditions as
    #: :attr:`stage_counts`).
    stage_failed: Dict[str, int] = field(default_factory=dict)
    #: Skipped-task count per pipeline stage.
    stage_skipped: Dict[str, int] = field(default_factory=dict)
    #: Completed work items per pipeline stage: the sum of the completed
    #: tasks' :attr:`~repro.engine.task.Task.weight`, so a batched campaign
    #: stage still reports its per-defect total.  Equals
    #: :attr:`stage_counts` when every task has weight 1.
    stage_items: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cache_hits / self.n_tasks if self.n_tasks else 0.0

    @property
    def tasks_per_second(self) -> float:
        """Executed-task throughput: cache hits are lookups, not work, so
        they are excluded (a warm-cache run reports ~0 tasks/s instead of
        an absurd replay rate).  See :attr:`graph_tasks_per_second` for the
        graph-resolution rate including hits."""
        return self.n_executed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def graph_tasks_per_second(self) -> float:
        """Graph-resolution throughput: every task (executed, cached,
        failed) over the wall time."""
        return self.n_tasks / self.wall_time if self.wall_time > 0 else 0.0

    def summary(self) -> str:
        """One-line human-readable digest for logs and CLIs."""
        parts = [f"{self.n_tasks} tasks via {self.backend}"
                 f" ({self.workers} worker{'s' if self.workers != 1 else ''})",
                 f"{self.n_executed} executed",
                 f"{self.n_cache_hits} cached"
                 f" ({100.0 * self.cache_hit_rate:.0f}%)"]
        if self.n_failed or self.n_skipped:
            parts.append(f"{self.n_failed} failed")
            parts.append(f"{self.n_skipped} skipped")
        parts.extend([f"{self.wall_time:.2f}s wall",
                      f"{self.tasks_per_second:.1f} tasks/s"])
        return ", ".join(parts)

    def stage_summary(self) -> str:
        """One-line per-stage breakdown (empty without stage tagging).

        Stages whose every task failed or was skipped have no recorded
        durations, so the iteration spans all per-stage tables -- a failing
        stage stays visible with its failed/skipped counts.
        """
        stages = list(self.stage_durations)
        for table in (self.stage_counts, self.stage_failed,
                      self.stage_skipped):
            stages.extend(stage for stage in table if stage not in stages)
        parts = []
        for stage in stages:
            part = (f"{stage} {self.stage_counts.get(stage, 0)} tasks/"
                    f"{self.stage_durations.get(stage, 0.0):.2f}s")
            items = self.stage_items.get(stage, 0)
            if items != self.stage_counts.get(stage, 0):
                # Batched stages: the per-item (e.g. per-defect) total
                # differs from the task count, so report both.
                part += f" [{items} items]"
            failed = self.stage_failed.get(stage, 0)
            skipped = self.stage_skipped.get(stage, 0)
            if failed or skipped:
                part += f" ({failed} failed, {skipped} skipped)"
            parts.append(part)
        return ", ".join(parts)


@dataclass
class EngineRun:
    """Results (in task order) and instrumentation of one engine run."""

    results: List[Any]
    report: CampaignReport
    task_ids: List[str] = field(default_factory=list)
    #: Terminal state per task id: ``executed``, ``cached``, ``failed`` or
    #: ``skipped``.  Failed/skipped tasks have ``None`` in :attr:`results`.
    statuses: Dict[str, str] = field(default_factory=dict)
    #: Error message per failed task id.
    errors: Dict[str, str] = field(default_factory=dict)
    #: True when the run stopped early because its ``cancel`` probe fired;
    #: unresolved tasks are recorded as ``skipped``.
    cancelled: bool = False

    def result_for(self, task_id: str) -> Any:
        try:
            return self.results[self.task_ids.index(task_id)]
        except ValueError as exc:
            raise EngineError(f"run has no task {task_id!r}") from exc

    @property
    def ok(self) -> bool:
        """True when every task completed (none failed or skipped)."""
        return not self.errors and \
            STATUS_SKIPPED not in self.statuses.values()

    def failed_tasks(self) -> List[str]:
        return [tid for tid in self.task_ids if tid in self.errors]

    def skipped_tasks(self) -> List[str]:
        return [tid for tid in self.task_ids
                if self.statuses.get(tid) == STATUS_SKIPPED]


def _seed_token(seed_material: Any) -> str:
    """Stable string identifying seed material inside cache keys."""
    if seed_material is None:
        return "none"
    if isinstance(seed_material, np.random.SeedSequence):
        return (f"entropy:{seed_material.entropy}"
                f"/spawn:{tuple(seed_material.spawn_key)}")
    return f"int:{int(seed_material)}"


def _execute_task(worker: Callable[[Any, Task, np.random.Generator], Any],
                  context: Any,
                  item: Tuple[int, Task, Any]
                  ) -> Tuple[int, Any, float, TaskSpan]:
    """Run one flat-graph task (in whatever process the backend chose).

    Module-level (and wrapped with :func:`functools.partial`) so the
    multiprocess backend can pickle it.  Failures are re-raised as
    :class:`TaskExecutionError` naming the task, so the parent process can
    attribute crashes even across the pool boundary.  The returned
    :class:`~repro.engine.telemetry.TaskSpan` carries the worker-side
    monotonic clock readings back through the backend for telemetry.
    """
    index, task, seed_material = item
    received = time.monotonic()
    rng = np.random.default_rng(seed_material)
    start = time.perf_counter()
    exec_started = time.monotonic()
    try:
        result = worker(context, task, rng)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError(
            f"task {task.task_id!r} failed: {type(exc).__name__}: {exc}") \
            from exc
    duration = time.perf_counter() - start
    span = TaskSpan(worker=os.getpid(), started_at=received,
                    finished_at=time.monotonic(),
                    deserialize=exec_started - received)
    return index, result, duration, span


def _execute_graph_task(
        worker: Callable[[Any, Task, np.random.Generator,
                          Mapping[str, Any]], Any],
        context: Any,
        item: Tuple[int, Task, Any, Mapping[str, Any]]) \
        -> Tuple[int, Any, float, TaskSpan]:
    """Run one dependency-graph task; parent results arrive as ``inputs``."""
    index, task, seed_material, inputs = item
    received = time.monotonic()
    rng = np.random.default_rng(seed_material)
    start = time.perf_counter()
    exec_started = time.monotonic()
    try:
        result = worker(context, task, rng, inputs)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError(
            f"task {task.task_id!r} failed: {type(exc).__name__}: {exc}") \
            from exc
    duration = time.perf_counter() - start
    span = TaskSpan(worker=os.getpid(), started_at=received,
                    finished_at=time.monotonic(),
                    deserialize=exec_started - received)
    return index, result, duration, span


class _RunTelemetry:
    """Per-run emission helper: stage bookkeeping and span arithmetic.

    Instantiated only when the run has a :class:`TelemetryBus`, so the
    no-telemetry path stays a single ``is None`` check per completion.
    Tracks per-stage terminal counts (emitting ``stage_completed`` when a
    stage's last task resolves) and combines worker-side spans with the
    parent-side submit/receive clocks into the queue-wait / deserialize /
    execute / ship phases.
    """

    def __init__(self, bus: TelemetryBus, graph: TaskGraph,
                 stage_of: Optional[Mapping[str, str]],
                 backend: ExecutionBackend, mode: str) -> None:
        self.bus = bus
        self.graph = graph
        self.stage_of = dict(stage_of) if stage_of else {}
        self.started = time.monotonic()
        self.submitted_at: Dict[str, float] = {}
        self.stage_totals: Dict[str, int] = {}
        for task in graph:
            stage = self.stage_of.get(task.task_id)
            if stage is not None:
                self.stage_totals[stage] = \
                    self.stage_totals.get(stage, 0) + 1
        self.stage_state: Dict[str, Dict[str, int]] = {
            stage: {"executed": 0, "cached": 0, "failed": 0, "skipped": 0}
            for stage in self.stage_totals}
        bus.emit("run_started", t=self.started, n_tasks=len(graph),
                 backend=backend.name, workers=backend.workers, mode=mode,
                 stages=dict(self.stage_totals))

    def _stage(self, task: Task) -> Optional[str]:
        return self.stage_of.get(task.task_id)

    @staticmethod
    def _items(task: Task) -> Dict[str, int]:
        """Extra ``items`` payload for batched tasks (weight > 1) only, so
        unbatched event streams stay byte-identical."""
        return {"items": task.weight} if task.weight != 1 else {}

    def _terminal(self, task: Task, kind: str) -> None:
        stage = self._stage(task)
        if stage is None:
            return
        state = self.stage_state[stage]
        state[kind] += 1
        if sum(state.values()) == self.stage_totals[stage]:
            self.bus.emit("stage_completed", stage=stage,
                          total=self.stage_totals[stage],
                          elapsed=time.monotonic() - self.started, **state)

    def submitted(self, task: Task, deps: Sequence[str] = ()) -> None:
        t = time.monotonic()
        self.submitted_at[task.task_id] = t
        self.bus.emit("task_submitted", t=t, task_id=task.task_id,
                      stage=self._stage(task), group=task.group,
                      deps=list(deps), **self._items(task))

    def cache_hit(self, task: Task, deps: Sequence[str] = ()) -> None:
        self.bus.emit("cache_hit", task_id=task.task_id,
                      stage=self._stage(task), group=task.group,
                      deps=list(deps), **self._items(task))
        self._terminal(task, "cached")

    def executed(self, task: Task, duration: float, span: TaskSpan) -> None:
        received = time.monotonic()
        stage = self._stage(task)
        submitted = self.submitted_at.get(task.task_id, span.started_at)
        queue_wait = max(0.0, span.started_at - submitted)
        ship = max(0.0, received - span.finished_at)
        worker_seconds = max(0.0, span.finished_at - span.started_at)
        self.bus.emit("task_started", t=span.started_at,
                      task_id=task.task_id, stage=stage, group=task.group,
                      worker=span.worker)
        self.bus.emit("task_completed", t=received, task_id=task.task_id,
                      stage=stage, group=task.group, worker=span.worker,
                      queue_wait=queue_wait, deserialize=span.deserialize,
                      execute=duration, ship=ship,
                      worker_seconds=worker_seconds, duration=duration,
                      **self._items(task))
        self._terminal(task, "executed")

    def failed(self, task: Task, error: BaseException) -> None:
        self.bus.emit("task_failed", task_id=task.task_id,
                      stage=self._stage(task), group=task.group,
                      error=str(error))
        self._terminal(task, "failed")

    def skipped(self, task_id: str) -> None:
        task = self.graph[self.graph.index_of(task_id)]
        self.bus.emit("task_skipped", task_id=task_id,
                      stage=self._stage(task), group=task.group)
        self._terminal(task, "skipped")

    def finished(self, report: CampaignReport,
                 backend: ExecutionBackend) -> None:
        data: Dict[str, Any] = {
            "n_tasks": report.n_tasks, "n_executed": report.n_executed,
            "n_cache_hits": report.n_cache_hits,
            "n_failed": report.n_failed, "n_skipped": report.n_skipped,
            "wall_time": report.wall_time}
        payload = getattr(backend, "last_payload", None)
        if payload is not None:
            data["task_bytes"] = payload.task_bytes
            data["context_bytes"] = payload.context_bytes
        self.bus.emit("run_finished", **data)


def _resolve_codec(codec: CodecArg) -> Callable[[Task], ResultCodec]:
    if codec is None:
        return lambda task: IDENTITY_CODEC
    if isinstance(codec, ResultCodec):
        return lambda task: codec
    return codec


class CampaignEngine:
    """Executes a task graph through a backend with seeding + caching.

    Parameters
    ----------
    backend:
        Execution backend; defaults to :class:`SerialBackend` (bit-identical
        to the historical in-process loops).
    cache:
        Optional :class:`ResultCache`; only tasks carrying a ``spec``
        participate.
    seed:
        Root seed (``int`` or ``SeedSequence``) from which one child
        ``SeedSequence`` per task is spawned, by task index.
    progress:
        Optional default :data:`ProgressCallback`.
    telemetry:
        Optional default :class:`~repro.engine.telemetry.TelemetryBus`;
        every run emits its lifecycle events (``run_started``,
        ``task_submitted``, ``task_completed``, ...) through it.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: Optional[ResultCache] = None,
                 seed: Union[int, np.random.SeedSequence] = 0,
                 progress: Optional[ProgressCallback] = None,
                 telemetry: Optional[TelemetryBus] = None) -> None:
        self.backend = backend or SerialBackend()
        self.cache = cache
        self.seed = seed
        self.progress = progress
        self.telemetry = telemetry

    # ---------------------------------------------------------------- helpers
    def _task_seeds(self, graph: TaskGraph) -> List[Any]:
        """Per-task seed material, independent of backend and run count.

        Children are derived statelessly (not via ``root.spawn``, which
        advances the parent's spawn counter) so repeated runs of the same
        engine -- or one sharing a caller-owned SeedSequence -- always see
        identical per-task seeds.  For a fresh root this matches ``spawn()``.
        """
        root = self.seed if isinstance(self.seed, np.random.SeedSequence) \
            else np.random.SeedSequence(self.seed)
        children = [np.random.SeedSequence(entropy=root.entropy,
                                           spawn_key=tuple(root.spawn_key)
                                           + (i,))
                    for i in range(len(graph))]
        return [task.seed if task.seed is not None else children[i]
                for i, task in enumerate(graph)]

    def _cache_key(self, task: Task, seed_material: Any) -> Optional[str]:
        if self.cache is None or task.spec is None:
            return None
        seed_token = None if task.deterministic else _seed_token(seed_material)
        return self.cache.key_for(task.spec, seed_token)

    # -------------------------------------------------------------------- run
    def run(self, tasks: Union[TaskGraph, Sequence[Task]],
            worker: Callable[..., Any],
            context: Any = None,
            codec: CodecArg = None,
            progress: Optional[ProgressCallback] = None,
            on_failure: str = "raise",
            stage_of: Optional[Mapping[str, str]] = None,
            telemetry: Optional[TelemetryBus] = None,
            cancel: Optional[Callable[[], bool]] = None) -> EngineRun:
        """Execute every task; results come back in task order.

        Parameters
        ----------
        tasks:
            A :class:`TaskGraph` or sequence of tasks.  Graphs with
            dependency edges are executed by the topological scheduler and
            their worker receives a fourth ``inputs`` argument (parent id ->
            parent result).
        worker:
            ``worker(context, task, rng)`` for flat graphs,
            ``worker(context, task, rng, inputs)`` for dependency graphs.
        codec:
            A :class:`ResultCodec`, or a per-task resolver
            ``codec_for(task) -> ResultCodec`` for heterogeneous graphs.
        on_failure:
            ``"raise"`` (default): raise :class:`TaskExecutionError` on task
            failure.  For dependency graphs the scheduler first finishes all
            runnable work and attaches the completed :class:`EngineRun` to
            the exception as ``.run``; flat graphs keep the historical batch
            behaviour (the backend raises after draining already-running
            work, with no ``.run`` attribute).  ``"skip"``: never raise for
            task failures; return the run with failed/skipped tasks recorded
            in :attr:`EngineRun.statuses` / :attr:`EngineRun.errors` and
            ``None`` results.  Flat graphs run with ``"skip"`` are routed
            through the graph scheduler so partial results survive.
        stage_of:
            Optional ``task_id -> stage`` mapping; when given, the report
            additionally aggregates completed-task durations and counts per
            stage (:attr:`CampaignReport.stage_durations` /
            :attr:`CampaignReport.stage_counts`), independently of the
            per-task ``group`` labels (which e.g. campaign stages override
            with block paths).  Pipelines pass theirs automatically.
        telemetry:
            Optional :class:`~repro.engine.telemetry.TelemetryBus` for this
            run, overriding the engine default.
        cancel:
            Optional zero-argument probe polled between completions.  Once
            it returns True the scheduler stops dispatching, drains the
            work already in flight (their results still reach the cache),
            marks every unresolved task ``skipped`` and returns the run
            with :attr:`EngineRun.cancelled` set -- the cooperative-stop
            hook of the campaign daemon's ``cancel`` verb.  Cancellation
            never raises by itself.
        """
        graph = tasks if isinstance(tasks, TaskGraph) else TaskGraph(tasks)
        if on_failure not in ("raise", "skip"):
            raise EngineError(
                f"on_failure must be 'raise' or 'skip', got {on_failure!r}")
        codec_for = _resolve_codec(codec)
        progress = progress or self.progress
        bus = telemetry if telemetry is not None else self.telemetry
        if graph.has_edges or on_failure == "skip" or cancel is not None:
            return self._run_graph(graph, worker, context, codec_for,
                                   progress, on_failure, stage_of, bus,
                                   cancel)
        return self._run_flat(graph, worker, context, codec_for, progress,
                              stage_of, bus)

    # -------------------------------------------------------- flat (batch) run
    def _run_flat(self, graph: TaskGraph, worker: Callable[..., Any],
                  context: Any,
                  codec_for: Callable[[Task], ResultCodec],
                  progress: Optional[ProgressCallback],
                  stage_of: Optional[Mapping[str, str]] = None,
                  bus: Optional[TelemetryBus] = None) -> EngineRun:
        n_tasks = len(graph)
        started = time.perf_counter()
        seeds = self._task_seeds(graph)
        tele = None if bus is None else \
            _RunTelemetry(bus, graph, stage_of, self.backend, mode="flat")

        results: List[Any] = [None] * n_tasks
        durations: Dict[str, float] = {}
        statuses: Dict[str, str] = {}
        done = 0

        # ------------------------------------------------------ cache lookup
        keys: List[Optional[str]] = [None] * n_tasks
        pending: List[Tuple[int, Task, Any]] = []
        for i, task in enumerate(graph):
            keys[i] = self._cache_key(task, seeds[i])
            if keys[i] is not None:
                stored = self.cache.get(keys[i])
                if stored is not MISS:
                    results[i] = codec_for(task).decode(stored)
                    durations[task.task_id] = 0.0
                    statuses[task.task_id] = STATUS_CACHED
                    done += 1
                    if tele is not None:
                        tele.cache_hit(task)
                    if progress is not None:
                        progress(TaskOutcome(index=i, task=task,
                                             result=results[i], duration=0.0,
                                             from_cache=True, done=done,
                                             total=n_tasks))
                    continue
            pending.append((i, task, seeds[i]))
        n_cache_hits = done

        if tele is not None:
            for index, task, _ in pending:
                tele.submitted(task)

        # --------------------------------------------------------- execution
        def on_result(outcome: Tuple[int, Any, float, TaskSpan]) -> None:
            nonlocal done
            index, result, duration, span = outcome
            done += 1
            task = graph[index]
            statuses[task.task_id] = STATUS_EXECUTED
            # Store per completion (not after the whole run) so results of
            # completed tasks survive a later task failure or interrupt.
            if self.cache is not None and keys[index] is not None:
                codec = codec_for(task)
                self.cache.put(keys[index], codec.encode(result),
                               task_id=task.task_id, spec=task.spec,
                               sidecar=codec.sidecar)
            if tele is not None:
                tele.executed(task, duration, span)
            if progress is not None:
                progress(TaskOutcome(index=index, task=task, result=result,
                                     duration=duration, from_cache=False,
                                     done=done, total=n_tasks))

        fn = functools.partial(_execute_task, worker, context)
        for index, result, duration, _ in self.backend.map_items(
                fn, pending, on_result=on_result):
            results[index] = result
            durations[graph[index].task_id] = duration

        report = self._build_report(graph, durations, n_tasks,
                                    n_executed=len(pending),
                                    n_cache_hits=n_cache_hits,
                                    started=started, stage_of=stage_of,
                                    statuses=statuses)
        if tele is not None:
            tele.finished(report, self.backend)
        return EngineRun(results=results, report=report,
                         task_ids=graph.ids(), statuses=statuses)

    # --------------------------------------------------- dependency-graph run
    def _run_graph(self, graph: TaskGraph, worker: Callable[..., Any],
                   context: Any,
                   codec_for: Callable[[Task], ResultCodec],
                   progress: Optional[ProgressCallback],
                   on_failure: str,
                   stage_of: Optional[Mapping[str, str]] = None,
                   bus: Optional[TelemetryBus] = None,
                   cancel: Optional[Callable[[], bool]] = None) -> EngineRun:
        """Topological scheduling with cache short-circuits + failure skips.

        Tasks are dispatched the moment their last parent completes; there is
        no barrier between "stages".  A task found in the cache completes
        without touching the backend, so fully cached subtrees unblock their
        descendants immediately.  When a task fails, every descendant is
        marked ``skipped`` (never dispatched) while independent branches keep
        executing.
        """
        n_tasks = len(graph)
        started = time.perf_counter()
        seeds = self._task_seeds(graph)
        tele = None if bus is None else \
            _RunTelemetry(bus, graph, stage_of, self.backend, mode="graph")

        results: List[Any] = [None] * n_tasks
        durations: Dict[str, float] = {}
        statuses: Dict[str, str] = {}
        errors: Dict[str, str] = {}
        keys: List[Optional[str]] = [None] * n_tasks

        # An edge-free graph lands here only for on_failure="skip"; its
        # worker still follows the 3-argument flat contract.
        has_edges = graph.has_edges
        remaining = [len(task.depends_on) for task in graph]
        ready: deque = deque(i for i, task in enumerate(graph)
                             if not task.depends_on)
        done = 0
        n_cache_hits = 0
        n_executed = 0
        in_flight = 0

        def complete(index: int, result: Any, duration: float,
                     from_cache: bool) -> None:
            """Record a finished task and release its children."""
            nonlocal done
            task = graph[index]
            results[index] = result
            durations[task.task_id] = duration
            statuses[task.task_id] = STATUS_CACHED if from_cache \
                else STATUS_EXECUTED
            done += 1
            if progress is not None:
                progress(TaskOutcome(index=index, task=task, result=result,
                                     duration=duration, from_cache=from_cache,
                                     done=done, total=n_tasks))
            for child_id in graph.dependents(task.task_id):
                child_index = graph.index_of(child_id)
                remaining[child_index] -= 1
                if remaining[child_index] == 0 and \
                        statuses.get(child_id) != STATUS_SKIPPED:
                    ready.append(child_index)

        def fail(index: int, exc: BaseException) -> None:
            """Record a failure and mark the whole subtree below it skipped."""
            task = graph[index]
            statuses[task.task_id] = STATUS_FAILED
            errors[task.task_id] = str(exc)
            if tele is not None:
                tele.failed(task, exc)
            for desc_id in graph.descendants(task.task_id):
                if desc_id not in statuses:
                    statuses[desc_id] = STATUS_SKIPPED
                    if tele is not None:
                        tele.skipped(desc_id)

        fn = functools.partial(
            _execute_graph_task if has_edges else _execute_task,
            worker, context)
        cancelled = False
        with self.backend.stream(fn) as stream:
            while ready or in_flight:
                if cancel is not None and not cancelled and cancel():
                    cancelled = True
                if cancelled:
                    # Stop dispatching; keep draining what is in flight so
                    # completed work still reaches the cache/progress.
                    ready.clear()
                # Dispatch everything runnable; cache hits complete inline
                # (and may push newly unblocked children back onto `ready`).
                while ready:
                    index = ready.popleft()
                    task = graph[index]
                    if statuses.get(task.task_id) == STATUS_SKIPPED:
                        continue
                    keys[index] = self._cache_key(task, seeds[index])
                    if keys[index] is not None:
                        stored = self.cache.get(keys[index])
                        if stored is not MISS:
                            n_cache_hits += 1
                            if tele is not None:
                                tele.cache_hit(task, deps=task.depends_on)
                            complete(index, codec_for(task).decode(stored),
                                     0.0, from_cache=True)
                            continue
                    if has_edges:
                        inputs = {dep: results[graph.index_of(dep)]
                                  for dep in task.depends_on}
                        stream.submit((index, task, seeds[index], inputs))
                    else:
                        stream.submit((index, task, seeds[index]))
                    if tele is not None:
                        tele.submitted(task, deps=task.depends_on)
                    in_flight += 1
                if not in_flight:
                    continue
                item, ok, value = stream.next_outcome()
                in_flight -= 1
                index = item[0]
                if ok:
                    _, result, duration, span = value
                    n_executed += 1
                    task = graph[index]
                    if self.cache is not None and keys[index] is not None:
                        codec = codec_for(task)
                        self.cache.put(keys[index], codec.encode(result),
                                       task_id=task.task_id, spec=task.spec,
                                       sidecar=codec.sidecar)
                    if tele is not None:
                        tele.executed(task, duration, span)
                    complete(index, result, duration, from_cache=False)
                else:
                    fail(index, value)

        if cancelled:
            for task in graph:
                if task.task_id not in statuses:
                    statuses[task.task_id] = STATUS_SKIPPED
                    if tele is not None:
                        tele.skipped(task.task_id)

        n_skipped = sum(1 for status in statuses.values()
                        if status == STATUS_SKIPPED)
        report = self._build_report(graph, durations, n_tasks,
                                    n_executed=n_executed,
                                    n_cache_hits=n_cache_hits,
                                    started=started,
                                    n_failed=len(errors),
                                    n_skipped=n_skipped,
                                    stage_of=stage_of,
                                    statuses=statuses)
        # Emitted before a potential on_failure="raise" so the trace of a
        # failing run still reconciles with its report.
        if tele is not None:
            tele.finished(report, self.backend)
        run = EngineRun(results=results, report=report, task_ids=graph.ids(),
                        statuses=statuses, errors=errors,
                        cancelled=cancelled)
        if errors and on_failure == "raise":
            first_id = run.failed_tasks()[0]
            error = TaskExecutionError(
                f"{len(errors)} task(s) failed and {n_skipped} dependent "
                f"task(s) were skipped; first failure: {first_id!r}: "
                f"{errors[first_id]}")
            error.run = run
            raise error
        return run

    # ------------------------------------------------------------ report
    def _build_report(self, graph: TaskGraph, durations: Dict[str, float],
                      n_tasks: int, n_executed: int, n_cache_hits: int,
                      started: float, n_failed: int = 0,
                      n_skipped: int = 0,
                      stage_of: Optional[Mapping[str, str]] = None,
                      statuses: Optional[Mapping[str, str]] = None
                      ) -> CampaignReport:
        group_durations: Dict[str, float] = {}
        stage_durations: Dict[str, float] = {}
        stage_counts: Dict[str, int] = {}
        stage_failed: Dict[str, int] = {}
        stage_skipped: Dict[str, int] = {}
        stage_items: Dict[str, int] = {}
        for task in graph:
            stage = stage_of.get(task.task_id) if stage_of else None
            if stage is not None and statuses is not None:
                status = statuses.get(task.task_id)
                if status == STATUS_FAILED:
                    stage_failed[stage] = stage_failed.get(stage, 0) + 1
                elif status == STATUS_SKIPPED:
                    stage_skipped[stage] = stage_skipped.get(stage, 0) + 1
            if task.task_id not in durations:
                continue
            if task.group is not None:
                group_durations[task.group] = \
                    group_durations.get(task.group, 0.0) \
                    + durations[task.task_id]
            if stage is not None:
                stage_durations[stage] = stage_durations.get(stage, 0.0) \
                    + durations[task.task_id]
                stage_counts[stage] = stage_counts.get(stage, 0) + 1
                stage_items[stage] = stage_items.get(stage, 0) + task.weight
        return CampaignReport(
            backend=self.backend.name,
            workers=self.backend.workers,
            n_tasks=n_tasks,
            n_executed=n_executed,
            n_cache_hits=n_cache_hits,
            wall_time=time.perf_counter() - started,
            task_durations=durations,
            group_durations=group_durations,
            stage_durations=stage_durations,
            stage_counts=stage_counts,
            n_failed=n_failed,
            n_skipped=n_skipped,
            stage_failed=stage_failed,
            stage_skipped=stage_skipped,
            stage_items=stage_items)
