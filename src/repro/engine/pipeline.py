"""Multi-stage pipelines over the campaign engine's dependency graph.

A :class:`Pipeline` is a thin declarative layer on top of
:class:`~repro.engine.task.TaskGraph`: it groups tasks into named *stages*,
each with its own worker callable, worker context and result codec, and runs
the whole graph through one :class:`~repro.engine.CampaignEngine` invocation.
Dependencies cross stage boundaries freely and there are **no stage
barriers** -- the scheduler dispatches any task the moment its parents
complete, so a fast branch of a later stage can overtake a slow branch of an
earlier one.

The built-in :func:`calibrate_then_campaign` pipeline wires the paper's core
workflow into a single graph::

    calib/0 ... calib/N-1          (defect-free Monte Carlo instances)
            \\   |   /
             windows               (pool residuals, delta = k*sigma + |mean|)
            /   |   \\
    campaign/<block>/<i>/...       (one defect injection + SymBIST run each)

One root seed drives every random draw (the same draws, in the same order,
as running ``repro-campaign calibrate`` followed by ``repro-campaign
campaign`` with that seed), one :class:`~repro.engine.CampaignReport` spans
all stages, and a warm :class:`~repro.engine.ResultCache` short-circuits
completed parents so their children dispatch immediately.

Stage workers follow the dependency-graph worker contract
``worker(stage_context, task, rng, inputs)`` (see
:meth:`repro.engine.CampaignEngine.run`); they must be module-level
callables, and stage contexts picklable, for multiprocess execution.

The built-in study graphs (:func:`calibrate_then_campaign`,
:func:`block_study`, :func:`yield_loss_study`) are compiled from declarative
:class:`~repro.engine.spec.StudySpec` documents through the stage registry
(:mod:`repro.engine.registry`); this module keeps the :class:`Pipeline` API,
the stage worker functions and thin keyword-argument wrappers around the
canned specs.  New study shapes should be written as specs (see
``docs/studies.md``), not as new builder functions.
"""

from __future__ import annotations

import hashlib
import uuid
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..circuit.errors import EngineError
from .backends import ExecutionBackend
from .cache import (ResultCache, callable_token, canonical_json,
                    factory_token)
from .telemetry import TelemetryBus
from .executor import (CampaignEngine, CampaignReport, EngineRun,
                       IDENTITY_CODEC, ProgressCallback, ResultCodec,
                       STATUS_CACHED, STATUS_EXECUTED)
from .task import Task, TaskGraph

#: Stage worker contract: ``worker(stage_context, task, rng, inputs)``.
StageWorker = Callable[[Any, Task, np.random.Generator, Mapping[str, Any]],
                       Any]


@dataclass(frozen=True)
class PipelineStage:
    """One named stage of a pipeline.

    Attributes
    ----------
    name:
        Stage label; the default ``group`` of its tasks (for per-stage
        timings in the report).
    worker:
        Module-level callable executing the stage's tasks, signature
        ``worker(context, task, rng, inputs)``.
    context:
        Stage-private worker context (picklable for multiprocess backends).
    codec:
        :class:`~repro.engine.ResultCodec` converting the stage's results
        to/from the JSON stored by the result cache.
    """

    name: str
    worker: StageWorker
    context: Any = None
    codec: ResultCodec = IDENTITY_CODEC


def _dispatch_worker(context: Mapping[str, Any], task: Task,
                     rng: np.random.Generator,
                     inputs: Optional[Mapping[str, Any]] = None) -> Any:
    """Engine worker of every pipeline: route the task to its stage worker."""
    worker, stage_context = context["stages"][context["stage_of"][task.task_id]]
    return worker(stage_context, task, rng,
                  inputs if inputs is not None else {})


@dataclass
class PipelineResult:
    """Per-stage view over one engine run of a pipeline graph."""

    run: EngineRun
    stage_names: List[str]
    stage_of: Dict[str, str]

    @property
    def report(self) -> CampaignReport:
        """The single :class:`CampaignReport` spanning every stage."""
        return self.run.report

    @property
    def ok(self) -> bool:
        return self.run.ok

    def result_for(self, task_id: str) -> Any:
        return self.run.result_for(task_id)

    def _stage_task_ids(self, stage: str) -> List[str]:
        if stage not in self.stage_names:
            raise EngineError(f"pipeline has no stage {stage!r}")
        return [tid for tid in self.run.task_ids
                if self.stage_of.get(tid) == stage]

    def stage_results(self, stage: str) -> Dict[str, Any]:
        """Results of one stage's *completed* tasks, in task order."""
        index = {tid: i for i, tid in enumerate(self.run.task_ids)}
        return {tid: self.run.results[index[tid]]
                for tid in self._stage_task_ids(stage)
                if self.run.statuses.get(tid) in (STATUS_EXECUTED,
                                                  STATUS_CACHED)}

    def stage_statuses(self, stage: str) -> Dict[str, str]:
        """Terminal status of every task of one stage, in task order."""
        return {tid: self.run.statuses.get(tid, "unknown")
                for tid in self._stage_task_ids(stage)}


class Pipeline:
    """Declarative multi-stage task graph executed as one engine run.

    Usage::

        pipeline = Pipeline("my-flow")
        pipeline.add_stage("produce", produce_worker, context=...)
        pipeline.add_stage("reduce", reduce_worker)
        for i in range(10):
            pipeline.add_task("produce", Task(task_id=f"p/{i}", payload=i))
        pipeline.add_task("reduce", Task(
            task_id="total", depends_on=tuple(f"p/{i}" for i in range(10))))
        result = pipeline.run(backend=MultiprocessBackend(max_workers=4))
        total = result.result_for("total")
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._stages: Dict[str, PipelineStage] = {}
        self._graph = TaskGraph()
        self._stage_of: Dict[str, str] = {}

    # ---------------------------------------------------------------- building
    def add_stage(self, name: str, worker: StageWorker, context: Any = None,
                  codec: Optional[ResultCodec] = None) -> PipelineStage:
        """Declare a stage; must happen before tasks are added to it."""
        if name in self._stages:
            raise EngineError(
                f"pipeline {self.name!r} already has a stage {name!r}")
        stage = PipelineStage(name=name, worker=worker, context=context,
                              codec=codec or IDENTITY_CODEC)
        self._stages[name] = stage
        return stage

    def add_task(self, stage: str, task: Task) -> Task:
        """Add a task to a stage; dependencies may span stages.

        Tasks without an explicit ``group`` inherit the stage name, so the
        run report aggregates timings per stage by default.
        """
        if stage not in self._stages:
            raise EngineError(
                f"pipeline {self.name!r} has no stage {stage!r}; declare it "
                f"with add_stage() first")
        if task.group is None:
            task = replace(task, group=stage)
        self._graph.add(task)
        self._stage_of[task.task_id] = stage
        return task

    # ------------------------------------------------------------------ access
    @property
    def graph(self) -> TaskGraph:
        return self._graph

    def stage_names(self) -> List[str]:
        return list(self._stages)

    def __len__(self) -> int:
        return len(self._graph)

    # --------------------------------------------------------------------- run
    def run(self, backend: Optional[ExecutionBackend] = None,
            cache: Optional[ResultCache] = None,
            seed: Any = 0,
            progress: Optional[ProgressCallback] = None,
            on_failure: str = "raise",
            telemetry: Optional["TelemetryBus"] = None,
            cancel: Optional[Callable[[], bool]] = None) -> PipelineResult:
        """Execute the whole graph through one :class:`CampaignEngine` run.

        ``on_failure="skip"`` returns a result whose
        :meth:`PipelineResult.stage_statuses` mark failed tasks ``failed``
        and their descendants ``skipped``; the default re-raises the engine's
        :class:`~repro.circuit.errors.TaskExecutionError` (which carries the
        completed :class:`~repro.engine.EngineRun` as ``.run``).
        ``telemetry`` is an optional
        :class:`~repro.engine.telemetry.TelemetryBus` receiving the run's
        event stream (stage-tagged, since pipelines pass ``stage_of``).
        ``cancel`` is the engine's cooperative-stop probe (see
        :meth:`~repro.engine.executor.CampaignEngine.run`); a cancelled run
        surfaces through :attr:`EngineRun.cancelled` on the result's
        ``run``.
        """
        if not len(self._graph):
            raise EngineError(f"pipeline {self.name!r} has no tasks")
        engine = CampaignEngine(backend=backend, cache=cache, seed=seed,
                                progress=progress, telemetry=telemetry)
        context = {"stages": {name: (stage.worker, stage.context)
                              for name, stage in self._stages.items()},
                   "stage_of": dict(self._stage_of)}
        stages, stage_of = self._stages, self._stage_of

        def codec_for(task: Task) -> ResultCodec:
            return stages[stage_of[task.task_id]].codec

        run = engine.run(self._graph, _dispatch_worker, context=context,
                         codec=codec_for, on_failure=on_failure,
                         stage_of=dict(self._stage_of), cancel=cancel)
        return PipelineResult(run=run, stage_names=list(self._stages),
                              stage_of=dict(self._stage_of))


# ===================================================================== built-in
# calibrate -> campaign: the paper's two-phase workflow as one graph.

def _calibration_stage_worker(context: Mapping[str, Any], task: Task,
                              rng: np.random.Generator,
                              inputs: Mapping[str, Any]) -> Any:
    """One defect-free Monte Carlo instance (root task, ignores inputs)."""
    from ..core.calibration import _residual_worker
    return _residual_worker(context, task, rng)


def _pool_residuals(names: Sequence[str], task: Task,
                    inputs: Mapping[str, Any]) -> Dict[str, List[float]]:
    """Assemble per-invariance residual pools from a task's parents.

    Pools are built in ``task.depends_on`` order (== Monte Carlo sample
    order), ``n_cycles`` consecutive residuals per instance -- the invariant
    every float-for-float reproducibility guarantee of the reduction stages
    (windows, yield points) rests on, so there is exactly one copy of it.
    """
    pools: Dict[str, List[float]] = {name: [] for name in names}
    for dep in task.depends_on:
        rows = inputs[dep]
        for name in names:
            pools[name].extend(rows[name])
    return pools


def _windows_stage_worker(context: Mapping[str, Any], task: Task,
                          rng: np.random.Generator,
                          inputs: Mapping[str, Any]) -> Dict[str, Any]:
    """Pool the parents' residuals and derive the comparison windows.

    Pools reproduce :func:`repro.core.calibrate_windows` float-for-float
    (see :func:`_pool_residuals`).  The guard-band multiplier comes from the
    task payload when it carries one (per-block windows tasks of the
    block-study graph) and from the stage context otherwise (the single
    global reduction of the calibrate -> campaign graph).
    """
    from ..core.calibration import windows_from_pools
    names = context["invariance_names"]
    pools = _pool_residuals(names, task, inputs)
    payload = task.payload if isinstance(task.payload, Mapping) else {}
    k = payload.get("k", context.get("k"))
    sigmas, means, deltas = windows_from_pools(
        pools, k, context.get("delta_floors"))
    return {"k": k, "n_samples": len(task.depends_on),
            "sigmas": sigmas, "means": means, "deltas": deltas}


def _campaign_stage_worker(context: Mapping[str, Any], task: Task,
                           rng: np.random.Generator,
                           inputs: Mapping[str, Any]) -> Any:
    """Inject one defect and run SymBIST with the calibrated windows.

    The campaign object is built once per process (keyed by the run token)
    the first time a defect task lands there; the windows arrive as the
    result of the single ``windows`` parent.  Deltas are re-ordered to the
    canonical invariance order so checker order -- hence any
    stop-on-detection tie-break -- never depends on JSON key ordering of a
    cache-replayed windows artifact.
    """
    from ..defects.simulator import _worker_campaign
    windows = inputs[task.depends_on[0]]
    deltas = {name: windows["deltas"][name]
              for name in context["invariance_names"]
              if name in windows["deltas"]}
    campaign = _worker_campaign({**context, "deltas": deltas})
    # The per-process campaign is keyed by the run token alone, but within a
    # block-study run different blocks' windows tasks may carry different
    # deltas (per-block k overrides) -- refresh the table per task.
    campaign.deltas = dict(deltas)
    if isinstance(task.payload, list):
        return campaign.simulate_defect_batch(task.payload)
    return campaign.simulate_defect(task.payload)


def _register_calibrate_stage(pipeline: Pipeline, adc_factory: Any,
                              stimulus: Any, invariances: Sequence[Any],
                              variation_spec: Any, seed: int,
                              n_monte_carlo: int, stage: str = "calibrate",
                              codec: Optional[ResultCodec] = None,
                              task_prefix: str = "",
                              annotate: Optional[Callable[[Any], Any]] = None
                              ) -> "tuple[List[str], Any, str, bool]":
    """Add the shared defect-free Monte Carlo stage to a pipeline.

    One calib task per sample, with per-sample seeds drawn up front from
    ``default_rng(seed)`` exactly like
    :func:`~repro.core.collect_defect_free_residuals` -- the single source
    of the calibration scaffolding, shared by every built-in graph so their
    calibrate stages can never drift apart (and always replay each other's
    cache artifacts).  ``task_prefix`` namespaces the task ids (and
    ``annotate`` the cache spec) when several variants of one study share a
    pipeline.  Returns ``(calib_ids, calib_spec, seeds_token, cacheable)``.
    """
    from ..core.calibration import RESIDUAL_CODEC, calibration_task_spec

    calib_seeds = [int(s) for s in np.random.default_rng(seed).integers(
        0, 2 ** 63 - 1, size=n_monte_carlo)]
    token = factory_token(adc_factory)
    cacheable = token is not None
    calib_spec = calibration_task_spec(
        token, stimulus, variation_spec,
        [inv.name for inv in invariances]) if cacheable else None
    if calib_spec is not None and annotate is not None:
        calib_spec = annotate(calib_spec)
    pipeline.add_stage(
        stage, _calibration_stage_worker,
        codec=codec if codec is not None else RESIDUAL_CODEC,
        context={"adc_factory": adc_factory, "invariances": invariances,
                 "stimulus": stimulus, "variation_spec": variation_spec})
    calib_ids = []
    for i, calib_seed in enumerate(calib_seeds):
        task = Task(task_id=f"{task_prefix}calib/{i}", payload=i,
                    seed=calib_seed, spec=calib_spec)
        pipeline.add_task(stage, task)
        calib_ids.append(task.task_id)
    seeds_token = hashlib.sha256(
        canonical_json(calib_seeds).encode()).hexdigest()
    return calib_ids, calib_spec, seeds_token, cacheable


def _build_dut(adc_factory: Any) -> "tuple[Any, str, Any]":
    """Instantiate the device under test once per study build.

    Returns ``(adc, fingerprint, universe)`` -- the behavioral ADC with its
    defect list cleared, its cache fingerprint and the defect universe built
    from its hierarchy.  Split out of the campaign-stage registration so
    stages that only need the universe (e.g. per-block windows) can build it
    before the campaign stage is declared.
    """
    from ..defects.simulator import adc_fingerprint
    from ..defects.universe import build_defect_universe

    adc = adc_factory()
    adc.clear_defects()
    hierarchy = adc.build_hierarchy()
    fingerprint = adc_fingerprint(adc, hierarchy)
    universe = build_defect_universe(hierarchy, None)
    return adc, fingerprint, universe


def _register_campaign_stage(pipeline: Pipeline, adc: Any,
                             stimulus: Any, mode: Any,
                             stop_on_detection: bool,
                             invariance_names: Sequence[str],
                             stage: str = "campaign",
                             codec: Optional[ResultCodec] = None) -> str:
    """Add the shared defect-campaign stage for a pre-built DUT.

    The single source of the campaign-stage worker context (the behavioral
    ADC, test spec and run token), shared by every campaign-shaped study
    graph.  Returns the per-process ``worker_token``.
    """
    from ..defects.simulator import MODEL_SECONDS_PER_CYCLE, RECORD_CODEC

    worker_token = uuid.uuid4().hex
    pipeline.add_stage(
        stage, _campaign_stage_worker,
        codec=codec if codec is not None else RECORD_CODEC,
        context={"token": worker_token, "adc": adc,
                 "stimulus": stimulus, "mode": mode,
                 "stop_on_detection": stop_on_detection,
                 "likelihood_model": None,
                 "seconds_per_cycle": MODEL_SECONDS_PER_CYCLE,
                 "invariance_names": list(invariance_names)})
    return worker_token


def build_calibrate_then_campaign(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None
) -> "Any":
    """Build the paper's calibrate -> campaign workflow as one task graph.

    Thin wrapper over the declarative study layer: applies the keyword
    arguments as overrides on the canned
    :data:`~repro.engine.spec.CALIBRATE_THEN_CAMPAIGN` spec and compiles it
    with :func:`~repro.engine.spec.build_study`.  The compiled graph
    reproduces, draw for draw, what ``repro-campaign calibrate --seed S``
    followed by ``repro-campaign campaign --seed S`` computes:

    * calibration per-sample seeds are drawn up front from
      ``default_rng(seed)`` exactly like
      :func:`~repro.core.collect_defect_free_residuals`;
    * per-block LWRS defect draws come from
      :func:`~repro.defects.sampling.block_seed_sequence` (root seed + block
      path), exactly like :meth:`DefectCampaign.run_per_block
      <repro.defects.DefectCampaign.run_per_block>` and the ``campaign``
      subcommand, so they are invariant to block order and block subset;
    * the ``windows`` reduction pools residuals in sample order and applies
      :func:`~repro.core.calibration.windows_from_pools`.

    Escape/detection counts and window deltas of the pipeline run are
    therefore bit-identical to the manual two-invocation flow with the same
    root seed, on any backend.

    Parameters mirror the ``repro-campaign campaign`` options; returns a
    :class:`~repro.engine.spec.StudyPlan` (run it with
    :meth:`~repro.engine.spec.StudyPlan.run`).
    """
    from .spec import CALIBRATE_THEN_CAMPAIGN, build_study
    spec = CALIBRATE_THEN_CAMPAIGN.override({
        "seed": seed,
        "calibrate.n_monte_carlo": n_monte_carlo,
        "windows.k": k,
        "windows.delta_floors": dict(delta_floors) if delta_floors else None,
        "campaign.blocks": list(blocks) if blocks else None,
        "campaign.samples": samples,
        "campaign.exhaustive": exhaustive,
        "campaign.exhaustive_threshold": exhaustive_threshold,
        "campaign.stop_on_detection": stop_on_detection,
        "campaign.batch_size": batch_size})
    return build_study(spec, adc_factory=adc_factory,
                       variation_spec=variation_spec)


def calibrate_then_campaign(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        on_failure: str = "raise",
        telemetry: Optional[TelemetryBus] = None,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None
) -> "Any":
    """Run window calibration and the defect campaign as one task graph.

    Convenience wrapper: :func:`build_calibrate_then_campaign` followed by
    :meth:`~repro.engine.spec.StudyPlan.run`.  ``backend``/``cache`` follow
    the usual engine conventions (serial and uncached by default); all
    other parameters mirror the ``repro-campaign campaign`` options.
    """
    plan = build_calibrate_then_campaign(
        k=k, n_monte_carlo=n_monte_carlo, seed=seed, blocks=blocks,
        samples=samples, exhaustive=exhaustive,
        exhaustive_threshold=exhaustive_threshold,
        stop_on_detection=stop_on_detection, batch_size=batch_size,
        adc_factory=adc_factory,
        variation_spec=variation_spec, delta_floors=delta_floors)
    return plan.run(backend=backend, cache=cache, progress=progress,
                    on_failure=on_failure, telemetry=telemetry)


# ===================================================================== built-in
# yield-loss study: calibrate -> campaign -> yield sweep -> escape analysis.

def _yield_stage_worker(context: Mapping[str, Any], task: Task,
                        rng: np.random.Generator,
                        inputs: Mapping[str, Any]) -> Any:
    """One empirical ``(k, yield)`` point from the pooled parent residuals.

    Pools are assembled in ``task.depends_on`` order (== Monte Carlo sample
    order), and sigma/mean derive through
    :func:`repro.core.calibration.windows_from_pools`, so the point is
    float-for-float what ``calibrate_windows(keep_pools=True)`` followed by
    :func:`repro.analysis.empirical_yield_loss` computes.
    """
    from ..analysis.yield_loss import empirical_yield_loss
    from ..core.calibration import WindowCalibration, windows_from_pools
    names = context["invariance_names"]
    pools = _pool_residuals(names, task, inputs)
    sigmas, means, deltas = windows_from_pools(
        pools, context["k"], context.get("delta_floors"))
    calibration = WindowCalibration(
        k=context["k"], n_samples=len(task.depends_on), sigmas=sigmas,
        means=means, deltas=deltas, residual_pools=pools)
    return empirical_yield_loss(calibration, task.payload,
                                context["n_cycles"])


def _escape_stage_worker(context: Mapping[str, Any], task: Task,
                         rng: np.random.Generator,
                         inputs: Mapping[str, Any]) -> Any:
    """Functional escape analysis over the campaign's undetected defects.

    Parent order is campaign task order, so the undetected-defect list -- and
    therefore the ``max_defects`` subsample drawn by
    :func:`repro.analysis.analyze_escapes` from its deterministic default rng
    -- matches the manual flow over the same records.
    """
    from ..analysis.escape_analysis import analyze_escapes
    from ..defects.sampling import SamplingPlan
    from ..defects.simulator import CampaignResult, _flatten_records
    from ..defects.universe import DefectUniverse
    records = _flatten_records([inputs[dep] for dep in task.depends_on])
    # Only undetected_defects() is consulted; universe/plan are inert here.
    result = CampaignResult(records=records, universe=DefectUniverse([]),
                            plan=SamplingPlan(exhaustive=True),
                            stop_on_detection=context["stop_on_detection"])
    return analyze_escapes(result, adc=context["adc_factory"](),
                           max_defects=context["max_escape_defects"])


def build_yield_loss_study(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        k_values: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0),
        n_cycles: int = 32,
        max_escape_defects: Optional[int] = 20,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None
) -> "Any":
    """Build the paper's full yield-loss study as one task graph.

    Thin wrapper compiling the canned
    :data:`~repro.engine.spec.YIELD_LOSS_STUDY` spec with these overrides.
    Five stages, one graph, no stage barriers::

        calib/0 ... calib/N-1        (defect-free Monte Carlo instances)
          |    \\      |
          |     windows              (delta = k*sigma + |mean|)
          |    /   |   \\
          |  campaign/<block>/...    (one defect injection + SymBIST each)
          |        \\   |   /
          |         escape           (functional test of undetected defects)
        yield/k=2 ... yield/k=6      (empirical yield loss per k)

    The calibration samples feed both the ``windows`` reduction and every
    ``yield`` point, so the yield sweep runs concurrently with the defect
    campaign; the ``escape`` stage starts as soon as the last defect task
    finishes.  With the same root ``seed`` the outcome is bit-identical to
    the manual flow (``calibrate_windows(keep_pools=True)`` +
    ``DefectCampaign.run`` + ``empirical_yield_loss`` per ``k`` +
    ``analyze_escapes``) on any backend.

    Parameters follow :func:`build_calibrate_then_campaign`;
    ``k_values``/``n_cycles`` mirror :func:`repro.analysis.yield_loss_sweep`
    and ``max_escape_defects`` mirrors
    :func:`repro.analysis.analyze_escapes`.  Returns a
    :class:`~repro.engine.spec.StudyPlan`.
    """
    from .spec import YIELD_LOSS_STUDY, build_study
    spec = YIELD_LOSS_STUDY.override({
        "seed": seed,
        "k": k,  # shared by the windows and yield stages, like the CLI --k
        "calibrate.n_monte_carlo": n_monte_carlo,
        "windows.delta_floors": dict(delta_floors) if delta_floors else None,
        "campaign.blocks": list(blocks) if blocks else None,
        "campaign.samples": samples,
        "campaign.exhaustive": exhaustive,
        "campaign.exhaustive_threshold": exhaustive_threshold,
        "campaign.stop_on_detection": stop_on_detection,
        "campaign.batch_size": batch_size,
        "yield.k_values": tuple(float(v) for v in k_values),
        "yield.n_cycles": n_cycles,
        "escape.max_escape_defects": max_escape_defects})
    return build_study(spec, adc_factory=adc_factory,
                       variation_spec=variation_spec)


# ===================================================================== built-in
# block study: per-block window calibration -> per-block defect campaigns ->
# per-block yield/coverage reduction, as one graph (Table I in one engine run).

def _block_summary_stage_worker(context: Mapping[str, Any], task: Task,
                                rng: np.random.Generator,
                                inputs: Mapping[str, Any]) -> Dict[str, Any]:
    """One block's yield/coverage reduction over its campaign records.

    The first parent is the block's windows task (for the delta table); the
    remaining parents are the block's defect tasks in campaign order.  The
    coverage estimators are the same ones
    :meth:`repro.defects.CampaignResult.block_report` applies, so the
    reduction is bit-identical to assembling a ``CampaignResult`` and asking
    it for the block's Table I row.
    """
    from ..defects.coverage import exhaustive_coverage, lwrs_coverage
    from ..defects.simulator import _flatten_records
    windows = inputs[task.depends_on[0]]
    records = _flatten_records([inputs[dep]
                                for dep in task.depends_on[1:]])
    detected = [r.detected for r in records]
    payload = task.payload
    if payload["exhaustive"]:
        coverage = exhaustive_coverage(detected,
                                       [r.defect for r in records])
    else:
        coverage = lwrs_coverage(
            detected, universe_size=payload["universe_size"],
            universe_likelihood=payload["universe_likelihood"])
    return {"block": payload["block"],
            "n_defects": payload["universe_size"],
            "n_simulated": len(records),
            "n_detected": int(sum(detected)),
            "coverage": coverage.value,
            "ci_half_width": coverage.ci_half_width,
            "modeled_sim_time": sum(r.modeled_sim_time for r in records),
            "wall_time": sum(r.wall_time for r in records),
            "deltas": dict(windows["deltas"])}


def build_block_study(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None,
        block_k: Optional[Mapping[str, float]] = None
) -> "Any":
    """Build the paper's per-block study (Table I) as one task graph.

    Thin wrapper compiling the canned
    :data:`~repro.engine.spec.BLOCK_STUDY` spec with these overrides.
    Four stages, one graph, no stage barriers::

        calib/0 ... calib/N-1            (defect-free Monte Carlo instances)
              \\     |     /
        windows/<block>  (one per block: delta = k_block*sigma + |mean|)
              |
        block/<block>/<i>/...  (one defect injection + SymBIST run each,
              |                 depending only on its own block's windows)
        summary/<block>  (per-block yield/coverage reduction)

    Every block's defect tasks depend only on that block's windows task, so
    a 3-defect block never holds the pool while a 300-defect block waits:
    the scheduler interleaves all blocks' tasks and the pool stays saturated
    from the first windows completion to the last summary.  This replaces
    the historical per-block loop of ``DefectCampaign.run_per_block``, which
    launched one engine run per block.

    Determinism: calibration per-sample seeds are drawn up front from
    ``default_rng(seed)`` (like :func:`repro.core.calibrate_windows` with
    ``rng=default_rng(seed)``), and each block's LWRS draws come from
    :func:`~repro.defects.sampling.block_seed_sequence` ``(seed, block)`` --
    so per-block windows, detections and coverage are bit-identical to
    running ``calibrate_windows`` followed by
    :meth:`DefectCampaign.run_per_block
    <repro.defects.DefectCampaign.run_per_block>` under the same root seed,
    on any backend, for any block order or worker count.

    ``block_k`` optionally overrides the guard-band multiplier per block
    (per-block window calibration); blocks not named keep the global ``k``.
    Other parameters follow :func:`build_calibrate_then_campaign`.  Returns
    a :class:`~repro.engine.spec.StudyPlan`.
    """
    from .spec import BLOCK_STUDY, build_study
    spec = BLOCK_STUDY.override({
        "seed": seed,
        "calibrate.n_monte_carlo": n_monte_carlo,
        "windows.k": k,
        "windows.delta_floors": dict(delta_floors) if delta_floors else None,
        "windows.block_k": dict(block_k) if block_k else None,
        "campaign.blocks": list(blocks) if blocks else None,
        "campaign.samples": samples,
        "campaign.exhaustive": exhaustive,
        "campaign.exhaustive_threshold": exhaustive_threshold,
        "campaign.stop_on_detection": stop_on_detection,
        "campaign.batch_size": batch_size})
    return build_study(spec, adc_factory=adc_factory,
                       variation_spec=variation_spec)


def block_study(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        on_failure: str = "raise",
        telemetry: Optional[TelemetryBus] = None,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None,
        block_k: Optional[Mapping[str, float]] = None
) -> "Any":
    """Run the per-block study (Table I) as one task graph.

    Convenience wrapper: :func:`build_block_study` followed by
    :meth:`~repro.engine.spec.StudyPlan.run`.  ``backend``/``cache`` follow
    the usual engine conventions (serial and uncached by default).
    """
    plan = build_block_study(
        k=k, n_monte_carlo=n_monte_carlo, seed=seed, blocks=blocks,
        samples=samples, exhaustive=exhaustive,
        exhaustive_threshold=exhaustive_threshold,
        stop_on_detection=stop_on_detection, batch_size=batch_size,
        adc_factory=adc_factory,
        variation_spec=variation_spec, delta_floors=delta_floors,
        block_k=block_k)
    return plan.run(backend=backend, cache=cache, progress=progress,
                    on_failure=on_failure, telemetry=telemetry)


def yield_loss_study(
        k: float = 5.0,
        n_monte_carlo: int = 50,
        seed: int = 1,
        blocks: Optional[Sequence[str]] = None,
        samples: int = 60,
        exhaustive: bool = False,
        exhaustive_threshold: int = 120,
        stop_on_detection: bool = True,
        batch_size: int = 1,
        k_values: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0),
        n_cycles: int = 32,
        max_escape_defects: Optional[int] = 20,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        on_failure: str = "raise",
        telemetry: Optional[TelemetryBus] = None,
        adc_factory: Optional[Callable[[], Any]] = None,
        variation_spec: Optional[Any] = None,
        delta_floors: Optional[Mapping[str, float]] = None
) -> "Any":
    """Run the end-to-end yield-loss study as one task graph.

    Convenience wrapper: :func:`build_yield_loss_study` followed by
    :meth:`~repro.engine.spec.StudyPlan.run`.  ``backend``/``cache`` follow
    the usual engine conventions (serial and uncached by default).
    """
    plan = build_yield_loss_study(
        k=k, n_monte_carlo=n_monte_carlo, seed=seed, blocks=blocks,
        samples=samples, exhaustive=exhaustive,
        exhaustive_threshold=exhaustive_threshold,
        stop_on_detection=stop_on_detection, batch_size=batch_size,
        k_values=k_values,
        n_cycles=n_cycles, max_escape_defects=max_escape_defects,
        adc_factory=adc_factory, variation_spec=variation_spec,
        delta_floors=delta_floors)
    return plan.run(backend=backend, cache=cache, progress=progress,
                    on_failure=on_failure, telemetry=telemetry)


# Deprecated aliases: the per-study Plan/Outcome triplets collapsed into the
# single StudyPlan/StudyOutcome of the declarative spec layer.
_SPEC_ALIASES = {
    "CalibrateCampaignPlan": "StudyPlan",
    "BlockStudyPlan": "StudyPlan",
    "YieldLossStudyPlan": "StudyPlan",
    "CalibrateCampaignOutcome": "StudyOutcome",
    "BlockStudyOutcome": "StudyOutcome",
    "YieldLossStudyOutcome": "StudyOutcome",
}


def __getattr__(name: str) -> Any:
    if name in _SPEC_ALIASES:
        from . import spec
        return getattr(spec, _SPEC_ALIASES[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
