"""Stage registry of the declarative study layer.

Every simulation stage a study can be composed of -- the defect-free Monte
Carlo calibration, the windows reduction, the defect campaign, the yield
sweep, the escape analysis, the per-block summary reduction -- is registered
here under a stable name with a **typed parameter schema** and an *expander*
that knows how to add the stage's tasks (and their dependency edges) to the
study graph.  :func:`repro.engine.spec.build_study` walks a
:class:`~repro.engine.spec.StudySpec` stage by stage, resolves each entry
against this registry, validates its parameters and calls the expander --
so a study is *data* (a TOML/JSON document) rather than a bespoke builder
function, and a new workload shape is a new spec, not new scaffolding code.

Built-in stages
---------------

==============  ============================================================
``calibrate``   defect-free Monte Carlo instances (one task per sample)
``windows``     comparison-window reduction (global, or one per block with
                ``per_block = true``)
``campaign``    defect injection + SymBIST run (one task per sampled defect)
``yield``       empirical yield-loss point per ``k_values`` entry
``escape``      functional escape analysis of undetected defects
``block-summary``  per-block yield/coverage reduction (Table I rows)
==============  ============================================================

Determinism: each expander derives every random draw from the study's root
seed through a stage-specific derivation -- calibration per-sample seeds
from ``default_rng(seed)``, per-block LWRS draws from
:func:`~repro.defects.sampling.block_seed_sequence` ``(seed, block path)``
-- exactly like the historical hand-written builders, so compiled graphs
are bit-identical to them (and replay their cache artifacts) under the same
root seed on any backend.

Third-party stages can call :func:`register_stage` with their own
:class:`StageDefinition`; the ``repro-campaign run`` subcommand picks them
up as soon as the defining module is imported.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..circuit.errors import CalibrationError, EngineError
from .cache import canonical_json, factory_token
from .executor import IDENTITY_CODEC, ResultCodec
from .task import Task

# --------------------------------------------------------------------- params

#: Parameter kinds understood by the schema (see :func:`coerce_param`).
PARAM_KINDS = ("int", "float", "bool", "str", "str_list", "float_list",
               "float_map")


@dataclass(frozen=True)
class StageParam:
    """One typed parameter of a registered stage.

    ``kind`` names a JSON/TOML-compatible type from :data:`PARAM_KINDS`;
    ``nullable`` parameters additionally accept ``None`` (JSON ``null``).
    ``default`` is applied when a study names the stage without the
    parameter.
    """

    name: str
    kind: str
    default: Any = None
    nullable: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise EngineError(
                f"parameter {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {', '.join(PARAM_KINDS)}")


def coerce_param(param: StageParam, value: Any, where: str) -> Any:
    """Coerce ``value`` to the parameter's kind, with an actionable error.

    Normalises across the serialisation formats (TOML integers for float
    parameters, JSON lists for tuple-valued parameters) so a spec
    round-trips to an identical :class:`~repro.engine.spec.StudySpec`
    whatever format it travelled through.  Lists normalise to tuples and
    maps to plain dicts.
    """
    def fail(expected: str) -> "EngineError":
        return EngineError(
            f"{where}: parameter {param.name!r} expects {expected}, "
            f"got {value!r} ({type(value).__name__})")

    if value is None:
        if param.nullable:
            return None
        raise fail(f"a non-null {param.kind}")
    if param.kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise fail("an integer")
        return int(value)
    if param.kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise fail("a number")
        return float(value)
    if param.kind == "bool":
        if not isinstance(value, bool):
            raise fail("a boolean")
        return bool(value)
    if param.kind == "str":
        if not isinstance(value, str):
            raise fail("a string")
        return str(value)
    if param.kind == "str_list":
        if isinstance(value, str):
            # CLI convenience: --set campaign.blocks=sc_array,subdac1
            value = [entry for entry in value.split(",") if entry]
        if not isinstance(value, (list, tuple)) or \
                not all(isinstance(entry, str) for entry in value):
            raise fail("a list of strings")
        return tuple(value)
    if param.kind == "float_list":
        if isinstance(value, str):
            try:
                value = [float(entry) for entry in value.split(",") if entry]
            except ValueError:
                raise fail("a list of numbers") from None
        if not isinstance(value, (list, tuple)) or not all(
                isinstance(entry, (int, float))
                and not isinstance(entry, bool) for entry in value):
            raise fail("a list of numbers")
        return tuple(float(entry) for entry in value)
    if param.kind == "float_map":
        if not isinstance(value, Mapping) or not all(
                isinstance(key, str) and isinstance(entry, (int, float))
                and not isinstance(entry, bool)
                for key, entry in value.items()):
            raise fail("a table of name -> number entries")
        return {key: float(entry) for key, entry in value.items()}
    raise fail(param.kind)  # pragma: no cover (kinds checked at definition)


# --------------------------------------------------------------- definitions

#: Expander contract: ``expand(build, name, params)`` adds the stage (and
#: its tasks, with dependency edges onto previously expanded stages) to
#: ``build.pipeline``.  ``build`` is the mutable
#: :class:`repro.engine.spec.StudyBuild` threaded through compilation.
StageExpander = Callable[[Any, str, Dict[str, Any]], None]


@dataclass(frozen=True)
class StageDefinition:
    """One registered stage kind: name, parameter schema, expander, codec."""

    name: str
    doc: str
    expand: StageExpander
    params: Tuple[StageParam, ...] = ()
    #: Stage kinds that must appear earlier in the study for this stage to
    #: compile (checked by the expanders with actionable messages).
    requires: Tuple[str, ...] = ()
    #: Lazy factory of the stage kind's result codec -- how this kind's
    #: results serialize into the artifact store (including whether they are
    #: array-heavy enough for ``.npy`` sidecars).  Lazy so registering a
    #: stage does not import its workload modules; ``None`` means the
    #: results are natively JSON (identity codec).
    codec: Optional[Callable[[], ResultCodec]] = None

    def make_codec(self) -> ResultCodec:
        """The stage kind's declared result codec (identity by default)."""
        return self.codec() if self.codec is not None else IDENTITY_CODEC

    def param(self, name: str) -> StageParam:
        for param in self.params:
            if param.name == name:
                return param
        known = ", ".join(sorted(p.name for p in self.params)) or "<none>"
        raise EngineError(
            f"stage {self.name!r} has no parameter {name!r}; "
            f"known parameters: {known}")

    def resolve_params(self, study_params: Mapping[str, Any],
                       stage_params: Mapping[str, Any],
                       where: str) -> Dict[str, Any]:
        """Defaults <- study-wide params <- per-stage params, coerced."""
        for name in stage_params:
            self.param(name)  # unknown-parameter rejection
        resolved: Dict[str, Any] = {}
        for param in self.params:
            if param.name in stage_params:
                value = stage_params[param.name]
            elif param.name in study_params:
                value = study_params[param.name]
            else:
                resolved[param.name] = param.default
                continue
            resolved[param.name] = coerce_param(param, value, where)
        return resolved


_REGISTRY: Dict[str, StageDefinition] = {}


def register_stage(definition: StageDefinition) -> StageDefinition:
    """Register a stage kind; rejects duplicate names."""
    if definition.name in _REGISTRY:
        raise EngineError(
            f"a stage named {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition
    return definition


def stage_definition(name: str) -> StageDefinition:
    """Look a stage kind up, with the available names in the error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise EngineError(
            f"unknown stage {name!r}; registered stages: {available}") \
            from None


def available_stages() -> List[StageDefinition]:
    """Registered stage definitions, in registration order."""
    return list(_REGISTRY.values())


# ---------------------------------------------------------------- expanders
#
# Each expander reproduces, task for task and spec for spec, what the
# historical hand-written builders in repro.engine.pipeline emitted -- the
# bit-identity (and cache-artifact compatibility) guarantees rest on that.

def _expand_calibrate(build: Any, name: str,
                      params: Dict[str, Any]) -> None:
    from .pipeline import _register_calibrate_stage

    n_monte_carlo = params["n_monte_carlo"]
    if n_monte_carlo <= 0:
        raise EngineError(
            f"n_monte_carlo must be positive, got {n_monte_carlo}")
    build.n_monte_carlo = n_monte_carlo
    (build.calib_ids, build.calib_spec, build.seeds_token,
     build.cacheable) = _register_calibrate_stage(
        build.pipeline, build.adc_factory, build.stimulus,
        build.invariances, build.variation_spec, build.seed, n_monte_carlo,
        stage=name, codec=stage_definition("calibrate").make_codec(),
        task_prefix=build.task_prefix, annotate=build.annotate)
    build.calibrate_stage = name


def _expand_windows(build: Any, name: str, params: Dict[str, Any]) -> None:
    from .pipeline import _windows_stage_worker

    build.require(name, "calibrate")
    k = params["k"]
    per_block = params["per_block"]
    delta_floors = params["delta_floors"]
    block_k = params["block_k"] or {}
    if block_k and not per_block:
        raise EngineError(
            f"stage {name!r}: block_k only applies with per_block = true")
    for k_value in [k, *block_k.values()]:
        if k_value <= 0:
            # Same up-front check as calibrate_windows: fail before any
            # Monte Carlo work runs, not inside a windows reduction task.
            raise CalibrationError(f"k must be positive, got {k_value}")
    build.nominal_k = k
    build.delta_floors = dict(delta_floors) if delta_floors else None
    build.windows_stage = name
    build.per_block = per_block

    floors = dict(delta_floors) if delta_floors else None
    if not per_block:
        windows_spec = None
        if build.cacheable:
            windows_spec = build.annotate({
                "driver": "symbist-pipeline-windows",
                "calibration": build.calib_spec,
                "k": k,
                "n_monte_carlo": build.n_monte_carlo,
                "seeds": build.seeds_token,
                "delta_floors": floors})
        build.pipeline.add_stage(
            name, _windows_stage_worker,
            context={"invariance_names": build.invariance_names, "k": k,
                     "delta_floors": floors})
        build.pipeline.add_task(name, Task(
            task_id=name, spec=windows_spec, deterministic=True,
            depends_on=tuple(build.calib_ids),
            group=build.calibrate_stage))
        build.windows_task_id = name
        build.windows_specs[None] = windows_spec
        return

    build.pipeline.add_stage(
        name, _windows_stage_worker,
        context={"invariance_names": build.invariance_names,
                 "delta_floors": floors})
    for block in build.block_list():
        k_block = float(block_k.get(block, k))
        windows_spec = None
        if build.cacheable:
            windows_spec = build.annotate({
                "driver": "symbist-block-windows",
                "calibration": build.calib_spec,
                "block": block,
                "k": k_block,
                "n_monte_carlo": build.n_monte_carlo,
                "seeds": build.seeds_token,
                "delta_floors": floors})
        windows_id = f"{name}/{block}"
        build.pipeline.add_task(name, Task(
            task_id=windows_id, payload={"k": k_block}, spec=windows_spec,
            deterministic=True, depends_on=tuple(build.calib_ids)))
        build.windows_task_ids[block] = windows_id
        build.windows_specs[block] = windows_spec


def _expand_campaign(build: Any, name: str, params: Dict[str, Any]) -> None:
    from ..defects.sampling import batch_spans
    from ..defects.simulator import MODEL_SECONDS_PER_CYCLE
    from .pipeline import _register_campaign_stage

    build.require(name, "windows")
    build.stop_on_detection = params["stop_on_detection"]
    batch_size = params["batch_size"]
    if batch_size <= 0:
        raise EngineError(
            f"batch_size must be positive, got {batch_size}")
    adc, fingerprint, universe = build.dut()
    build.worker_token = _register_campaign_stage(
        build.pipeline, adc, build.stimulus, build.mode,
        build.stop_on_detection, build.invariance_names, stage=name,
        codec=stage_definition("campaign").make_codec())
    build.campaign_stage = name

    # Per-block LWRS draws derive from the root seed + block path
    # (block_seed_sequence), exactly like DefectCampaign.run_per_block and
    # the campaign subcommand -- so the selection is identical for any block
    # order, block subset or worker count.
    selection = build.selection()
    # The per-block prefix is the historical literal "block"; a variant's
    # instance label already carries the variant prefix, the literal needs
    # it added explicitly.
    prefix = build.task_prefix + "block" if build.per_block else name
    driver = "symbist-block-defect" if build.per_block \
        else "symbist-pipeline-defect"
    for block in build.block_list():
        block_universe = universe.by_block(block)
        plan, defects = selection[block]
        windows_id = build.windows_task_ids[block] if build.per_block \
            else build.windows_task_id
        windows_spec = build.windows_specs[
            block if build.per_block else None]
        task_ids = []
        defect_specs = []
        if batch_size == 1:
            for j, defect in enumerate(defects):
                spec = None
                if build.cacheable:
                    spec = build.annotate(
                        {"driver": driver,
                         "defect_id": defect.defect_id,
                         "likelihood": defect.likelihood,
                         "adc": fingerprint,
                         "windows": windows_spec,
                         "mode": build.mode.value,
                         "stop_on_detection": build.stop_on_detection,
                         "seconds_per_cycle": MODEL_SECONDS_PER_CYCLE})
                    defect_specs.append(spec)
                task = Task(
                    task_id=f"{prefix}/{block}/{j}/{defect.defect_id}",
                    payload=defect, spec=spec, deterministic=True,
                    group=block, depends_on=(windows_id,))
                build.pipeline.add_task(name, task)
                task_ids.append(task.task_id)
        else:
            # Batches never span blocks, so per-block result assembly and
            # the seed-span scheme stay block-local.
            for start, stop in batch_spans(len(defects), batch_size):
                members = defects[start:stop]
                spec = None
                if build.cacheable:
                    spec = build.annotate(
                        {"driver": f"{driver}-batch",
                         "members": [{"defect_id": d.defect_id,
                                      "likelihood": d.likelihood}
                                     for d in members],
                         "adc": fingerprint,
                         "windows": windows_spec,
                         "mode": build.mode.value,
                         "stop_on_detection": build.stop_on_detection,
                         "seconds_per_cycle": MODEL_SECONDS_PER_CYCLE})
                    defect_specs.append(spec)
                task = Task(
                    task_id=f"{prefix}-batch/{block}/{start}-{stop}",
                    payload=list(members), spec=spec, deterministic=True,
                    group=block, depends_on=(windows_id,),
                    weight=len(members))
                build.pipeline.add_task(name, task)
                task_ids.append(task.task_id)
        build.block_plans[block] = plan
        build.block_universes[block] = block_universe
        build.block_task_ids[block] = task_ids
        build.block_defect_specs[block] = defect_specs


def _expand_block_summary(build: Any, name: str,
                          params: Dict[str, Any]) -> None:
    from .pipeline import _block_summary_stage_worker

    build.require(name, "campaign")
    if not build.per_block:
        raise EngineError(
            f"stage {name!r} reduces per-block windows; set "
            f"per_block = true on the windows stage (or drop the summary)")
    build.pipeline.add_stage(name, _block_summary_stage_worker)
    build.summary_stage = name
    for block in build.block_list():
        block_universe = build.block_universes[block]
        plan = build.block_plans[block]
        windows_id = build.windows_task_ids[block]
        summary_spec = None
        if build.cacheable:
            summary_spec = build.annotate({
                "driver": "symbist-block-summary",
                "block": block,
                "windows": build.windows_specs[block],
                "records": hashlib.sha256(canonical_json(
                    build.block_defect_specs[block]).encode()).hexdigest(),
                "exhaustive": plan.exhaustive,
                "universe_size": len(block_universe),
                "universe_likelihood": block_universe.total_likelihood})
        summary_id = f"{name}/{block}"
        build.pipeline.add_task(name, Task(
            task_id=summary_id,
            payload={"block": block, "exhaustive": plan.exhaustive,
                     "universe_size": len(block_universe),
                     "universe_likelihood": block_universe.total_likelihood},
            spec=summary_spec, deterministic=True,
            depends_on=(windows_id,) + tuple(build.block_task_ids[block])))
        build.summary_task_ids[block] = summary_id


def _expand_yield(build: Any, name: str, params: Dict[str, Any]) -> None:
    from .pipeline import _yield_stage_worker

    build.require(name, "calibrate")
    k_values = params["k_values"]
    n_cycles = params["n_cycles"]
    if n_cycles <= 0:
        raise EngineError(f"n_cycles must be positive, got {n_cycles}")
    if not k_values:
        raise EngineError("k_values must name at least one k")
    build.pipeline.add_stage(
        name, _yield_stage_worker,
        codec=stage_definition("yield").make_codec(),
        context={"invariance_names": build.invariance_names,
                 "k": params["k"], "n_cycles": n_cycles,
                 "delta_floors": build.delta_floors})
    build.yield_stage = name
    build.k_values = [float(value) for value in k_values]
    for index, k_value in enumerate(k_values):
        spec = None
        if build.cacheable:
            # Everything an empirical point depends on: the residual pools
            # (determined by the calibration spec + per-sample seeds) and
            # the point's own parameters.
            spec = build.annotate(
                {"driver": "symbist-study-yield", "k": float(k_value),
                 "n_cycles": n_cycles,
                 "calibration": build.calib_spec,
                 "seeds": build.seeds_token})
        task = Task(task_id=f"{name}/{index}/k={k_value:g}",
                    payload=float(k_value), spec=spec, deterministic=True,
                    depends_on=tuple(build.calib_ids))
        build.pipeline.add_task(name, task)
        build.yield_task_ids.append(task.task_id)


def _expand_escape(build: Any, name: str, params: Dict[str, Any]) -> None:
    from .pipeline import _escape_stage_worker

    build.require(name, "campaign")
    max_defects = params["max_escape_defects"]
    campaign_ids = [tid for block in build.block_list()
                    for tid in build.block_task_ids[block]]
    escape_spec = None
    if build.cacheable:
        defect_specs = [build.pipeline.graph.get(tid).spec
                        for tid in campaign_ids]
        escape_spec = build.annotate({
            "driver": "symbist-study-escape",
            "records": hashlib.sha256(
                canonical_json(defect_specs).encode()).hexdigest(),
            "max_defects": max_defects,
            "factory": factory_token(build.adc_factory)})
    build.pipeline.add_stage(
        name, _escape_stage_worker,
        codec=stage_definition("escape").make_codec(),
        context={"adc_factory": build.adc_factory,
                 "stop_on_detection": build.stop_on_detection,
                 "max_escape_defects": max_defects})
    build.escape_stage = name
    build.escape_task_id = name
    build.pipeline.add_task(name, Task(
        task_id=name, spec=escape_spec, deterministic=True,
        depends_on=tuple(campaign_ids)))


# ------------------------------------------------------------ registrations
#
# The codec factories are the per-stage-kind payload declarations: how each
# kind's results serialize into the artifact store.  They live here (not in
# the expanders) so tooling over the registry -- the warehouse indexer, a
# future artifact migrator -- can resolve a kind's storage shape without
# compiling a study.

def _calibrate_codec() -> ResultCodec:
    from ..core.calibration import RESIDUAL_CODEC
    return RESIDUAL_CODEC


def _campaign_codec() -> ResultCodec:
    from ..defects.simulator import RECORD_CODEC
    return RECORD_CODEC


def _yield_codec() -> ResultCodec:
    from ..analysis.yield_loss import POINT_CODEC
    return POINT_CODEC


def _escape_codec() -> ResultCodec:
    from ..analysis.escape_analysis import ESCAPE_CODEC
    return ESCAPE_CODEC


register_stage(StageDefinition(
    name="calibrate",
    doc="defect-free Monte Carlo instances (one task per sample); "
        "per-sample seeds derive from default_rng(root seed)",
    expand=_expand_calibrate,
    codec=_calibrate_codec,
    params=(
        StageParam("n_monte_carlo", "int", default=50,
                   doc="Monte Carlo samples of the window calibration"),
    )))

register_stage(StageDefinition(
    name="windows",
    doc="comparison-window reduction over the pooled calibration "
        "residuals (delta = k*sigma + |mean|); one global reduction, or "
        "one per block with per_block",
    expand=_expand_windows,
    requires=("calibrate",),
    params=(
        StageParam("k", "float", default=5.0,
                   doc="window guard-band multiplier"),
        StageParam("per_block", "bool", default=False,
                   doc="calibrate one window set per block instead of one "
                       "global set"),
        StageParam("delta_floors", "float_map", default=None, nullable=True,
                   doc="per-invariance lower bounds on the window "
                       "half-widths"),
        StageParam("block_k", "float_map", default=None, nullable=True,
                   doc="per-block guard-band overrides (per_block only); "
                       "blocks not named keep k"),
    )))

register_stage(StageDefinition(
    name="campaign",
    doc="defect injection + SymBIST run per sampled defect; per-block LWRS "
        "draws derive from block_seed_sequence(root seed, block path)",
    expand=_expand_campaign,
    codec=_campaign_codec,
    requires=("windows",),
    params=(
        StageParam("samples", "int", default=60,
                   doc="LWRS budget for blocks too large to exhaust"),
        StageParam("exhaustive", "bool", default=False,
                   doc="simulate every defect of every block"),
        StageParam("exhaustive_threshold", "int", default=120,
                   doc="blocks with at most this many defects are "
                       "simulated exhaustively"),
        StageParam("stop_on_detection", "bool", default=True,
                   doc="stop each defect's test at its first detection"),
        StageParam("blocks", "str_list", default=None, nullable=True,
                   doc="restrict the campaign to these block paths "
                       "(default: every block)"),
        StageParam("batch_size", "int", default=1,
                   doc="defects evaluated per task as one vectorized sweep "
                       "against a cached defect-free golden trace; results "
                       "are bit-identical for every batch size"),
    )))

register_stage(StageDefinition(
    name="yield",
    doc="one empirical yield-loss point per k_values entry, fed directly "
        "by the calibration samples",
    expand=_expand_yield,
    codec=_yield_codec,
    requires=("calibrate",),
    params=(
        StageParam("k", "float", default=5.0,
                   doc="nominal guard-band multiplier of the calibration "
                       "the points are reported against"),
        StageParam("k_values", "float_list",
                   default=(2.0, 3.0, 4.0, 5.0, 6.0),
                   doc="window multipliers of the yield-loss sweep"),
        StageParam("n_cycles", "int", default=32,
                   doc="checker invocations per SymBIST run assumed by the "
                       "analytic yield model"),
    )))

register_stage(StageDefinition(
    name="escape",
    doc="functional escape analysis over the campaign's undetected defects",
    expand=_expand_escape,
    codec=_escape_codec,
    requires=("campaign",),
    params=(
        StageParam("max_escape_defects", "int", default=20, nullable=True,
                   doc="functional-test budget: analyse at most this many "
                       "undetected defects (null = all)"),
    )))

register_stage(StageDefinition(
    name="block-summary",
    doc="per-block yield/coverage reduction over the campaign records "
        "(the Table I rows), one task per block",
    expand=_expand_block_summary,
    requires=("windows", "campaign"),
    params=()))
