"""Declarative studies: ``StudySpec`` documents compiled into task graphs.

A *study* -- the paper's window calibration, the Table I per-block sweep,
the yield-loss-versus-k experiment -- is a composition of simulation stages
into one dependency-aware task graph.  Historically each composition was a
bespoke ~300-line builder; this module makes them **data** instead:

* :class:`StageSpec` names one stage instance from the
  :mod:`~repro.engine.registry` (with parameter overrides and optional
  explicit ``after`` edges);
* :class:`StudySpec` is an ordered list of stage specs plus the root seed
  and study-wide shared parameters, round-trippable to/from TOML and JSON;
* :func:`build_study` compiles a spec against the stage registry into a
  :class:`StudyPlan` -- one :class:`~repro.engine.pipeline.Pipeline` whose
  task graph is bit-identical to the historical hand-written builders under
  the same root seed (same task ids, same cache specs, same per-stage seed
  derivations), on any backend;
* :meth:`StudyPlan.run` executes the graph and assembles a
  :class:`StudyOutcome` with named-stage accessors (``calibration``,
  ``results``, ``summaries``, ``yield_points``, ``escapes``).

The three canned studies -- :data:`CALIBRATE_THEN_CAMPAIGN`,
:data:`BLOCK_STUDY` and :data:`YIELD_LOSS_STUDY` -- are ``StudySpec``
constants; the legacy builders in :mod:`repro.engine.pipeline` and the
legacy CLI subcommands are thin wrappers compiling them through this path.
``repro-campaign run STUDY.toml`` (with ``--set stage.param=value``
overrides) runs any spec from the shell; see ``docs/studies.md`` and
``examples/studies/`` for the format.

A minimal study document::

    name = "calibrate-then-campaign"
    seed = 1

    [params]            # study-wide: applies to every stage declaring it
    k = 5.0

    [[stages]]
    stage = "calibrate"
    [stages.params]
    n_monte_carlo = 50

    [[stages]]
    stage = "windows"
    after = ["calibrate"]

    [[stages]]
    stage = "campaign"
    after = ["windows"]
    [stages.params]
    samples = 60
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..circuit.errors import DutSpecError, EngineError
from .backends import ExecutionBackend
from .cache import ResultCache
from .executor import CampaignReport, ProgressCallback
from .pipeline import Pipeline, PipelineResult
from .registry import coerce_param, stage_definition
from .telemetry import TelemetryBus

__all__ = [
    "BLOCK_STUDY", "CALIBRATE_THEN_CAMPAIGN", "CANNED_STUDIES", "StageSpec",
    "StudyBuild", "StudyOutcome", "StudyPlan", "StudySpec", "VariantSpec",
    "YIELD_LOSS_STUDY", "build_study", "load_study", "run_study",
]

#: Variant labels become task-id prefixes and warehouse column values, so
#: they are restricted to filesystem/identifier-safe characters.
_VARIANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


# ===================================================================== model

@dataclass(frozen=True)
class StageSpec:
    """One stage instance of a study.

    ``stage`` is the registry kind; ``name`` the instance label (defaults
    to the kind) used for pipeline stage names, task-id prefixes and
    ``--set name.param=value`` overrides; ``after`` optionally names
    earlier instances this stage consumes (purely declarative -- the
    expander derives the actual task-level edges -- but validated, so a
    spec documents its own data flow).
    """

    stage: str
    name: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    after: Tuple[str, ...] = ()

    @property
    def label(self) -> str:
        return self.name if self.name is not None else self.stage


@dataclass(frozen=True)
class VariantSpec:
    """One DUT variant of a multi-variant study.

    ``name`` labels the variant (task-id prefix, JSON/warehouse ``variant``
    column); ``dut`` holds the variant's overrides, merged over the study's
    ``[dut]`` table at compile time.
    """

    name: str
    dut: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class StudySpec:
    """A declarative study: stages + root seed + shared parameters.

    ``params`` holds study-wide values applied to every stage whose schema
    declares the parameter (e.g. one ``k`` feeding both the ``windows`` and
    ``yield`` stages); per-stage ``params`` override them.  ``dut``
    describes the device under test declaratively (a
    :class:`~repro.dut.DutSpec` payload; empty = the paper's device) and
    ``variants`` fans the whole stage list out over several DUT overlays in
    one task graph.  Specs are plain data: equal specs compile to identical
    graphs, and :meth:`to_toml`/:meth:`from_toml`/:meth:`to_jsonable`/
    :meth:`from_jsonable` round-trip them losslessly (parameters equal to
    their registry defaults are normalised away on load).
    """

    name: str
    seed: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)
    stages: Tuple[StageSpec, ...] = ()
    dut: Mapping[str, Any] = field(default_factory=dict)
    variants: Tuple[VariantSpec, ...] = ()

    # ------------------------------------------------------------ validation
    def validated(self) -> "StudySpec":
        """Normalise and validate against the registry; raise on problems.

        Checks stage kinds, instance-name uniqueness, ``after`` references,
        parameter names and types; coerces every parameter to its declared
        kind and drops entries equal to their defaults, so two specs that
        mean the same thing compare equal whatever format they came from.
        """
        if not self.name:
            raise EngineError("a study needs a non-empty name")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise EngineError(
                f"study {self.name!r}: seed must be an integer, "
                f"got {self.seed!r}")
        if not self.stages:
            raise EngineError(f"study {self.name!r} declares no stages")

        seen: Dict[str, str] = {}
        stages: List[StageSpec] = []
        for entry in self.stages:
            definition = stage_definition(entry.stage)
            label = entry.label
            if label in seen:
                raise EngineError(
                    f"study {self.name!r} declares two stages named "
                    f"{label!r}; give one of them a distinct name = ...")
            for upstream in entry.after:
                if upstream not in seen:
                    raise EngineError(
                        f"study {self.name!r}: stage {label!r} comes after "
                        f"{upstream!r}, which is not an earlier stage of "
                        f"this study")
            where = f"study {self.name!r}, stage {label!r}"
            params = {}
            for key, value in entry.params.items():
                param = definition.param(key)
                coerced = coerce_param(param, value, where)
                # A stage value equal to the registry default is redundant
                # -- unless a study-wide value for the same key exists, in
                # which case the stage entry is a deliberate pin that must
                # survive normalisation to keep overriding it.
                if coerced != param.default or key in self.params:
                    params[key] = coerced
            name = None if entry.name == entry.stage else entry.name
            stages.append(StageSpec(stage=entry.stage, name=name,
                                    params=params,
                                    after=tuple(entry.after)))
            seen[label] = entry.stage

        # Study-wide params must be meaningful to at least one stage.
        params = {}
        for key, value in self.params.items():
            declaring = [stage_definition(entry.stage).param(key)
                         for entry in stages
                         if any(p.name == key for p in
                                stage_definition(entry.stage).params)]
            if not declaring:
                names = sorted({p.name for entry in stages for p in
                                stage_definition(entry.stage).params})
                raise EngineError(
                    f"study {self.name!r}: no stage of this study has a "
                    f"parameter {key!r}; known parameters: "
                    f"{', '.join(names)}")
            coerced = coerce_param(declaring[0], value,
                                   f"study {self.name!r}")
            # A study-wide value equal to every declaring stage's default
            # is redundant; drop it so equivalent specs compare equal.
            if any(coerced != param.default for param in declaring):
                params[key] = coerced

        dut, variants = self._validated_dut()
        return StudySpec(name=self.name, seed=int(self.seed), params=params,
                         stages=tuple(stages), dut=dut, variants=variants)

    def _validated_dut(self) -> Tuple[Dict[str, Any], Tuple[VariantSpec, ...]]:
        """Validate/normalise the ``[dut]`` table and ``[[variants]]`` list.

        The base payload is normalised through a ``DutSpec`` round-trip
        (spelled-out defaults drop away, so equivalent specs compare
        equal); each variant overlay is checked to merge into a valid
        spec.  Raises :class:`EngineError` with the underlying
        :class:`~repro.circuit.errors.DutSpecError` message on problems.
        """
        from ..dut import DutSpec
        try:
            base = DutSpec.from_jsonable(self.dut)
        except DutSpecError as exc:
            raise EngineError(f"study {self.name!r}, [dut]: {exc}") from exc
        seen = set()
        variants = []
        for position, variant in enumerate(self.variants):
            name = variant.name
            if not isinstance(name, str) or not _VARIANT_NAME.match(name):
                raise EngineError(
                    f"study {self.name!r}: variants[{position}] needs a "
                    f"name of letters, digits, '.', '_' or '-' (it becomes "
                    f"a task-id prefix), got {name!r}")
            if name in seen:
                raise EngineError(
                    f"study {self.name!r} declares two variants named "
                    f"{name!r}; variant names must be unique")
            seen.add(name)
            if not isinstance(variant.dut, Mapping):
                raise EngineError(
                    f"study {self.name!r}: variants[{position}].dut must "
                    f"be a table of DUT overrides")
            try:
                base.merged(variant.dut)
            except DutSpecError as exc:
                raise EngineError(
                    f"study {self.name!r}, variant {name!r}: {exc}") from exc
            variants.append(VariantSpec(name=name, dut=dict(variant.dut)))
        return base.to_jsonable(), tuple(variants)

    # ------------------------------------------------------------- overrides
    def override(self, assignments: Mapping[str, Any]) -> "StudySpec":
        """A new spec with dotted-path overrides applied.

        Keys: ``seed`` (root seed), ``<param>`` (study-wide shared
        parameter), ``<stage>.<param>`` (one stage instance's parameter,
        by instance label) or ``dut.<field>`` (one DUT field, e.g.
        ``dut.resolution_bits=8``; nested paths like
        ``dut.block_params.bandgap.vbg`` reach into sub-tables).  A value
        of ``None`` removes the entry for non-nullable parameters (falling
        back to the registry default) and is stored as an explicit null
        for nullable ones.
        """
        spec = self.validated()
        seed = spec.seed
        params = dict(spec.params)
        dut: Dict[str, Any] = {key: dict(value)
                               if isinstance(value, Mapping) else value
                               for key, value in spec.dut.items()}
        stage_params: Dict[str, Dict[str, Any]] = {
            entry.label: dict(entry.params) for entry in spec.stages}
        labels = {entry.label: entry.stage for entry in spec.stages}

        for key, value in assignments.items():
            if key == "seed":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise EngineError(
                        f"--set seed expects an integer, got {value!r}")
                seed = value
                continue
            if key == "dut" or key.startswith("dut."):
                if key == "dut":
                    raise EngineError(
                        "--set dut expects a field path, e.g. "
                        "dut.resolution_bits=8")
                _assign_dut_path(dut, key[len("dut."):].split("."), value)
                continue
            if "." in key:
                label, param_name = key.split(".", 1)
                if label not in labels:
                    known = ", ".join(sorted(labels)) or "<none>"
                    raise EngineError(
                        f"study {spec.name!r} has no stage named {label!r} "
                        f"(known stages: {known}); use <stage>.<param>")
                param = stage_definition(labels[label]).param(param_name)
                if value is None and not param.nullable:
                    stage_params[label].pop(param_name, None)
                else:
                    stage_params[label][param_name] = value
                continue
            # Study-wide shared parameter; validated() checks it is known.
            if value is None:
                params.pop(key, None)
            else:
                params[key] = value

        stages = tuple(replace(entry, params=stage_params[entry.label])
                       for entry in spec.stages)
        return StudySpec(name=spec.name, seed=seed, params=params,
                         stages=stages, dut=dut,
                         variants=spec.variants).validated()

    # ---------------------------------------------------------------- JSON
    def to_jsonable(self) -> Dict[str, Any]:
        """A JSON-ready dict (lists for tuples, minimal keys)."""
        spec = self.validated()
        stages = []
        for entry in spec.stages:
            stage: Dict[str, Any] = {"stage": entry.stage}
            if entry.name is not None and entry.name != entry.stage:
                stage["name"] = entry.name
            if entry.after:
                stage["after"] = list(entry.after)
            if entry.params:
                stage["params"] = _jsonable_params(entry.params)
            stages.append(stage)
        payload: Dict[str, Any] = {"name": spec.name, "seed": spec.seed}
        if spec.dut:
            payload["dut"] = {key: dict(value)
                              if isinstance(value, Mapping) else value
                              for key, value in spec.dut.items()}
        if spec.params:
            payload["params"] = _jsonable_params(spec.params)
        payload["stages"] = stages
        if spec.variants:
            payload["variants"] = [
                {"name": variant.name, **({"dut": dict(variant.dut)}
                                          if variant.dut else {})}
                for variant in spec.variants]
        return payload

    @classmethod
    def from_jsonable(cls, payload: Any, source: str = "study") -> "StudySpec":
        """Parse (and validate) a spec from JSON/TOML-shaped data."""
        if not isinstance(payload, Mapping):
            raise EngineError(
                f"{source}: expected a table/object at the top level, "
                f"got {type(payload).__name__}")
        known = {"name", "seed", "params", "stages", "dut", "variants"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise EngineError(
                f"{source}: unknown top-level keys {unknown}; expected "
                f"{sorted(known)}")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise EngineError(f"{source}: a study needs a string 'name'")
        raw_stages = payload.get("stages")
        if not isinstance(raw_stages, Sequence) or isinstance(raw_stages, str):
            raise EngineError(
                f"{source}: 'stages' must be an array of stage tables "
                f"([[stages]] in TOML)")
        stages = []
        for position, raw in enumerate(raw_stages):
            if not isinstance(raw, Mapping):
                raise EngineError(
                    f"{source}: stages[{position}] is not a table/object")
            stage_known = {"stage", "name", "after", "params"}
            stage_unknown = sorted(set(raw) - stage_known)
            if stage_unknown:
                raise EngineError(
                    f"{source}: stages[{position}] has unknown keys "
                    f"{stage_unknown}; expected {sorted(stage_known)}")
            kind = raw.get("stage")
            if not isinstance(kind, str) or not kind:
                raise EngineError(
                    f"{source}: stages[{position}] needs a string 'stage' "
                    f"naming a registered stage")
            after = raw.get("after", ())
            if isinstance(after, str) or not isinstance(after, Sequence):
                raise EngineError(
                    f"{source}: stages[{position}].after must be a list of "
                    f"stage names")
            params = raw.get("params", {})
            if not isinstance(params, Mapping):
                raise EngineError(
                    f"{source}: stages[{position}].params must be a table")
            stages.append(StageSpec(stage=kind, name=raw.get("name"),
                                    params=dict(params),
                                    after=tuple(after)))
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise EngineError(f"{source}: 'params' must be a table")
        dut = payload.get("dut", {})
        if not isinstance(dut, Mapping):
            raise EngineError(
                f"{source}: 'dut' must be a table of DutSpec fields "
                f"([dut] in TOML)")
        raw_variants = payload.get("variants", ())
        if isinstance(raw_variants, str) or \
                not isinstance(raw_variants, Sequence):
            raise EngineError(
                f"{source}: 'variants' must be an array of variant tables "
                f"([[variants]] in TOML)")
        variants = []
        for position, raw in enumerate(raw_variants):
            if not isinstance(raw, Mapping):
                raise EngineError(
                    f"{source}: variants[{position}] is not a table/object")
            variant_unknown = sorted(set(raw) - {"name", "dut"})
            if variant_unknown:
                raise EngineError(
                    f"{source}: variants[{position}] has unknown keys "
                    f"{variant_unknown}; expected ['dut', 'name']")
            variant_name = raw.get("name")
            if not isinstance(variant_name, str) or not variant_name:
                raise EngineError(
                    f"{source}: variants[{position}] needs a string 'name'")
            variant_dut = raw.get("dut", {})
            if not isinstance(variant_dut, Mapping):
                raise EngineError(
                    f"{source}: variants[{position}].dut must be a table "
                    f"of DUT overrides")
            variants.append(VariantSpec(name=variant_name,
                                        dut=dict(variant_dut)))
        return cls(name=name, seed=payload.get("seed", 1),
                   params=dict(params), stages=tuple(stages),
                   dut=dict(dut), variants=tuple(variants)).validated()

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str, source: str = "study") -> "StudySpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise EngineError(f"{source}: not valid JSON: {exc}") from None
        return cls.from_jsonable(payload, source=source)

    # ---------------------------------------------------------------- TOML
    def to_toml(self) -> str:
        """Emit the spec as TOML (the canonical on-disk study format).

        TOML cannot express ``null``.  After normalisation the only
        ``None`` values left in a spec are *meaningful* explicit nulls
        (e.g. ``escape.max_escape_defects = null`` = analyse everything),
        so emitting would silently change the study on the way back in;
        :class:`~repro.circuit.errors.EngineError` is raised instead --
        use :meth:`to_json` for such specs.
        """
        payload = self.to_jsonable()
        lines = [f"name = {_toml_value(payload['name'])}",
                 f"seed = {_toml_value(payload['seed'])}"]
        if payload.get("dut"):
            lines += ["", "[dut]"]
            lines += _toml_table(payload["dut"], "[dut]")
        if payload.get("params"):
            lines += ["", "[params]"]
            lines += _toml_table(payload["params"], "[params]")
        for stage in payload["stages"]:
            lines += ["", "[[stages]]", f"stage = {_toml_value(stage['stage'])}"]
            if "name" in stage:
                lines.append(f"name = {_toml_value(stage['name'])}")
            if "after" in stage:
                lines.append(f"after = {_toml_value(stage['after'])}")
            if stage.get("params"):
                lines.append("[stages.params]")
                lines += _toml_table(stage["params"],
                                     f"stage {stage['stage']!r}")
        for variant in payload.get("variants", []):
            lines += ["", "[[variants]]",
                      f"name = {_toml_value(variant['name'])}"]
            if variant.get("dut"):
                lines.append("[variants.dut]")
                lines += _toml_table(variant["dut"],
                                     f"variant {variant['name']!r}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str, source: str = "study") -> "StudySpec":
        payload = _parse_toml(text, source)
        return cls.from_jsonable(payload, source=source)


def _jsonable_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()}


def _assign_dut_path(dut: Dict[str, Any], path: Sequence[str],
                     value: Any) -> None:
    """Apply one ``--set dut.<path>=value`` assignment into a DUT payload.

    Walks/creates nested tables for multi-segment paths
    (``block_params.bandgap.vbg``); ``None`` removes the leaf so the field
    falls back to its default.  Field validation happens afterwards in
    :meth:`StudySpec.validated` via the DutSpec round-trip.
    """
    table = dut
    for position, segment in enumerate(path[:-1]):
        inner = table.get(segment)
        if inner is None:
            if value is None:
                return  # removing below a missing table: nothing to do
            inner = table[segment] = {}
        elif not isinstance(inner, dict):
            joined = ".".join(["dut", *path[:position + 1]])
            raise EngineError(
                f"--set dut.{'.'.join(path)}: {joined} is not a table")
        table = inner
    if value is None:
        table.pop(path[-1], None)
    else:
        table[path[-1]] = value


def _toml_value(value: Any) -> str:
    """Serialise one scalar/list/map parameter value as TOML."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings == JSON strings
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(entry) for entry in value) + "]"
    if isinstance(value, Mapping):
        body = ", ".join(f"{json.dumps(key)} = {_toml_value(entry)}"
                         for key, entry in value.items())
        return "{ " + body + " }" if body else "{}"
    raise EngineError(f"cannot serialise {value!r} to TOML")


def _toml_table(params: Mapping[str, Any], where: str) -> List[str]:
    for key, value in params.items():
        if value is None:
            # Normalisation already dropped redundant nulls; one that
            # survived is semantically meaningful and TOML cannot say it.
            raise EngineError(
                f"{where}: parameter {key!r} is an explicit null, which "
                f"TOML cannot express; serialise this spec with to_json() "
                f"instead")
    return [f"{key} = {_toml_value(value)}" for key, value in params.items()]


def _parse_toml(text: str, source: str) -> Any:
    try:
        import tomllib
    except ImportError:  # pragma: no cover (python < 3.11)
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise EngineError(
                f"{source}: reading TOML study specs needs Python >= 3.11 "
                f"(tomllib) or the 'tomli' package; alternatively convert "
                f"the spec to JSON") from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise EngineError(f"{source}: not valid TOML: {exc}") from None


def load_study(path: str) -> StudySpec:
    """Load a study spec from a ``.toml`` or ``.json`` file.

    A bare canned-study name (``block-study``, ...) is also accepted, so
    ``repro-campaign run block-study`` works without a file on disk.
    """
    if path in CANNED_STUDIES:
        return CANNED_STUDIES[path]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        canned = ", ".join(sorted(CANNED_STUDIES))
        raise EngineError(
            f"cannot read study spec {path!r} ({exc.strerror or exc}); "
            f"expected a .toml/.json study file or one of the canned "
            f"studies: {canned}") from None
    if path.endswith(".json"):
        return StudySpec.from_json(text, source=path)
    return StudySpec.from_toml(text, source=path)


# =================================================================== compile

class StudyBuild:
    """Mutable state threaded through stage expansion by :func:`build_study`.

    Expanders (see :mod:`repro.engine.registry`) read shared context (the
    stimulus, invariances, device under test, LWRS selection) from here and
    record what they produced (task ids, cache spec fragments) for
    downstream stages and the final :class:`StudyPlan`.
    """

    def __init__(self, spec: StudySpec, adc_factory: Any,
                 variation_spec: Any, dut_spec: Any = None,
                 variant: Optional[str] = None,
                 pipeline: Optional[Pipeline] = None,
                 seed: Optional[int] = None) -> None:
        from ..adc.sar_adc import DutAdcFactory, SarAdc
        from ..core.invariance import build_invariances
        from ..core.stimulus import SymBistStimulus
        from ..core.test_time import CheckingMode
        from ..dut import default_dut

        self.spec = spec
        self.dut_spec = dut_spec if dut_spec is not None else default_dut()
        self.variant = variant
        #: Prefixed onto task ids (and pipeline stage names, by
        #: ``build_study``) so several variants share one task graph without
        #: id collisions; empty on the default single-DUT path, which keeps
        #: every historical id byte-identical.
        self.task_prefix = f"{variant}/" if variant else ""
        self.seed = spec.seed if seed is None else seed
        if adc_factory is not None:
            self.adc_factory = adc_factory
        elif self.dut_spec.is_default:
            self.adc_factory = SarAdc
        else:
            self.adc_factory = DutAdcFactory(self.dut_spec)
        self.variation_spec = variation_spec if variation_spec is not None \
            else self.dut_spec.variation_spec()
        self.pipeline = pipeline if pipeline is not None \
            else Pipeline(spec.name)
        # At the default DutSpec these are exactly SymBistStimulus()'s own
        # defaults, so the stimulus dataclass -- and every cache spec it
        # feeds -- is identical to the historical construction.
        self.stimulus = SymBistStimulus(
            input_diff=self.dut_spec.test_input_diff,
            input_cm=self.dut_spec.common_mode,
            counter_bits=self.dut_spec.half_bits)
        self.invariances = build_invariances()
        self.invariance_names = [inv.name for inv in self.invariances]
        self.mode = CheckingMode.SEQUENTIAL

        #: kind -> instance label, filled as stages expand.
        self.expanded: Dict[str, str] = {}

        # calibrate outputs
        self.calibrate_stage: Optional[str] = None
        self.n_monte_carlo = 0
        self.calib_ids: List[str] = []
        self.calib_spec: Any = None
        self.seeds_token: Optional[str] = None
        self.cacheable = False

        # windows outputs
        self.windows_stage: Optional[str] = None
        self.per_block = False
        self.nominal_k = 5.0
        self.delta_floors: Optional[Dict[str, float]] = None
        self.windows_task_id: Optional[str] = None
        self.windows_task_ids: Dict[str, str] = {}
        self.windows_specs: Dict[Any, Any] = {}

        # campaign outputs
        self.campaign_stage: Optional[str] = None
        self.stop_on_detection = True
        self.worker_token = ""
        self.block_plans: Dict[str, Any] = {}
        self.block_universes: Dict[str, Any] = {}
        self.block_task_ids: Dict[str, List[str]] = {}
        self.block_defect_specs: Dict[str, List[Any]] = {}

        # summary / yield / escape outputs
        self.summary_stage: Optional[str] = None
        self.summary_task_ids: Dict[str, str] = {}
        self.yield_stage: Optional[str] = None
        self.yield_task_ids: List[str] = []
        self.k_values: List[float] = []
        self.escape_stage: Optional[str] = None
        self.escape_task_id: Optional[str] = None

        self._dut: Optional[Tuple[Any, str, Any]] = None
        self._selection: Optional[Mapping[str, Any]] = None
        self._block_list: Optional[List[str]] = None

    # ------------------------------------------------------------- plumbing
    def require(self, name: str, kind: str) -> str:
        """The instance label of an already expanded ``kind``, or raise."""
        try:
            return self.expanded[kind]
        except KeyError:
            raise EngineError(
                f"study {self.spec.name!r}: stage {name!r} needs an "
                f"upstream {kind!r} stage; declare one earlier in the "
                f"stage list") from None

    def annotate(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Fold the build's DUT fingerprint / variant label into one cache
        spec.  A no-op (the very same dict) for a default-DUT non-variant
        build, so historical cache keys stay byte-identical; otherwise the
        extra keys both segregate cache entries and let the warehouse
        indexer attribute artifacts to their variant."""
        if self.dut_spec.is_default and self.variant is None:
            return spec
        annotated = dict(spec)
        if not self.dut_spec.is_default:
            annotated["dut"] = self.dut_spec.fingerprint()
        if self.variant is not None:
            annotated["variant"] = self.variant
        return annotated

    def dut(self) -> Tuple[Any, str, Any]:
        """The device under test: ``(adc, fingerprint, universe)``, built
        once per study however many stages consult it."""
        from .pipeline import _build_dut
        if self._dut is None:
            self._dut = _build_dut(self.adc_factory)
        return self._dut

    def _campaign_params(self) -> Dict[str, Any]:
        """The campaign stage's resolved parameters (it may not have
        expanded yet when per-block windows need the block list)."""
        for entry in self.spec.stages:
            if entry.stage == "campaign":
                definition = stage_definition("campaign")
                return definition.resolve_params(
                    self.spec.params, entry.params,
                    f"study {self.spec.name!r}, stage {entry.label!r}")
        raise EngineError(
            f"study {self.spec.name!r}: per-block windows and summaries "
            f"need a 'campaign' stage to define the block sweep")

    def block_list(self) -> List[str]:
        """The swept blocks, in sweep order (campaign ``blocks`` param, or
        every block of the universe)."""
        if self._block_list is None:
            params = self._campaign_params()
            universe = self.dut()[2]
            blocks = params["blocks"]
            self._block_list = list(blocks) if blocks \
                else universe.block_paths()
        return self._block_list

    def selection(self) -> Mapping[str, Any]:
        """The per-block LWRS selection, derived from ``(root seed, block
        path)`` exactly like :meth:`DefectCampaign.run_per_block`."""
        from ..defects.sampling import per_block_selection
        if self._selection is None:
            params = self._campaign_params()
            self._selection = per_block_selection(
                self.dut()[2], self.seed, params["samples"],
                exhaustive_threshold=params["exhaustive_threshold"],
                blocks=self.block_list(), exhaustive=params["exhaustive"])
        return self._selection

    # ----------------------------------------------------------------- plan
    def plan(self) -> "StudyPlan":
        return StudyPlan(
            spec=self.spec, pipeline=self.pipeline,
            k=self.nominal_k, n_monte_carlo=self.n_monte_carlo,
            stop_on_detection=self.stop_on_detection,
            invariance_names=list(self.invariance_names),
            blocks=list(self._block_list or []),
            block_plans=self.block_plans,
            block_universes=self.block_universes,
            block_task_ids=self.block_task_ids,
            calibration_task_ids=list(self.calib_ids),
            calibrate_stage=self.calibrate_stage,
            windows_stage=self.windows_stage,
            per_block=self.per_block,
            windows_task_id=self.windows_task_id,
            windows_task_ids=dict(self.windows_task_ids),
            campaign_stage=self.campaign_stage,
            summary_stage=self.summary_stage,
            summary_task_ids=dict(self.summary_task_ids),
            yield_stage=self.yield_stage,
            yield_task_ids=list(self.yield_task_ids),
            k_values=list(self.k_values),
            escape_stage=self.escape_stage,
            escape_task_id=self.escape_task_id,
            worker_token=self.worker_token,
            variant=self.variant,
            dut_fingerprint=self.dut_spec.fingerprint())


def build_study(spec: StudySpec,
                adc_factory: Optional[Callable[[], Any]] = None,
                variation_spec: Optional[Any] = None) -> "StudyPlan":
    """Compile a :class:`StudySpec` into a runnable :class:`StudyPlan`.

    Walks the spec's stages in order, resolves each against the stage
    registry (typed parameter validation with actionable errors) and calls
    its expander to add the stage's tasks and dependency edges to one
    :class:`~repro.engine.pipeline.Pipeline`.  The compiled graph is
    bit-identical to the historical hand-written builders for the canned
    specs -- same task ids, same content-addressed cache specs, same
    per-stage seed derivations from the root seed -- so results (and warm
    cache artifacts) carry over unchanged.

    A spec with a ``[dut]`` table compiles against that device (through a
    :class:`~repro.adc.sar_adc.DutAdcFactory`); ``[[variants]]`` fans the
    stage list out once per variant into one shared pipeline -- per-variant
    stage instances (``<variant>/<stage>``), per-variant task ids and
    per-variant root seeds derived from ``(root seed, variant label)``.

    ``adc_factory``/``variation_spec`` stay Python-level arguments (they
    are code, not data); a non-importable factory disables caching exactly
    like in the legacy builders.  An explicit ``adc_factory`` is rejected
    alongside a declared ``[dut]``/``[[variants]]`` section -- the factory
    is bound to one device and would silently shadow the spec's.
    """
    from ..defects.sampling import variant_seed
    from ..dut import DutSpec

    spec = spec.validated()
    base_dut = DutSpec.from_jsonable(spec.dut)
    if adc_factory is not None and (spec.dut or spec.variants):
        raise EngineError(
            f"study {spec.name!r} declares a [dut]/[[variants]] section; "
            f"drop the explicit adc_factory argument (the factory is "
            f"derived from the spec)")

    if not spec.variants:
        build = StudyBuild(spec, adc_factory, variation_spec,
                           dut_spec=base_dut)
        _expand_stages(build, spec)
        return build.plan()

    pipeline = Pipeline(spec.name)
    parent = StudyPlan(
        spec=spec, pipeline=pipeline, k=5.0, n_monte_carlo=0,
        stop_on_detection=True, invariance_names=[], blocks=[],
        block_plans={}, block_universes={}, block_task_ids={},
        calibration_task_ids=[], dut_fingerprint=base_dut.fingerprint())
    for variant in spec.variants:
        build = StudyBuild(
            spec, None, variation_spec,
            dut_spec=base_dut.merged(variant.dut), variant=variant.name,
            pipeline=pipeline, seed=variant_seed(spec.seed, variant.name))
        _expand_stages(build, spec)
        parent.variants[variant.name] = build.plan()
    return parent


def _expand_stages(build: StudyBuild, spec: StudySpec) -> None:
    """Expand every stage of ``spec`` into ``build``'s pipeline (labels
    prefixed by the build's variant, if any)."""
    for entry in spec.stages:
        definition = stage_definition(entry.stage)
        label = build.task_prefix + entry.label
        if entry.stage in build.expanded:
            raise EngineError(
                f"study {spec.name!r} declares the {entry.stage!r} stage "
                f"twice; multiple instances of one stage kind are not "
                f"supported yet")
        params = definition.resolve_params(
            spec.params, entry.params,
            f"study {spec.name!r}, stage {label!r}")
        definition.expand(build, label, params)
        build.expanded[entry.stage] = label


# ======================================================================= run

@dataclass
class StudyOutcome:
    """Everything produced by one study run, with named-stage accessors.

    One class for every study shape (it replaces the per-study Outcome
    dataclasses): fields not produced by the study's stages stay at their
    empty defaults, e.g. ``yield_points`` is ``[]`` for a plain
    calibrate -> campaign study.
    """

    spec: StudySpec
    #: Per-stage statuses and raw results of the underlying engine run.
    pipeline: PipelineResult
    #: The single report spanning every stage.
    report: CampaignReport
    #: One :class:`~repro.core.WindowCalibration` per windows reduction
    #: that completed -- keyed by block for per-block windows, by the
    #: windows task id for a global reduction.
    calibrations: Dict[str, Any] = field(default_factory=dict)
    #: One :class:`~repro.defects.simulator.CampaignResult` per fully
    #: completed block, in sweep order; blocks with failed or skipped tasks
    #: are absent (inspect :attr:`pipeline` for their status).
    results: Dict[str, Any] = field(default_factory=dict)
    #: One JSON-ready per-block reduction per completed block-summary task.
    summaries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: One :class:`~repro.analysis.YieldLossPoint` per requested ``k``, in
    #: ``k_values`` order; points whose task failed/skipped are absent.
    yield_points: List[Any] = field(default_factory=list)
    #: The :class:`~repro.analysis.EscapeAnalysisResult`, or None when the
    #: study has no escape stage (or its task failed).
    escapes: Optional[Any] = None
    #: The variant label this outcome belongs to (None outside variant
    #: studies) and the DUT fingerprint it ran against.
    variant: Optional[str] = None
    dut_fingerprint: str = ""
    #: Per-variant outcomes of a multi-variant study, in declaration order;
    #: empty for single-DUT studies (whose results live on the fields
    #: above).
    variants: Dict[str, "StudyOutcome"] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.pipeline.ok

    @property
    def calibration(self) -> Optional[Any]:
        """The study's window calibration (the global reduction, or the
        first block's for per-block studies); None when it failed."""
        return next(iter(self.calibrations.values()), None)

    def stage_results(self, stage: str) -> Dict[str, Any]:
        """Raw results of one named stage's completed tasks."""
        return self.pipeline.stage_results(stage)

    def stage_statuses(self, stage: str) -> Dict[str, str]:
        """Terminal status of every task of one named stage."""
        return self.pipeline.stage_statuses(stage)


@dataclass
class StudyPlan:
    """A compiled (not yet run) study graph plus assembly metadata.

    Produced by :func:`build_study`.  One class serves every study shape
    (it replaces the per-study Plan dataclasses); fields describing stages
    a study does not declare stay empty.
    """

    spec: StudySpec
    pipeline: Pipeline
    k: float
    n_monte_carlo: int
    stop_on_detection: bool
    invariance_names: List[str]
    blocks: List[str]
    block_plans: Dict[str, Any]
    block_universes: Dict[str, Any]
    block_task_ids: Dict[str, List[str]]
    calibration_task_ids: List[str]
    calibrate_stage: Optional[str] = None
    windows_stage: Optional[str] = None
    per_block: bool = False
    windows_task_id: Optional[str] = None
    windows_task_ids: Dict[str, str] = field(default_factory=dict)
    campaign_stage: Optional[str] = None
    summary_stage: Optional[str] = None
    summary_task_ids: Dict[str, str] = field(default_factory=dict)
    yield_stage: Optional[str] = None
    yield_task_ids: List[str] = field(default_factory=list)
    k_values: List[float] = field(default_factory=list)
    escape_stage: Optional[str] = None
    escape_task_id: Optional[str] = None
    #: Key of the per-process campaign built by the campaign stage workers;
    #: used to release the parent-process instance after the run.
    worker_token: str = ""
    #: The variant label this plan's stages belong to (None outside
    #: variant studies) and the DUT fingerprint they compile against.
    variant: Optional[str] = None
    dut_fingerprint: str = ""
    #: Per-variant sub-plans of a multi-variant study, in declaration
    #: order, all sharing :attr:`pipeline`; empty for single-DUT studies.
    variants: Dict[str, "StudyPlan"] = field(default_factory=dict)

    @property
    def base(self) -> "StudyPlan":
        """Self; kept for compatibility with the historical
        ``YieldLossStudyPlan.base`` layering."""
        return self

    def run(self, backend: Optional[ExecutionBackend] = None,
            cache: Optional[ResultCache] = None,
            progress: Optional[ProgressCallback] = None,
            on_failure: str = "raise",
            telemetry: Optional[TelemetryBus] = None,
            cancel: Optional[Callable[[], bool]] = None) -> StudyOutcome:
        """Execute the graph through one engine run and assemble the
        :class:`StudyOutcome` from the named stages' results (per-variant
        outcomes land in :attr:`StudyOutcome.variants`).

        ``cancel`` is the engine's cooperative-stop probe; when it fires,
        the outcome assembles whatever completed and
        ``outcome.pipeline.run.cancelled`` is True."""
        from ..defects.simulator import _WORKER_STATE

        try:
            result = self.pipeline.run(backend=backend, cache=cache,
                                       progress=progress,
                                       on_failure=on_failure,
                                       telemetry=telemetry,
                                       cancel=cancel)
        finally:
            # Serial runs build the campaign in this process; drop it so
            # the ADC/hierarchy/injector do not outlive the run (mirrors
            # DefectCampaign.run's own cleanup).  A variant study holds one
            # campaign per variant.
            tokens = [self.worker_token] + [plan.worker_token
                                            for plan in self.variants.values()]
            for token in tokens:
                if token:
                    _WORKER_STATE.pop(token, None)

        outcome = self._assemble(result)
        for label, plan in self.variants.items():
            outcome.variants[label] = plan._assemble(result)
        return outcome

    def _assemble(self, result: PipelineResult) -> StudyOutcome:
        """Collect this plan's named-stage results out of one (possibly
        shared) pipeline run."""
        from ..core.calibration import calibration_from_windows
        from ..defects.simulator import CampaignResult, _flatten_records

        outcome = StudyOutcome(spec=self.spec, pipeline=result,
                               report=result.report,
                               variant=self.variant,
                               dut_fingerprint=self.dut_fingerprint)

        if self.windows_stage is not None:
            windows_results = result.stage_results(self.windows_stage)
            if self.per_block:
                outcome.calibrations = {
                    block: calibration_from_windows(
                        windows_results[tid], self.invariance_names)
                    for block, tid in self.windows_task_ids.items()
                    if tid in windows_results}
            elif self.windows_task_id in windows_results:
                outcome.calibrations = {
                    self.windows_task_id: calibration_from_windows(
                        windows_results[self.windows_task_id],
                        self.invariance_names)}

        if self.campaign_stage is not None:
            records = result.stage_results(self.campaign_stage)
            for block in self.blocks:
                task_ids = self.block_task_ids[block]
                if not all(tid in records for tid in task_ids):
                    continue
                outcome.results[block] = CampaignResult(
                    records=_flatten_records(
                        [records[tid] for tid in task_ids]),
                    universe=self.block_universes[block],
                    plan=self.block_plans[block],
                    stop_on_detection=self.stop_on_detection,
                    engine_report=result.report)

        if self.summary_stage is not None:
            summary_results = result.stage_results(self.summary_stage)
            outcome.summaries = {
                block: summary_results[tid]
                for block, tid in self.summary_task_ids.items()
                if tid in summary_results}

        if self.yield_stage is not None:
            yield_results = result.stage_results(self.yield_stage)
            outcome.yield_points = [yield_results[tid]
                                    for tid in self.yield_task_ids
                                    if tid in yield_results]

        if self.escape_stage is not None:
            outcome.escapes = result.stage_results(
                self.escape_stage).get(self.escape_task_id)
        return outcome


def run_study(spec: StudySpec,
              backend: Optional[ExecutionBackend] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[ProgressCallback] = None,
              on_failure: str = "raise",
              telemetry: Optional[TelemetryBus] = None,
              adc_factory: Optional[Callable[[], Any]] = None,
              variation_spec: Optional[Any] = None,
              cancel: Optional[Callable[[], bool]] = None) -> StudyOutcome:
    """Compile and run a study spec: :func:`build_study` +
    :meth:`StudyPlan.run`.  ``backend``/``cache`` follow the usual engine
    conventions (serial and uncached by default)."""
    plan = build_study(spec, adc_factory=adc_factory,
                       variation_spec=variation_spec)
    return plan.run(backend=backend, cache=cache, progress=progress,
                    on_failure=on_failure, telemetry=telemetry,
                    cancel=cancel)


# ============================================================ canned studies
#
# The paper's three workflows as StudySpec constants.  Parameters are the
# registry defaults (== the legacy builder defaults); the legacy builders
# and CLI subcommands compile these with per-call overrides.

CALIBRATE_THEN_CAMPAIGN = StudySpec(
    name="calibrate-then-campaign",
    stages=(
        StageSpec(stage="calibrate"),
        StageSpec(stage="windows", after=("calibrate",)),
        StageSpec(stage="campaign", after=("windows",)),
    )).validated()

BLOCK_STUDY = StudySpec(
    name="block-study",
    stages=(
        StageSpec(stage="calibrate"),
        StageSpec(stage="windows", after=("calibrate",),
                  params={"per_block": True}),
        StageSpec(stage="campaign", after=("windows",)),
        StageSpec(stage="block-summary", name="summary",
                  after=("windows", "campaign")),
    )).validated()

YIELD_LOSS_STUDY = StudySpec(
    name="yield-loss-study",
    stages=(
        StageSpec(stage="calibrate"),
        StageSpec(stage="windows", after=("calibrate",)),
        StageSpec(stage="campaign", after=("windows",)),
        StageSpec(stage="yield", after=("calibrate",)),
        StageSpec(stage="escape", after=("campaign",)),
    )).validated()

#: The canned studies by name (also accepted by ``repro-campaign run``).
CANNED_STUDIES: Dict[str, StudySpec] = {
    spec.name: spec
    for spec in (CALIBRATE_THEN_CAMPAIGN, BLOCK_STUDY, YIELD_LOSS_STUDY)}
