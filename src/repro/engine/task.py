"""Task abstraction of the campaign-execution engine.

A :class:`Task` describes one independent unit of work of a campaign -- one
defect injection + SymBIST run, one Monte Carlo sample, one ``(k, yield)``
point -- without saying anything about *how* it is executed.  The work itself
is performed by a *worker* callable (see :mod:`repro.engine.executor`) applied
to the task; keeping the two separate is what lets the same campaign run
serially, across a process pool, or straight out of the result cache.

A :class:`TaskGraph` is an ordered collection of independent tasks.  All
current workloads are embarrassingly parallel, so the graph carries no edges;
it exists to give campaigns a stable task order (the order that defines
deterministic per-task seeding and result assembly) and fast id lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

from ..circuit.errors import EngineError


@dataclass(frozen=True)
class Task:
    """One independent unit of campaign work.

    Attributes
    ----------
    task_id:
        Unique, stable identifier within one campaign (used in progress
        reporting, error messages and cache records).
    payload:
        The worker's input (a defect, a sample index, a ``k`` value, ...).
        Must be picklable when the task is executed by a process-pool backend.
    spec:
        Optional JSON-serialisable description of *what the task computes*.
        When present (and a cache is configured) it becomes part of the
        content-addressed cache key, so any change to the spec invalidates
        cached results.  Tasks without a spec are never cached.
    seed:
        Optional explicit seed material (an ``int`` or
        ``np.random.SeedSequence``) for the task's random generator.  When
        omitted the engine derives one child ``SeedSequence`` per task from
        the campaign root seed, so results are independent of worker count
        and completion order.
    deterministic:
        True when the worker ignores its random generator (e.g. defect
        simulation).  Deterministic tasks exclude the seed material from
        their cache key, so cached results survive task reordering.
    group:
        Optional label used to aggregate timings in reports (e.g. the block
        path of a defect).
    """

    task_id: str
    payload: Any = None
    spec: Optional[Mapping[str, Any]] = None
    seed: Optional[Any] = None
    deterministic: bool = False
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise EngineError("a task needs a non-empty task_id")


class TaskGraph:
    """Ordered collection of independent tasks with unique ids."""

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: List[Task] = []
        self._by_id: Dict[str, int] = {}
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> None:
        if task.task_id in self._by_id:
            raise EngineError(
                f"duplicate task id {task.task_id!r} in the task graph")
        self._by_id[task.task_id] = len(self._tasks)
        self._tasks.append(task)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def index_of(self, task_id: str) -> int:
        try:
            return self._by_id[task_id]
        except KeyError as exc:
            raise EngineError(
                f"task {task_id!r} is not in the graph") from exc

    def get(self, task_id: str) -> Task:
        return self._tasks[self.index_of(task_id)]

    def ids(self) -> List[str]:
        return [t.task_id for t in self._tasks]

    def groups(self) -> List[str]:
        """Group labels present in the graph, in first-appearance order."""
        seen: Dict[str, None] = {}
        for task in self._tasks:
            if task.group is not None:
                seen.setdefault(task.group, None)
        return list(seen.keys())
