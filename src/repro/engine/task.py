"""Task abstraction of the campaign-execution engine.

A :class:`Task` describes one unit of work of a campaign -- one defect
injection + SymBIST run, one Monte Carlo sample, one ``(k, yield)`` point,
one reduction over other tasks' results -- without saying anything about
*how* it is executed.  The work itself is performed by a *worker* callable
(see :mod:`repro.engine.executor`) applied to the task; keeping the two
separate is what lets the same campaign run serially, across a process pool,
or straight out of the result cache.

A :class:`TaskGraph` is an ordered collection of tasks with optional
*dependency edges*: a task may declare, via :attr:`Task.depends_on`, that it
consumes the results of earlier tasks.  Because every dependency must already
be in the graph when a task is added, insertion order is always a valid
topological order and the graph is a DAG *by construction* -- no cycle
detection pass is needed.  Graphs without edges behave exactly as before:
an ordered bag of independent tasks (the order defines deterministic
per-task seeding and result assembly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from ..circuit.errors import EngineError


@dataclass(frozen=True)
class Task:
    """One unit of campaign work.

    Attributes
    ----------
    task_id:
        Unique, stable identifier within one campaign (used in progress
        reporting, error messages and cache records).
    payload:
        The worker's input (a defect, a sample index, a ``k`` value, ...).
        Must be picklable when the task is executed by a process-pool backend.
    spec:
        Optional JSON-serialisable description of *what the task computes*.
        When present (and a cache is configured) it becomes part of the
        content-addressed cache key, so any change to the spec invalidates
        cached results.  Tasks without a spec are never cached.  For a
        dependent task the spec must describe the parents' work too (e.g. by
        embedding the parent spec), since the result depends on it.
    seed:
        Optional explicit seed material (an ``int`` or
        ``np.random.SeedSequence``) for the task's random generator.  When
        omitted the engine derives one child ``SeedSequence`` per task from
        the campaign root seed, so results are independent of worker count
        and completion order.
    deterministic:
        True when the worker ignores its random generator (e.g. defect
        simulation).  Deterministic tasks exclude the seed material from
        their cache key, so cached results survive task reordering.
    group:
        Optional label used to aggregate timings in reports (e.g. the block
        path of a defect, or a pipeline stage name).
    depends_on:
        Ids of the tasks whose results this task consumes.  The engine only
        dispatches the task once every parent has completed, and hands the
        parents' results to the worker as its ``inputs`` mapping (see
        :meth:`repro.engine.CampaignEngine.run`).  Order is preserved, so
        reduction workers can pool parent results deterministically.
    weight:
        Number of logical work items this task evaluates (e.g. the member
        count of a batched defect task).  Reports and telemetry count tasks
        for throughput but sum weights for per-item totals
        (:attr:`~repro.engine.executor.CampaignReport.stage_items`).
    """

    task_id: str
    payload: Any = None
    spec: Optional[Mapping[str, Any]] = None
    seed: Optional[Any] = None
    deterministic: bool = False
    group: Optional[str] = None
    depends_on: Tuple[str, ...] = ()
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.task_id:
            raise EngineError("a task needs a non-empty task_id")
        if self.weight < 1:
            raise EngineError(
                f"task {self.task_id!r} needs a positive weight, "
                f"got {self.weight}")
        deps = tuple(self.depends_on)
        object.__setattr__(self, "depends_on", deps)
        if self.task_id in deps:
            raise EngineError(
                f"task {self.task_id!r} cannot depend on itself")
        if len(set(deps)) != len(deps):
            raise EngineError(
                f"task {self.task_id!r} lists a duplicate dependency")


class TaskGraph:
    """Ordered collection of tasks with unique ids and dependency edges.

    Every task's dependencies must already be in the graph when the task is
    added (parents before children).  This makes insertion order a
    topological order and rules out cycles structurally, so
    :meth:`topological_order` is free and schedulers can walk the graph
    without a separate validation pass.
    """

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: List[Task] = []
        self._by_id: Dict[str, int] = {}
        self._dependents: Dict[str, List[str]] = {}
        self._n_edges = 0
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> None:
        """Add one task; its :attr:`~Task.depends_on` must already exist."""
        if task.task_id in self._by_id:
            raise EngineError(
                f"duplicate task id {task.task_id!r} in the task graph")
        for dep in task.depends_on:
            if dep not in self._by_id:
                raise EngineError(
                    f"task {task.task_id!r} depends on unknown task {dep!r}; "
                    f"add parents before their children")
        self._by_id[task.task_id] = len(self._tasks)
        self._tasks.append(task)
        for dep in task.depends_on:
            self._dependents.setdefault(dep, []).append(task.task_id)
        self._n_edges += len(task.depends_on)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def index_of(self, task_id: str) -> int:
        try:
            return self._by_id[task_id]
        except KeyError as exc:
            raise EngineError(
                f"task {task_id!r} is not in the graph") from exc

    def get(self, task_id: str) -> Task:
        return self._tasks[self.index_of(task_id)]

    def ids(self) -> List[str]:
        return [t.task_id for t in self._tasks]

    def groups(self) -> List[str]:
        """Group labels present in the graph, in first-appearance order."""
        seen: Dict[str, None] = {}
        for task in self._tasks:
            if task.group is not None:
                seen.setdefault(task.group, None)
        return list(seen.keys())

    # ------------------------------------------------------------------- edges
    @property
    def has_edges(self) -> bool:
        """True when at least one task declares a dependency."""
        return self._n_edges > 0

    def dependencies(self, task_id: str) -> Tuple[str, ...]:
        """Parent ids of ``task_id`` (declaration order)."""
        return self.get(task_id).depends_on

    def dependents(self, task_id: str) -> List[str]:
        """Ids of the tasks that directly consume ``task_id``'s result."""
        self.index_of(task_id)  # raise for unknown ids
        return list(self._dependents.get(task_id, ()))

    def roots(self) -> List[str]:
        """Ids of the tasks with no dependencies, in insertion order."""
        return [t.task_id for t in self._tasks if not t.depends_on]

    def descendants(self, task_id: str) -> List[str]:
        """Every task reachable from ``task_id`` through dependency edges.

        Returned in insertion (== topological) order; used by the scheduler
        to skip the subtree below a failed task.
        """
        reached = {task_id}
        for task in self._tasks[self.index_of(task_id) + 1:]:
            if any(dep in reached for dep in task.depends_on):
                reached.add(task.task_id)
        reached.discard(task_id)
        return [t.task_id for t in self._tasks if t.task_id in reached]

    def topological_order(self) -> List[str]:
        """Task ids, parents always before children.

        By construction this is simply the insertion order (parents must be
        added first), which is also the order that defines per-task seeding.
        """
        return self.ids()
