"""Engine telemetry: typed events, worker-side spans, pluggable sinks.

:class:`~repro.engine.CampaignEngine` is a black box while it runs unless
something watches it.  This module is that something: the engine emits a
stream of :class:`TelemetryEvent` records through a :class:`TelemetryBus`
(one event per scheduling decision and per task lifecycle transition), and
the bus fans each event out to any number of :class:`TelemetrySink`\\ s --
a crash-safe JSONL trace writer, a Chrome trace-event exporter (loadable in
Perfetto / ``chrome://tracing``), a live terminal progress line and an
in-process metrics registry.

The event stream is *logical*: the same workload produces the same event
multiset (modulo timestamps, ordering and worker pids) whatever backend
runs it, which is what the telemetry equivalence suite pins.  It is also
the wire format a future campaign daemon streams to clients, so the schema
is deliberately flat JSON.

Event schema
------------
Every event carries ``type``, a monotonic timestamp ``t`` (seconds,
``time.monotonic()`` -- comparable across processes of one machine), and
optionally ``task_id``, ``stage``, ``group``, ``worker`` (pid) and a
``data`` mapping:

=================  ==========================================================
``run_started``    ``data``: n_tasks, backend, workers, mode, stages
``task_submitted`` task handed to the backend; ``data.deps`` lists parents
``task_started``   worker began executing (``t`` is the *worker-side* clock)
``task_completed`` ``data``: queue_wait, deserialize, execute, ship,
                   worker_seconds, duration
``cache_hit``      task satisfied from the result cache (``data.deps``)
``task_failed``    worker raised; ``data.error`` has the message
``task_skipped``   never dispatched because an ancestor failed
``stage_completed`` every task of a stage reached a terminal state
``run_finished``   ``data``: counts, wall_time, payload bytes
=================  ==========================================================

Worker-side spans
-----------------
Each executed task ships a :class:`TaskSpan` back with its result (through
all three backends): the worker pid, the monotonic receipt/finish times and
the setup ("deserialize") share.  The parent combines it with its own
submit/receive timestamps into the four per-task phases:

* ``queue_wait`` -- submit-to-worker-pickup latency,
* ``deserialize`` -- worker-side setup before the user worker runs,
* ``execute`` -- the user worker itself,
* ``ship`` -- worker-finish-to-parent-receive latency (result transport).
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import (Any, Dict, IO, List, Mapping, NamedTuple, Optional,
                    Sequence, Tuple)

from ..circuit.errors import EngineError

#: Every event type the bus accepts, in rough lifecycle order.
EVENT_TYPES: Tuple[str, ...] = (
    "run_started", "task_submitted", "task_started", "task_completed",
    "cache_hit", "task_failed", "task_skipped", "stage_completed",
    "run_finished")


class TaskSpan(NamedTuple):
    """Worker-side timing of one executed task, shipped with its result.

    Timestamps are ``time.monotonic()`` seconds; on Linux that clock is
    system-wide, so parent and worker readings are directly comparable.
    """

    #: Pid of the process that executed the task.
    worker: int
    #: Monotonic time the worker picked the task up.
    started_at: float
    #: Monotonic time the worker finished (result ready to ship).
    finished_at: float
    #: Seconds of worker-side setup (rng construction, input unpacking)
    #: before the user worker ran.
    deserialize: float


@dataclass(frozen=True)
class TelemetryEvent:
    """One engine lifecycle event (see the module docstring for the schema)."""

    type: str
    t: float
    task_id: Optional[str] = None
    stage: Optional[str] = None
    group: Optional[str] = None
    worker: Optional[int] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        """Flat JSON form; ``None`` fields are dropped, ``data`` only when
        non-empty."""
        record: Dict[str, Any] = {"type": self.type, "t": self.t}
        for key in ("task_id", "stage", "group", "worker"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        if self.data:
            record["data"] = dict(self.data)
        return record

    @classmethod
    def from_jsonable(cls, record: Mapping[str, Any]) -> "TelemetryEvent":
        return cls(type=record["type"], t=record["t"],
                   task_id=record.get("task_id"), stage=record.get("stage"),
                   group=record.get("group"), worker=record.get("worker"),
                   data=record.get("data", {}))


class TelemetrySink:
    """Receives every event of a run; subclass and override :meth:`handle`."""

    def handle(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called once by the owning bus."""


class TelemetryBus:
    """Fans engine events out to sinks; the engine's ``telemetry`` argument.

    The bus validates event types (the schema is a wire format -- a typo
    must fail loudly, not silently produce an event no consumer knows) and
    stamps ``time.monotonic()`` on events that do not bring their own
    timestamp.  Usable as a context manager; closing the bus closes every
    sink.
    """

    def __init__(self, sinks: Sequence[TelemetrySink] = ()) -> None:
        self.sinks: List[TelemetrySink] = list(sinks)

    def add_sink(self, sink: TelemetrySink) -> TelemetrySink:
        self.sinks.append(sink)
        return sink

    def emit(self, event_type: str, t: Optional[float] = None,
             task_id: Optional[str] = None, stage: Optional[str] = None,
             group: Optional[str] = None, worker: Optional[int] = None,
             **data: Any) -> TelemetryEvent:
        if event_type not in EVENT_TYPES:
            raise EngineError(
                f"unknown telemetry event type {event_type!r}; "
                f"known: {', '.join(EVENT_TYPES)}")
        event = TelemetryEvent(
            type=event_type, t=time.monotonic() if t is None else t,
            task_id=task_id, stage=stage, group=group, worker=worker,
            data=data)
        for sink in self.sinks:
            sink.handle(event)
        return event

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ================================================================ JSONL trace

class JsonlTraceSink(TelemetrySink):
    """Appends one JSON object per event to a trace file.

    The file is opened in append mode and flushed after every line, so a
    crashed or killed run leaves a readable trace with at most one
    truncated trailing line -- which :func:`read_trace` tolerates.
    """

    def __init__(self, path: Any) -> None:
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = open(self.path, "a",
                                               encoding="utf-8")

    def handle(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            raise EngineError(f"trace sink {self.path!r} is closed")
        self._handle.write(json.dumps(event.to_jsonable(), sort_keys=True)
                           + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(path: Any) -> List[TelemetryEvent]:
    """Load a JSONL trace written by :class:`JsonlTraceSink`.

    A truncated *final* line (the signature of a crashed writer) is
    silently dropped; malformed JSON anywhere else raises
    :class:`~repro.circuit.errors.EngineError`, since that means the file
    is not a trace.
    """
    events: List[TelemetryEvent] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
    except OSError as exc:
        raise EngineError(f"cannot read trace {os.fspath(path)!r}: "
                          f"{exc.strerror or exc}") from exc
    while lines and not lines[-1].strip():
        lines.pop()
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
            events.append(TelemetryEvent.from_jsonable(record))
        except (ValueError, KeyError) as exc:
            if number == len(lines):
                break  # truncated trailing line of an interrupted run
            raise EngineError(
                f"{path}: line {number} is not a telemetry event: {exc}") \
                from exc
    return events


def follow_trace(path: Any,
                 stop: Optional[Any] = None,
                 poll_interval: float = 0.1,
                 timeout: Optional[float] = None):
    """Live-tail a JSONL trace: yield events as the writer appends them.

    The streaming counterpart of :func:`read_trace`, and what the campaign
    daemon's ``attach`` verb is built on: a :class:`JsonlTraceSink` flushes
    one complete line per event, so a reader polling the file sees whole
    events (a partial final line is left in the buffer until its newline
    arrives).  The generator ends when

    * a ``run_finished`` event is yielded (the trace's natural terminator),
    * *stop* (any object with a truthy ``is_set()``, e.g. a
      ``threading.Event``) fires -- checked only once the file is fully
      drained, so a stop raised after the writer finished still yields
      every event, or
    * *timeout* seconds pass without the file growing (None = wait
      forever).

    The file may not exist yet when following starts (the run has not
    opened its sink); that counts as "not growing" against *timeout*.
    """
    buffered = b""
    offset = 0
    quiet_since = time.monotonic()
    while True:
        try:
            with open(os.fspath(path), "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            chunk = b""
        if chunk:
            offset += len(chunk)
            buffered += chunk
            quiet_since = time.monotonic()
            while b"\n" in buffered:
                raw, buffered = buffered.split(b"\n", 1)
                line = raw.decode("utf-8")
                if not line.strip():
                    continue
                try:
                    event = TelemetryEvent.from_jsonable(json.loads(line))
                except (ValueError, KeyError) as exc:
                    raise EngineError(
                        f"{path}: not a telemetry event: {line[:200]!r}: "
                        f"{exc}") from exc
                yield event
                if event.type == "run_finished":
                    return
        else:
            if stop is not None and stop.is_set():
                return
            if timeout is not None and \
                    time.monotonic() - quiet_since > timeout:
                return
            time.sleep(poll_interval)


# ====================================================== Chrome trace exporter

def chrome_trace(events: Sequence[TelemetryEvent]) -> Dict[str, Any]:
    """Convert an event stream to the Chrome trace-event JSON format.

    The result loads in Perfetto / ``chrome://tracing``: one named row per
    worker pid carrying an ``X`` (complete) slice per executed task, plus a
    ``scheduler`` row with instant events for cache hits, failures, skips
    and stage boundaries.  Timestamps are microseconds relative to the
    first event of the stream.
    """
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(event.t for event in events)

    def ts(t: float) -> float:
        return round((t - base) * 1e6, 3)

    rows: List[Dict[str, Any]] = []
    workers_seen: List[int] = []
    for event in events:
        worker = event.worker
        if event.type == "task_completed" and worker is not None:
            if worker not in workers_seen:
                workers_seen.append(worker)
            span = event.data.get("worker_seconds", 0.0)
            start = event.t - event.data.get("ship", 0.0) - span
            rows.append({
                "ph": "X", "name": event.task_id or "task",
                "cat": event.stage or event.group or "task",
                "pid": 1, "tid": worker,
                "ts": ts(start), "dur": round(span * 1e6, 3),
                "args": {key: event.data[key]
                         for key in ("queue_wait", "deserialize", "execute",
                                     "ship", "duration")
                         if key in event.data}})
        elif event.type in ("cache_hit", "task_failed", "task_skipped",
                            "run_started", "stage_completed", "run_finished"):
            name = {"cache_hit": f"cache {event.task_id}",
                    "task_failed": f"FAIL {event.task_id}",
                    "task_skipped": f"skip {event.task_id}",
                    "stage_completed": f"stage {event.stage} done",
                    }.get(event.type, event.type)
            rows.append({
                "ph": "i", "s": "t", "name": name,
                "cat": event.type, "pid": 1, "tid": 0,
                "ts": ts(event.t),
                "args": dict(event.data)})
    meta = [{"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "scheduler"}},
            {"ph": "M", "name": "thread_sort_index", "pid": 1, "tid": 0,
             "args": {"sort_index": -1}}]
    for worker in sorted(workers_seen):
        meta.append({"ph": "M", "name": "thread_name", "pid": 1,
                     "tid": worker, "args": {"name": f"worker {worker}"}})
    return {"traceEvents": meta + rows, "displayTimeUnit": "ms"}


class ChromeTraceSink(TelemetrySink):
    """Accumulates events and writes a Chrome trace JSON file on close."""

    def __init__(self, path: Any) -> None:
        self.path = os.fspath(path)
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(self.events), handle)


# ========================================================== terminal progress

class ProgressSink(TelemetrySink):
    """Live single-line progress: per-stage done/total, tasks/s and ETA.

    Rendering is throttled to ``min_interval`` seconds and refreshed in
    place with ``\\r``; terminal events (stage/run boundaries) always
    render.  The output stream is resolved at emit time (default
    ``sys.stderr``) so the sink composes with pytest's capture fixtures.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 min_interval: float = 0.1) -> None:
        self._stream = stream
        self.min_interval = min_interval
        self._last_render = float("-inf")
        self._started: Optional[float] = None
        self._n_tasks = 0
        self._done = 0
        self._executed = 0
        self._stage_totals: Dict[str, int] = {}
        self._stage_done: Dict[str, int] = {}
        self._line_open = False

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def handle(self, event: TelemetryEvent) -> None:
        force = False
        if event.type == "run_started":
            self._started = event.t
            self._n_tasks = event.data.get("n_tasks", 0)
            self._stage_totals = dict(event.data.get("stages", {}))
            self._stage_done = {stage: 0 for stage in self._stage_totals}
            self._done = self._executed = 0
            force = True
        elif event.type in ("task_completed", "cache_hit", "task_failed",
                            "task_skipped"):
            self._done += 1
            if event.type == "task_completed":
                self._executed += 1
            if event.stage is not None:
                self._stage_done[event.stage] = \
                    self._stage_done.get(event.stage, 0) + 1
        elif event.type in ("stage_completed", "run_finished"):
            force = True
        if not force and event.t - self._last_render < self.min_interval:
            return
        self._last_render = event.t
        elapsed = max(event.t - self._started, 1e-9) \
            if self._started is not None else None
        line = self.render(self._done, self._n_tasks, self._executed,
                           elapsed, self._stage_done, self._stage_totals)
        self.stream.write("\r" + line)
        self._line_open = True
        if event.type == "run_finished":
            self.stream.write("\n")
            self._line_open = False
        self.stream.flush()

    @staticmethod
    def render(done: int, total: int, executed: int,
               elapsed: Optional[float],
               stage_done: Mapping[str, int],
               stage_totals: Mapping[str, int]) -> str:
        """The progress line for a given counter state (pure; tested).

        ``tasks/s`` is the *executed* throughput (cache hits are lookups,
        not work, matching ``CampaignReport.tasks_per_second``).  The ETA is
        based on the *overall* completion rate: ``remaining`` counts every
        unresolved task, including ones that will resolve as cache hits, so
        scaling it by the executed-only rate would wildly inflate warm-cache
        ETAs (and a fully-warm run would show none at all).
        """
        parts = [f"{done}/{total} tasks"]
        for stage, stage_total in stage_totals.items():
            parts.append(f"{stage} {stage_done.get(stage, 0)}/{stage_total}")
        if elapsed is not None:
            parts.append(f"{executed / elapsed:.1f} tasks/s")
            completion_rate = done / elapsed
            remaining = total - done
            if 0 < remaining and completion_rate > 0:
                parts.append(f"ETA {remaining / completion_rate:.0f}s")
        return "  ".join(parts)

    def close(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self._line_open = False
            self.stream.flush()


# ============================================================ metrics registry

@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (may go up and down)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Streaming summary (count/sum/min/max) of an observed distribution."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


def _metric_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    body = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{body}}}"


class MetricsRegistry:
    """Named counters/gauges/histograms with optional labels.

    ``registry.counter("tasks_executed", stage="campaign").inc()`` -- the
    metric instance is created on first use and shared afterwards.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.counters.setdefault(_metric_key(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.gauges.setdefault(_metric_key(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.histograms.setdefault(_metric_key(name, labels),
                                          Histogram())

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data snapshot (JSON-serialisable)."""
        return {
            "counters": {key: counter.value
                         for key, counter in self.counters.items()},
            "gauges": {key: gauge.value
                       for key, gauge in self.gauges.items()},
            "histograms": {key: histogram.summary()
                           for key, histogram in self.histograms.items()}}


class MetricsSink(TelemetrySink):
    """Folds the event stream into a :class:`MetricsRegistry`.

    Maintained metrics: ``engine_queue_depth`` (submitted minus completed,
    live), ``tasks_executed``/``cache_hits``/``tasks_failed``/
    ``tasks_skipped`` counters (per stage when tagged),
    ``task_<phase>_seconds`` histograms for the four span phases,
    ``worker_busy_seconds``/``worker_utilization`` per worker, per-stage
    ``stage_cache_hit_rate`` and the run's payload byte gauges (folding
    :class:`~repro.engine.backends.PayloadReport` in).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._busy: Dict[int, float] = {}
        self._started: Optional[float] = None

    def handle(self, event: TelemetryEvent) -> None:
        registry = self.registry
        stage_labels = {"stage": event.stage} if event.stage else {}
        if event.type == "run_started":
            self._started = event.t
        elif event.type == "task_submitted":
            registry.gauge("engine_queue_depth").inc()
        elif event.type == "task_completed":
            registry.gauge("engine_queue_depth").dec()
            registry.counter("tasks_executed", **stage_labels).inc()
            for phase in ("queue_wait", "deserialize", "execute", "ship"):
                if phase in event.data:
                    registry.histogram(f"task_{phase}_seconds",
                                       **stage_labels) \
                        .observe(event.data[phase])
            if event.worker is not None:
                self._busy[event.worker] = \
                    self._busy.get(event.worker, 0.0) \
                    + event.data.get("worker_seconds",
                                     event.data.get("duration", 0.0))
        elif event.type == "cache_hit":
            registry.counter("cache_hits", **stage_labels).inc()
        elif event.type == "task_failed":
            registry.gauge("engine_queue_depth").dec()
            registry.counter("tasks_failed", **stage_labels).inc()
        elif event.type == "task_skipped":
            registry.counter("tasks_skipped", **stage_labels).inc()
        elif event.type == "stage_completed":
            executed = event.data.get("executed", 0)
            cached = event.data.get("cached", 0)
            resolved = executed + cached
            registry.gauge("stage_cache_hit_rate", stage=event.stage) \
                .set(cached / resolved if resolved else 0.0)
        elif event.type == "run_finished":
            wall = event.data.get("wall_time")
            if wall is None and self._started is not None:
                wall = event.t - self._started
            for worker, busy in self._busy.items():
                registry.gauge("worker_busy_seconds", worker=worker).set(busy)
                if wall:
                    registry.gauge("worker_utilization", worker=worker) \
                        .set(busy / wall)
            for key in ("task_bytes", "context_bytes"):
                if event.data.get(key) is not None:
                    registry.gauge(f"payload_{key}").set(event.data[key])
            if wall is not None:
                registry.gauge("run_wall_seconds").set(wall)
