"""Post-hoc analysis of saved telemetry traces (``repro-campaign trace``).

Given the JSONL event stream of one engine run (written by
:class:`~repro.engine.telemetry.JsonlTraceSink`), :func:`summarize_trace`
reconstructs where the wall time went:

* the **critical path** through the dependency graph -- the chain of tasks
  whose worker-side durations bound the best possible wall time at any
  worker count (edges come from the ``deps`` recorded on
  ``task_submitted``/``cache_hit`` events; cache hits are zero-cost nodes);
* **per-stage** tables: executed/cached/failed/skipped counts, summed
  execution time and mean queue wait;
* **per-worker** utilization: busy seconds over the run wall time, per pid;
* the **queue-wait breakdown**: how the per-task time divides into queue
  wait, worker-side setup (deserialize), execution and result shipping.

Everything operates on plain :class:`~repro.engine.telemetry.TelemetryEvent`
lists, so the same analysis runs on a live in-memory stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.errors import EngineError
from .telemetry import TelemetryEvent

#: The four per-task phases of the span breakdown, in pipeline order.
PHASES: Tuple[str, ...] = ("queue_wait", "deserialize", "execute", "ship")


@dataclass
class StageRow:
    """Per-stage aggregate of one trace."""

    stage: str
    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    skipped: int = 0
    execute_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    #: Completed work items (sum of the ``items`` payload of executed and
    #: cached tasks; an event without ``items`` counts as one item).  Differs
    #: from ``executed + cached`` only for batched stages.
    items: int = 0

    @property
    def mean_queue_wait(self) -> float:
        return self.queue_wait_seconds / self.executed if self.executed \
            else 0.0


@dataclass
class WorkerRow:
    """Per-worker aggregate of one trace."""

    worker: int
    tasks: int = 0
    busy_seconds: float = 0.0

    def utilization(self, wall_time: float) -> float:
        return self.busy_seconds / wall_time if wall_time > 0 else 0.0


@dataclass
class TraceSummary:
    """Everything :func:`summarize_trace` derives from one event stream."""

    backend: Optional[str] = None
    workers: Optional[int] = None
    mode: Optional[str] = None
    n_tasks: int = 0
    n_executed: int = 0
    n_cache_hits: int = 0
    n_failed: int = 0
    n_skipped: int = 0
    #: Completed work items (executed + cached).  Batched tasks carry an
    #: ``items`` payload equal to their member count; everything else counts
    #: as one item, so an unbatched trace has
    #: ``n_items == n_executed + n_cache_hits``.
    n_items: int = 0
    wall_time: float = 0.0
    #: Sum over the executed tasks of each span phase.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    stages: List[StageRow] = field(default_factory=list)
    worker_rows: List[WorkerRow] = field(default_factory=list)
    #: Task ids along the longest dependency chain, root first, and the
    #: summed worker-side duration of that chain.
    critical_path: List[str] = field(default_factory=list)
    critical_path_seconds: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        """The report-reconciling counters (see ``CampaignReport``)."""
        return {"n_tasks": self.n_tasks, "n_executed": self.n_executed,
                "n_cache_hits": self.n_cache_hits, "n_failed": self.n_failed,
                "n_skipped": self.n_skipped}


def summarize_trace(events: Sequence[TelemetryEvent]) -> TraceSummary:
    """Fold one run's event stream into a :class:`TraceSummary`."""
    if not events:
        raise EngineError("trace is empty: no telemetry events to summarize")
    summary = TraceSummary()
    stages: Dict[str, StageRow] = {}
    workers: Dict[int, WorkerRow] = {}
    deps: Dict[str, List[str]] = {}
    durations: Dict[str, float] = {}
    order: List[str] = []
    phase_seconds = {phase: 0.0 for phase in PHASES}
    last_t = first_t = events[0].t
    saw_run_finished = False

    def stage_row(event: TelemetryEvent) -> Optional[StageRow]:
        if event.stage is None:
            return None
        return stages.setdefault(event.stage, StageRow(stage=event.stage))

    for event in events:
        last_t = max(last_t, event.t)
        if event.type == "run_started":
            summary.backend = event.data.get("backend")
            summary.workers = event.data.get("workers")
            summary.mode = event.data.get("mode")
            summary.n_tasks = event.data.get("n_tasks", 0)
            first_t = min(first_t, event.t)
            for stage, total in event.data.get("stages", {}).items():
                stages.setdefault(stage, StageRow(stage=stage)).total = total
        elif event.type in ("task_submitted", "cache_hit"):
            if event.task_id is not None:
                deps[event.task_id] = list(event.data.get("deps", []))
                if event.task_id not in durations:
                    order.append(event.task_id)
                durations.setdefault(event.task_id, 0.0)
            if event.type == "cache_hit":
                summary.n_cache_hits += 1
                summary.n_items += event.data.get("items", 1)
                row = stage_row(event)
                if row is not None:
                    row.cached += 1
                    row.items += event.data.get("items", 1)
        elif event.type == "task_completed":
            summary.n_executed += 1
            summary.n_items += event.data.get("items", 1)
            for phase in PHASES:
                phase_seconds[phase] += event.data.get(phase, 0.0)
            if event.task_id is not None:
                durations[event.task_id] = event.data.get(
                    "worker_seconds", event.data.get("duration", 0.0))
            row = stage_row(event)
            if row is not None:
                row.executed += 1
                row.items += event.data.get("items", 1)
                row.execute_seconds += event.data.get("execute", 0.0)
                row.queue_wait_seconds += event.data.get("queue_wait", 0.0)
            if event.worker is not None:
                worker = workers.setdefault(event.worker,
                                            WorkerRow(worker=event.worker))
                worker.tasks += 1
                worker.busy_seconds += event.data.get(
                    "worker_seconds", event.data.get("duration", 0.0))
        elif event.type == "task_failed":
            summary.n_failed += 1
            row = stage_row(event)
            if row is not None:
                row.failed += 1
        elif event.type == "task_skipped":
            summary.n_skipped += 1
            row = stage_row(event)
            if row is not None:
                row.skipped += 1
        elif event.type == "run_finished":
            summary.wall_time = event.data.get("wall_time",
                                               event.t - first_t)
            saw_run_finished = True
            for key in ("n_tasks", "n_executed", "n_cache_hits", "n_failed",
                        "n_skipped"):
                if key in event.data:
                    setattr(summary, key, event.data[key])
    if not saw_run_finished:
        # Interrupted run: no run_finished was written, so fall back to the
        # event-stream extent.  An explicit flag, not a falsy check -- a
        # recorded wall_time of 0.0 (sub-resolution fully-cached run) is a
        # legitimate value and must survive.
        summary.wall_time = last_t - first_t

    summary.phase_seconds = phase_seconds
    for row in stages.values():
        if not row.total:
            row.total = row.executed + row.cached + row.failed + row.skipped
    summary.stages = list(stages.values())
    summary.worker_rows = sorted(workers.values(),
                                 key=lambda row: row.worker)
    summary.critical_path, summary.critical_path_seconds = \
        _critical_path(order, deps, durations)
    return summary


def _critical_path(order: Sequence[str], deps: Mapping[str, Sequence[str]],
                   durations: Mapping[str, float]
                   ) -> Tuple[List[str], float]:
    """Longest duration-weighted chain through the recorded dependencies.

    ``order`` is scheduling order, which the engine guarantees is
    topologically consistent (a task is only submitted -- or cache-resolved
    -- after all its parents), so one forward pass suffices.  Tasks whose
    parents never appear in the trace (e.g. the trace of a partially
    failed run) treat the missing parent as a zero-length chain.
    """
    best: Dict[str, float] = {}
    prev: Dict[str, Optional[str]] = {}
    for task_id in order:
        parent_best, parent = 0.0, None
        for dep in deps.get(task_id, []):
            if dep in best and best[dep] > parent_best:
                parent_best, parent = best[dep], dep
        best[task_id] = parent_best + durations.get(task_id, 0.0)
        prev[task_id] = parent
    if not best:
        return [], 0.0
    tail = max(best, key=lambda task_id: best[task_id])
    path: List[str] = []
    cursor: Optional[str] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = prev[cursor]
    path.reverse()
    return path, best[tail]


# ================================================================ formatting

def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(value) for value in row] for row in rows]
    widths = [max(len(header), *(len(row[i]) for row in cells))
              if cells else len(header)
              for i, header in enumerate(headers)]
    lines = ["  ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers)),
             "  ".join("-" * width for width in widths)]
    lines.extend("  ".join(row[i].ljust(widths[i])
                           for i in range(len(headers)))
                 for row in cells)
    return "\n".join(lines)


def format_summary(summary: TraceSummary) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [
        f"run: {summary.n_tasks} tasks via {summary.backend or '?'} "
        f"({summary.workers or '?'} workers, {summary.mode or '?'} mode), "
        f"{summary.wall_time:.2f}s wall",
        f"counts: {summary.n_executed} executed, "
        f"{summary.n_cache_hits} cached, {summary.n_failed} failed, "
        f"{summary.n_skipped} skipped",
    ]
    if summary.n_items != summary.n_executed + summary.n_cache_hits:
        lines[-1] += f" [{summary.n_items} items]"
    total_phases = sum(summary.phase_seconds.values())
    if summary.n_executed:
        breakdown = ", ".join(
            f"{phase} {summary.phase_seconds.get(phase, 0.0):.3f}s"
            f" ({100.0 * summary.phase_seconds.get(phase, 0.0) / total_phases:.0f}%)"
            if total_phases > 0 else f"{phase} 0.000s"
            for phase in PHASES)
        lines.append(f"task time breakdown: {breakdown}")
    if summary.stages:
        lines.append("")
        lines.append("per-stage:")
        batched = any(row.items != row.executed + row.cached
                      for row in summary.stages)
        headers = ["stage", "total", "executed", "cached", "failed",
                   "skipped", "exec (s)", "mean queue wait (s)"]
        if batched:
            headers.insert(2, "items")
        rows = []
        for row in summary.stages:
            cells = [row.stage, row.total, row.executed, row.cached,
                     row.failed, row.skipped, f"{row.execute_seconds:.3f}",
                     f"{row.mean_queue_wait:.4f}"]
            if batched:
                cells.insert(2, row.items)
            rows.append(cells)
        lines.append(_table(headers, rows))
    if summary.worker_rows:
        lines.append("")
        lines.append("per-worker:")
        lines.append(_table(
            ["worker (pid)", "tasks", "busy (s)", "utilization"],
            [[row.worker, row.tasks, f"{row.busy_seconds:.3f}",
              f"{100.0 * row.utilization(summary.wall_time):.0f}%"]
             for row in summary.worker_rows]))
    if summary.critical_path:
        lines.append("")
        lines.append(
            f"critical path: {len(summary.critical_path)} tasks, "
            f"{summary.critical_path_seconds:.3f}s worker time")
        shown = summary.critical_path
        if len(shown) > 12:
            shown = shown[:6] + ["..."] + shown[-5:]
        lines.append("  " + " -> ".join(shown))
    return "\n".join(lines)
