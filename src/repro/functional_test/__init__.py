"""Functional (specification-based) ADC test baseline.

The paper motivates SymBIST by the cost of functional, conversion-based ADC
testing.  This package implements that baseline: static linearity by ramp
sweep and code-density histogram, dynamic performance by coherent sine
capture, servo-loop transition measurement, and a specification-based
pass/fail wrapper used for the baseline defect-detection experiment.
"""

from .baseline_bist import FunctionalBistBaseline, FunctionalTestOutcome
from .histogram import (HistogramResult, histogram_test, ideal_sine_histogram,
                        sine_samples)
from .ramp import (LinearityResult, TransferCurve, linearity_from_curve,
                   measure_transfer_curve, ramp_linearity_test,
                   reduced_code_linearity_test, transition_levels)
from .servo import (ServoMeasurement, major_transition_codes,
                    measure_transition, servo_linearity_probe)
from .sine_fit import DynamicResult, analyze_sine_capture, sine_fit_test

__all__ = [
    "DynamicResult", "FunctionalBistBaseline", "FunctionalTestOutcome",
    "HistogramResult", "LinearityResult", "ServoMeasurement", "TransferCurve",
    "analyze_sine_capture", "histogram_test", "ideal_sine_histogram",
    "linearity_from_curve", "major_transition_codes", "measure_transfer_curve",
    "measure_transition", "ramp_linearity_test", "reduced_code_linearity_test",
    "servo_linearity_probe",
    "sine_fit_test", "sine_samples", "transition_levels",
]
