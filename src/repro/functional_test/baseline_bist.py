"""Functional-BIST baseline: specification-based defect detection.

The introduction of the paper positions SymBIST against functional ADC BIST:
measuring the converter's performances on chip and failing parts that miss
their specification.  This module provides that baseline so that experiment
E8 can compare the two approaches on the same defect sample:

* detection criterion: the defective converter violates at least one datasheet
  specification (DNL, INL, offset, gain error, missing codes, ENOB);
* test cost: the number of conversions the functional test needs, converted
  to seconds through the 12-cycle conversion time, which is what makes a
  defect-simulation campaign with functional tests orders of magnitude slower
  than with SymBIST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..adc.sar_adc import SarAdc
from ..adc.spec import AdcSpecification, MeasuredPerformance, check_specification
from ..circuit.errors import FunctionalTestError
from ..core.test_time import TestTimeModel
from .ramp import (LinearityResult, ramp_linearity_test,
                   reduced_code_linearity_test)
from .sine_fit import DynamicResult, sine_fit_test


@dataclass
class FunctionalTestOutcome:
    """Result of running the functional test suite on one circuit."""

    linearity: Optional[LinearityResult]
    dynamic: Optional[DynamicResult]
    violations: List[str]
    gross_failure: bool
    conversions_used: int

    @property
    def detected(self) -> bool:
        """A defect is detected when any specification is violated."""
        return self.gross_failure or bool(self.violations)

    @property
    def test_time(self) -> float:
        """Functional test time in seconds at the IP clock rate."""
        return TestTimeModel().functional_test_time(max(self.conversions_used, 1))


@dataclass
class FunctionalBistBaseline:
    """Specification-based functional test of the SAR ADC.

    Parameters
    ----------
    spec:
        Datasheet limits used for the pass/fail decision.
    linearity_span_codes / samples_per_code:
        Window and density of the reduced-code static linearity sweep (the
        full-ramp alternative costs thousands of conversions; reduced-code
        testing is the standard compromise and is what the baseline uses).
    sine_samples:
        Number of conversions in the dynamic (ENOB) capture; set to 0 to skip
        the dynamic test (static-only baseline).
    """

    spec: AdcSpecification = field(default_factory=AdcSpecification)
    linearity_span_codes: int = 64
    samples_per_code: int = 4
    sine_samples: int = 256

    @property
    def ramp_points(self) -> int:
        """Conversions used by the static linearity sweep."""
        return self.linearity_span_codes * self.samples_per_code

    def run(self, adc: SarAdc) -> FunctionalTestOutcome:
        """Run the functional tests and apply the specification check."""
        conversions = 0
        linearity: Optional[LinearityResult] = None
        dynamic: Optional[DynamicResult] = None
        violations: List[str] = []
        gross_failure = False

        try:
            linearity = reduced_code_linearity_test(
                adc, span_codes=self.linearity_span_codes,
                samples_per_code=self.samples_per_code)
            conversions += self.ramp_points
        except FunctionalTestError:
            # Fewer than a handful of codes exercised: grossly defective part.
            gross_failure = True
            conversions += self.ramp_points

        if self.sine_samples:
            try:
                dynamic = sine_fit_test(adc, n_samples=self.sine_samples)
                conversions += self.sine_samples
            except FunctionalTestError:
                gross_failure = True
                conversions += self.sine_samples

        measured = MeasuredPerformance()
        if linearity is not None:
            measured = linearity.as_performance()
        if dynamic is not None:
            measured.enob_bits = dynamic.enob_bits
        if linearity is not None or dynamic is not None:
            violations = check_specification(measured, self.spec)

        return FunctionalTestOutcome(linearity=linearity, dynamic=dynamic,
                                     violations=violations,
                                     gross_failure=gross_failure,
                                     conversions_used=conversions)
