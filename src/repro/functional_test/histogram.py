"""Sinusoidal histogram (code-density) linearity test.

The histogram test is the workhorse of functional ADC BIST (several of the
works cited in the paper's introduction are histogram-based): a full-scale
sine wave is converted many times, the number of hits per output code is
compared against the ideal arcsine code-density, and DNL/INL follow from the
ratio.  It needs thousands of conversions -- which is exactly the paper's
argument for why functional, conversion-based testing is slow compared to the
1.23 us SymBIST run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import FunctionalTestError


@dataclass
class HistogramResult:
    """Code-density test output.

    ``expected_histogram`` holds the ideal (arcsine) hit count of each
    interior code; a code can only be declared *missing* when the stimulus was
    expected to hit it several times, otherwise an empty bin merely reflects
    an under-sampled capture rather than a converter defect.
    """

    histogram: np.ndarray
    expected_histogram: np.ndarray
    dnl_lsb: np.ndarray
    inl_lsb: np.ndarray
    first_code: int
    last_code: int
    n_samples: int

    #: Minimum expected hits for a zero-count bin to count as a missing code.
    MISSING_CODE_MIN_EXPECTED_HITS = 4.0

    @property
    def dnl_max_lsb(self) -> float:
        return float(np.max(np.abs(self.dnl_lsb))) if self.dnl_lsb.size else 0.0

    @property
    def inl_max_lsb(self) -> float:
        return float(np.max(np.abs(self.inl_lsb))) if self.inl_lsb.size else 0.0

    @property
    def missing_codes(self) -> int:
        interior = self.histogram[self.first_code + 1:self.last_code]
        expected = self.expected_histogram
        if expected.size != interior.size:
            return int(np.count_nonzero(interior == 0))
        resolvable = expected >= self.MISSING_CODE_MIN_EXPECTED_HITS
        return int(np.count_nonzero((interior == 0) & resolvable))


def sine_samples(amplitude: float, n_samples: int, n_periods: int = 7,
                 phase: float = 0.1) -> np.ndarray:
    """Coherently-sampled sine stimulus values (differential volts)."""
    if n_samples <= 0:
        raise FunctionalTestError("n_samples must be positive")
    if amplitude <= 0:
        raise FunctionalTestError("amplitude must be positive")
    n = np.arange(n_samples)
    return amplitude * np.sin(2.0 * np.pi * n_periods * n / n_samples + phase)


def ideal_sine_histogram(amplitude: float, offset: float, n_samples: int,
                         code_edges: np.ndarray) -> np.ndarray:
    """Expected hits per code for a sine of given amplitude/offset.

    ``code_edges`` are the ideal input levels of the code transitions; the
    arcsine cumulative distribution of the sine gives the probability mass in
    each bin.
    """
    clipped = np.clip((code_edges - offset) / amplitude, -1.0, 1.0)
    cdf = 0.5 + np.arcsin(clipped) / np.pi
    return n_samples * np.diff(cdf)


def histogram_test(adc: SarAdc, n_samples: int = 4096,
                   amplitude: Optional[float] = None,
                   n_bits: Optional[int] = None) -> HistogramResult:
    """Run the sinusoidal histogram test on the (possibly defective) ADC."""
    if n_bits is None:
        n_bits = adc.dut.resolution_bits
    if n_samples < 256:
        raise FunctionalTestError(
            "the histogram test needs at least 256 samples for meaningful "
            "code-density statistics")
    low, high = adc.ideal_input_range()
    full_amplitude = 0.5 * (high - low)
    amplitude = amplitude if amplitude is not None else 0.98 * full_amplitude
    mid = 0.5 * (high + low)

    stimulus = mid + sine_samples(amplitude, n_samples)
    codes = np.asarray(adc.convert_many(stimulus), dtype=int)
    histogram = np.bincount(codes, minlength=2 ** n_bits).astype(float)

    nonzero = np.nonzero(histogram)[0]
    if nonzero.size < 3:
        raise FunctionalTestError(
            "fewer than 3 codes were exercised; the converter is grossly "
            "defective and the histogram test cannot proceed")
    first_code, last_code = int(nonzero[0]), int(nonzero[-1])

    # Ideal code density over the exercised range (end codes excluded: they
    # absorb the clipped tails of the sine).
    interior = np.arange(first_code + 1, last_code)
    if interior.size == 0:
        raise FunctionalTestError("no interior codes to analyse")
    design_lsb = adc.code_to_input(1) - adc.code_to_input(0)
    edges = np.asarray([adc.code_to_input(int(c)) for c in
                        range(first_code + 1, last_code + 1)]) - mid
    ideal = ideal_sine_histogram(amplitude, 0.0, n_samples, edges)
    measured = histogram[interior]

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(ideal > 0, measured / ideal, 1.0)
    dnl = ratio - 1.0
    inl = np.cumsum(dnl)
    inl -= np.linspace(inl[0], inl[-1], inl.size)  # end-point correction

    return HistogramResult(histogram=histogram, expected_histogram=ideal,
                           dnl_lsb=dnl, inl_lsb=inl,
                           first_code=first_code, last_code=last_code,
                           n_samples=n_samples)
