"""Ramp-based static linearity test (transfer curve, DNL, INL, offset, gain).

This is the classic bench characterisation the functional-BIST literature the
paper cites tries to move on-chip: a slow ramp (here, a dense sweep of DC
levels) is converted, the code transition levels are extracted and the static
metrics are computed from them.  The baseline functional test of experiment
E8 uses these metrics to decide whether a defective converter still meets its
datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..adc.sar_adc import SarAdc
from ..adc.spec import MeasuredPerformance
from ..circuit.errors import FunctionalTestError


@dataclass
class TransferCurve:
    """Measured conversion results over a dense input sweep."""

    inputs: np.ndarray
    codes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.codes):
            raise FunctionalTestError("inputs and codes must align")
        if len(self.inputs) < 4:
            raise FunctionalTestError("a transfer curve needs at least 4 points")

    @property
    def n_points(self) -> int:
        return len(self.inputs)

    def codes_present(self) -> np.ndarray:
        return np.unique(self.codes)


@dataclass
class LinearityResult:
    """Static linearity metrics extracted from a transfer curve."""

    dnl_lsb: np.ndarray
    inl_lsb: np.ndarray
    offset_lsb: float
    gain_error_percent: float
    missing_codes: int
    n_transitions: int

    @property
    def dnl_max_lsb(self) -> float:
        return float(np.max(np.abs(self.dnl_lsb))) if self.dnl_lsb.size else 0.0

    @property
    def inl_max_lsb(self) -> float:
        return float(np.max(np.abs(self.inl_lsb))) if self.inl_lsb.size else 0.0

    def as_performance(self) -> MeasuredPerformance:
        """Convert to the specification-check container."""
        return MeasuredPerformance(dnl_max_lsb=self.dnl_max_lsb,
                                   inl_max_lsb=self.inl_max_lsb,
                                   offset_lsb=self.offset_lsb,
                                   gain_error_percent=self.gain_error_percent,
                                   missing_codes=self.missing_codes)


def measure_transfer_curve(adc: SarAdc, n_points: int = 512,
                           margin: float = 0.02) -> TransferCurve:
    """Convert a dense DC sweep spanning the converter input range."""
    if n_points < 4:
        raise FunctionalTestError("n_points must be at least 4")
    low, high = adc.ideal_input_range()
    span = high - low
    inputs = np.linspace(low + margin * span, high - margin * span, n_points)
    codes = np.asarray(adc.convert_many(inputs), dtype=int)
    return TransferCurve(inputs=inputs, codes=codes)


def transition_levels(curve: TransferCurve) -> Tuple[np.ndarray, np.ndarray]:
    """Extract code transition levels from a (noise-free) transfer curve.

    Returns ``(codes, levels)`` where ``levels[i]`` is the lowest input that
    produced ``codes[i]``.  Non-monotonic transfer curves (possible for
    defective converters) are handled by taking the first occurrence.
    """
    codes = curve.codes
    inputs = curve.inputs
    seen = {}
    for value, code in zip(inputs, codes):
        if int(code) not in seen:
            seen[int(code)] = float(value)
    ordered = sorted(seen.items())
    return (np.asarray([c for c, _ in ordered], dtype=int),
            np.asarray([v for _, v in ordered], dtype=float))


def linearity_from_curve(curve: TransferCurve,
                         n_bits: int = 10,
                         design_lsb: Optional[float] = None,
                         mid_code: Optional[int] = None) -> LinearityResult:
    """DNL / INL / offset / gain error from a measured transfer curve.

    The DNL/INL metrics are computed on the code-width sequence inside the
    exercised code range against the end-point fit (the standard bench
    procedure).  Offset and gain error need the converter's *design* transfer
    function: ``design_lsb`` is the nominal LSB size in volts and ``mid_code``
    the code ideally produced by a zero differential input; when omitted they
    default to the values of the behavioral 10-bit SAR ADC model (VREF/528
    per LSB, mid code 528).
    """
    codes, levels = transition_levels(curve)
    if len(codes) < 3:
        raise FunctionalTestError(
            "the transfer curve exercises fewer than 3 codes; the converter "
            "is grossly defective and linearity is undefined")

    first_code, last_code = int(codes[0]), int(codes[-1])
    exercised = last_code - first_code + 1

    # Ideal LSB from the end-point fit of the measured transition levels.
    ideal_lsb = (levels[-1] - levels[0]) / max(last_code - first_code, 1)
    if ideal_lsb <= 0:
        raise FunctionalTestError("non-increasing transfer curve end points")

    # A code can only be declared missing (and per-code DNL only measured
    # meaningfully) when the input sweep is fine enough to hit every code at
    # least twice; a coarse sweep skips codes because of its own step size.
    fine_sweep = curve.n_points >= 2 * exercised
    missing = exercised - len(codes) if fine_sweep else 0

    # Code widths between consecutive observed transitions.  With a fine
    # sweep, skipped codes show up as DNL = -1 at the skipped location; with
    # a coarse sweep the width is normalised by the number of codes stepped
    # over so the sweep granularity does not masquerade as non-linearity.
    dnl = []
    for i in range(1, len(codes)):
        step_codes = int(codes[i] - codes[i - 1])
        width = (levels[i] - levels[i - 1]) / ideal_lsb
        dnl.append(width / step_codes - 1.0)
        if fine_sweep and step_codes > 1:
            dnl.extend([-1.0] * (step_codes - 1))
    dnl_arr = np.asarray(dnl, dtype=float)

    # INL: deviation of each transition level from the end-point line.
    line = levels[0] + (codes - first_code) * ideal_lsb
    inl_arr = (levels - line) / ideal_lsb

    # Offset and gain error against the *design* transfer function.
    if mid_code is None:
        mid_code = 528  # differential zero maps to code 528 in this IP
    if design_lsb is None or design_lsb <= 0:
        design_lsb = ideal_lsb
    idx_mid = int(np.argmin(np.abs(codes - mid_code)))
    ideal_level_of_code = (int(codes[idx_mid]) - mid_code) * design_lsb
    offset_lsb = (levels[idx_mid] - ideal_level_of_code) / design_lsb
    gain_error = 100.0 * (ideal_lsb - design_lsb) / design_lsb

    return LinearityResult(dnl_lsb=dnl_arr, inl_lsb=inl_arr,
                           offset_lsb=float(offset_lsb),
                           gain_error_percent=float(gain_error),
                           missing_codes=int(missing),
                           n_transitions=len(codes) - 1)


def ramp_linearity_test(adc: SarAdc, n_points: int = 512) -> LinearityResult:
    """Convenience wrapper: measure the curve and extract the metrics."""
    mid = adc.dut.mid_code
    design_lsb = adc.code_to_input(mid + 1) - adc.code_to_input(mid)
    return linearity_from_curve(measure_transfer_curve(adc, n_points),
                                n_bits=adc.dut.resolution_bits,
                                design_lsb=design_lsb, mid_code=mid)


def reduced_code_linearity_test(adc: SarAdc, center_code: Optional[int] = None,
                                span_codes: int = 64,
                                samples_per_code: int = 4) -> LinearityResult:
    """Reduced-code static linearity test.

    Measuring all 1024 codes with a fine ramp costs thousands of conversions;
    reduced-code techniques (e.g. Laraba et al., cited in the paper) measure a
    window of codes around the stress points instead.  The window is swept
    with ``samples_per_code`` points per LSB so that per-code DNL and missing
    codes are meaningful, at a fraction of the full-ramp cost.
    """
    if span_codes < 8:
        raise FunctionalTestError("span_codes must be at least 8")
    if samples_per_code < 2:
        raise FunctionalTestError("samples_per_code must be at least 2")
    mid = adc.dut.mid_code
    if center_code is None:
        center_code = mid
    design_lsb = adc.code_to_input(mid + 1) - adc.code_to_input(mid)
    low = adc.code_to_input(max(center_code - span_codes // 2, 1))
    high = adc.code_to_input(min(center_code + span_codes // 2,
                                 adc.dut.full_code - 1))
    n_points = span_codes * samples_per_code
    inputs = np.linspace(low, high, n_points)
    codes = np.asarray(adc.convert_many(inputs), dtype=int)
    curve = TransferCurve(inputs=inputs, codes=codes)
    return linearity_from_curve(curve, n_bits=adc.dut.resolution_bits,
                                design_lsb=design_lsb, mid_code=mid)
