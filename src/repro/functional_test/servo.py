"""Servo-loop measurement of individual code transition levels.

The servo (feedback) method measures the analog input level at which the
converter output toggles between two adjacent codes; it is the most accurate
static technique and also the slowest, since every transition needs a binary
search of analog levels, each step being one or more conversions.  It is used
here both as a reference for the faster ramp/histogram methods and in the
test-time comparison of experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import FunctionalTestError


@dataclass
class ServoMeasurement:
    """Measured transition level of one output code."""

    code: int
    level: float
    iterations: int
    conversions_used: int


def measure_transition(adc: SarAdc, code: int, tolerance: float = 1e-4,
                       max_iterations: int = 24) -> ServoMeasurement:
    """Binary-search the input level of the ``code-1 -> code`` transition."""
    if code <= 0 or code > adc.dut.full_code:
        raise FunctionalTestError(
            f"transition code must be within (0, {adc.dut.full_code}], "
            f"got {code}")
    low, high = adc.ideal_input_range()
    span = high - low
    lo, hi = low, high
    conversions = 0
    iterations = 0
    op = adc.operating_point(input_diff=0.0)
    while (hi - lo) > tolerance * span and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        observed = adc.convert(mid, op=op)
        conversions += 1
        iterations += 1
        if observed >= code:
            hi = mid
        else:
            lo = mid
    return ServoMeasurement(code=code, level=0.5 * (lo + hi),
                            iterations=iterations,
                            conversions_used=conversions)


def servo_linearity_probe(adc: SarAdc, codes: Sequence[int],
                          tolerance: float = 1e-4) -> Dict[int, ServoMeasurement]:
    """Measure a selected set of transitions (e.g. the major carrier codes)."""
    if not codes:
        raise FunctionalTestError("at least one code is required")
    return {int(code): measure_transition(adc, int(code), tolerance)
            for code in codes}


def major_transition_codes(n_bits: int = 10) -> List[int]:
    """The major-carry transitions (binary-weighted DAC stress points)."""
    return [2 ** k for k in range(n_bits - 1, 0, -1)] + [2 ** (n_bits - 1) + 1]
