"""Dynamic testing: SNDR / ENOB / SFDR from a coherently sampled sine wave.

A full-scale sine is converted, the fundamental is separated from noise and
distortion in the FFT (coherent sampling, so no windowing leakage), and the
usual dynamic metrics follow.  Used by the functional-BIST baseline to check
the ENOB specification of defective converters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..adc.sar_adc import SarAdc
from ..circuit.errors import FunctionalTestError
from .histogram import sine_samples


@dataclass
class DynamicResult:
    """Dynamic performance extracted from one coherent sine capture."""

    sndr_db: float
    enob_bits: float
    sfdr_db: float
    signal_power: float
    noise_power: float
    n_samples: int
    n_periods: int


def analyze_sine_capture(codes: np.ndarray, n_periods: int) -> DynamicResult:
    """Compute SNDR / ENOB / SFDR from captured output codes."""
    codes = np.asarray(codes, dtype=float)
    n = codes.size
    if n < 64:
        raise FunctionalTestError("at least 64 samples are required")
    if not 0 < n_periods < n // 2:
        raise FunctionalTestError("n_periods must be within (0, n_samples/2)")

    centred = codes - codes.mean()
    spectrum = np.fft.rfft(centred)
    power = (np.abs(spectrum) ** 2) / n
    power[0] = 0.0

    signal_power = float(power[n_periods])
    others = power.copy()
    others[n_periods] = 0.0
    noise_power = float(np.sum(others))
    if signal_power <= 0.0:
        # The fundamental is absent (e.g. a stuck converter): report a floor.
        return DynamicResult(sndr_db=0.0, enob_bits=0.0, sfdr_db=0.0,
                             signal_power=0.0, noise_power=noise_power,
                             n_samples=n, n_periods=n_periods)
    if noise_power <= 0.0:
        noise_power = 1e-12 * signal_power

    sndr = 10.0 * np.log10(signal_power / noise_power)
    enob = (sndr - 1.76) / 6.02
    spur = float(np.max(others[1:])) if others[1:].size else 0.0
    sfdr = 10.0 * np.log10(signal_power / spur) if spur > 0 else 120.0
    return DynamicResult(sndr_db=float(sndr), enob_bits=float(enob),
                         sfdr_db=float(sfdr), signal_power=signal_power,
                         noise_power=noise_power, n_samples=n,
                         n_periods=n_periods)


def sine_fit_test(adc: SarAdc, n_samples: int = 1024, n_periods: int = 7,
                  amplitude: Optional[float] = None) -> DynamicResult:
    """Convert a coherent sine with the (possibly defective) ADC and analyse it."""
    low, high = adc.ideal_input_range()
    full_amplitude = 0.5 * (high - low)
    amplitude = amplitude if amplitude is not None else 0.9 * full_amplitude
    mid = 0.5 * (high + low)
    stimulus = mid + sine_samples(amplitude, n_samples, n_periods)
    codes = np.asarray(adc.convert_many(stimulus), dtype=float)
    return analyze_sine_capture(codes, n_periods)
