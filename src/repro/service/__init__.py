"""Persistent campaign service: socket execution backend + daemon.

The engine of :mod:`repro.engine` runs one study per process: the CLI
compiles a StudySpec, opens a pool, executes the graph and exits, paying
interpreter startup, imports and pool creation on every invocation.  This
subpackage is the long-lived alternative for heavy traffic -- many
concurrent defect-coverage studies multiplexed onto one scheduler:

* :mod:`repro.service.protocol` -- the wire layer: length-prefixed pickle
  frames for the worker channel, newline-delimited JSON for the control
  channel, and ``unix:PATH`` / ``tcp:HOST:PORT`` address handling;
* :mod:`repro.service.socket_backend` -- :class:`SocketBackend`, an
  :class:`~repro.engine.backends.ExecutionBackend` that ships work items to
  a pool of *remote worker processes* over Unix-domain or TCP sockets.  The
  campaign context is shipped once per (worker connection, run); tasks then
  travel as bare items.  Workers heartbeat; a dead or hung worker's
  in-flight items are requeued onto the survivors, bit-identically to a
  serial run because every item carries its own seed material;
* :mod:`repro.service.worker` -- the ``repro-campaign worker --connect``
  loop executing tasks for a backend (or daemon) somewhere else;
* :mod:`repro.service.daemon` -- :class:`CampaignDaemon`, the
  ``repro-campaign serve`` process: accepts StudySpec submissions over a
  control socket, compiles them with the existing
  :func:`~repro.engine.spec.build_study`, multiplexes concurrent studies
  onto one shared scheduler with a shared warm
  :class:`~repro.engine.ResultCache` and a worker pool that persists
  *across* runs, streams per-study telemetry to attached clients and
  resumes submitted-but-unfinished studies from the cache after a crash;
* :mod:`repro.service.client` -- the ``submit`` / ``status`` / ``attach`` /
  ``cancel`` / ``shutdown`` client calls the CLI subcommands wrap.

The daemon's wire formats are deliberately boring: the control channel is
JSON lines (one request object in, one response object out; ``attach``
streams the study's existing JSONL telemetry schema), and the worker
channel reuses the engine's pickle protocol.  See ``docs/service.md``.
"""

from .client import (ServiceError, attach, cancel, ping, request, shutdown,
                     status, submit)
from .daemon import (CampaignDaemon, STATE_CANCELLED, STATE_DONE,
                     STATE_FAILED, STATE_QUEUED, STATE_RUNNING, StudyRecord)
from .protocol import (ProtocolError, connect, create_listener,
                       format_address, parse_address, recv_frame, send_frame)
from .socket_backend import SocketBackend
from .worker import run_worker

__all__ = [
    "CampaignDaemon", "ProtocolError", "ServiceError", "SocketBackend",
    "STATE_CANCELLED", "STATE_DONE", "STATE_FAILED", "STATE_QUEUED",
    "STATE_RUNNING", "StudyRecord", "attach", "cancel", "connect",
    "create_listener", "format_address", "parse_address", "ping",
    "recv_frame", "request", "run_worker", "send_frame", "shutdown",
    "status", "submit",
]
