"""Client side of the daemon's JSON-lines control protocol.

Each operation opens one connection to the daemon's control socket, sends
one request line and reads the response(s); :func:`attach` keeps its
connection open and yields the study's telemetry events as they stream.
The CLI subcommands (``repro-campaign submit/status/attach/cancel/
shutdown``) are thin wrappers over these functions, and they are equally
usable as a Python API::

    from repro.service import client
    study_id = client.submit("unix:.repro-service/control.sock",
                             spec.to_jsonable())["id"]
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional

from ..circuit.errors import EngineError
from .protocol import connect, read_json_line, send_json_line

__all__ = ["ServiceError", "attach", "cancel", "ping", "request",
           "shutdown", "status", "submit"]


class ServiceError(EngineError):
    """The daemon refused or could not complete a control request."""


def _open(address: str, timeout: Optional[float],
          retry_for: float) -> socket.socket:
    try:
        return connect(address, timeout=timeout, retry_for=retry_for)
    except (EngineError, OSError) as exc:
        raise ServiceError(
            f"cannot reach campaign daemon at {address!r}: {exc}; "
            "is `repro-campaign serve` running?") from exc


def _checked(response: Any, address: str) -> Dict[str, Any]:
    if response is None:
        raise ServiceError(
            f"campaign daemon at {address!r} closed the connection "
            "without answering")
    if not isinstance(response, dict):
        raise ServiceError(
            f"malformed response from campaign daemon: {response!r}")
    if not response.get("ok"):
        raise ServiceError(str(response.get("error", "request failed")))
    return response


def request(address: str, payload: Dict[str, Any],
            timeout: Optional[float] = 30.0,
            retry_for: float = 0.0) -> Dict[str, Any]:
    """One request/response round trip; raises :class:`ServiceError` on a
    refused request, a vanished daemon or a malformed answer.

    ``timeout`` bounds each socket operation (None = wait forever -- used
    by ``submit --wait``); ``retry_for`` keeps retrying the initial
    connection, for clients racing a daemon that is still starting up.
    """
    sock = _open(address, timeout, retry_for)
    try:
        send_json_line(sock, payload)
        with sock.makefile("rb") as stream:
            return _checked(read_json_line(stream), address)
    finally:
        sock.close()


def ping(address: str, timeout: Optional[float] = 5.0,
         retry_for: float = 0.0) -> Dict[str, Any]:
    """Probe the daemon; returns its worker count and worker socket."""
    return request(address, {"op": "ping"}, timeout=timeout,
                   retry_for=retry_for)


def submit(address: str, spec_jsonable: Dict[str, Any],
           wait: bool = False,
           timeout: Optional[float] = 30.0) -> Dict[str, Any]:
    """Submit a JSONable StudySpec; returns at least ``{"id", "state"}``.

    With ``wait=True`` the call blocks until the study reaches a terminal
    state and the response carries the full status including the study's
    result payload (``repro-campaign run --json`` schema) when it
    succeeded.
    """
    payload: Dict[str, Any] = {"op": "submit", "spec": spec_jsonable}
    if wait:
        payload["wait"] = True
        timeout = None  # the study may legitimately run for a long time
    return request(address, payload, timeout=timeout)


def status(address: str, study_id: Optional[str] = None,
           with_result: bool = False,
           timeout: Optional[float] = 30.0) -> Dict[str, Any]:
    """One study's status, or ``{"studies": [...]}`` for all of them."""
    payload: Dict[str, Any] = {"op": "status"}
    if study_id is not None:
        payload["id"] = study_id
        if with_result:
            payload["result"] = True
    return request(address, payload, timeout=timeout)


def cancel(address: str, study_id: str,
           timeout: Optional[float] = 30.0) -> Dict[str, Any]:
    """Request cooperative cancellation of one study."""
    return request(address, {"op": "cancel", "id": study_id},
                   timeout=timeout)


def shutdown(address: str, timeout: Optional[float] = 30.0) -> Dict[str, Any]:
    """Ask the daemon to stop; running studies persist for resume."""
    return request(address, {"op": "shutdown"}, timeout=timeout)


def attach(address: str, study_id: str,
           timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
    """Stream a study's telemetry events live.

    Yields the raw JSON objects from the study's trace (the
    ``JsonlTraceSink`` event schema -- feed them to
    ``TelemetryEvent.from_jsonable`` for typed access), followed by one
    ``{"done": True, "state": ..., "error": ...}`` line when the study
    reaches a terminal state.  The first line -- the acknowledgement --
    is consumed here, not yielded.
    """
    sock = _open(address, timeout, 0.0)
    try:
        send_json_line(sock, {"op": "attach", "id": study_id})
        with sock.makefile("rb") as stream:
            _checked(read_json_line(stream), address)
            while True:
                line = read_json_line(stream)
                if line is None:
                    return
                yield line
                if isinstance(line, dict) and line.get("done"):
                    return
    finally:
        sock.close()
