"""The persistent campaign daemon behind ``repro-campaign serve``.

One :class:`CampaignDaemon` process owns three long-lived resources the
per-invocation CLI pays for on every run:

* a warm :class:`~repro.engine.ResultCache` (namespace ``calibration``,
  the same namespace ``repro-campaign run``/``calibrate`` use, so daemon
  and CLI runs replay each other's artifacts);
* one shared execution backend -- a
  :class:`~repro.service.socket_backend.SocketBackend` whose remote worker
  processes persist **across** runs (or a
  :class:`~repro.engine.backends.SerialBackend` with ``serial=True``);
* the compiled Python state: imports, the stage registry, numpy.

Clients talk JSON lines over a control socket (see
:mod:`repro.service.client`): ``submit`` a StudySpec (compiled with the
existing :func:`~repro.engine.spec.build_study`, executed by up to
``max_concurrent`` runner threads multiplexed onto the one backend),
``status`` it, ``attach`` to its live telemetry stream (the run's
:class:`~repro.engine.JsonlTraceSink` JSONL schema, tailed with
:func:`~repro.engine.follow_trace`), ``cancel`` it (the engine's
cooperative-stop probe), or ``shutdown`` the daemon.

Durability: every study persists its spec, a small state record, its
telemetry trace and (when finished) its result payload under
``state_dir/studies/``.  A daemon that crashes or is killed mid-study
re-queues every submitted-but-unfinished study on restart; since completed
tasks live in the shared cache, the resumed run replays the finished
prefix from cache and only executes what was still missing.
"""

from __future__ import annotations

import json
import os
import queue
import re
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..circuit.errors import EngineError, ReproError
from ..engine import (JsonlTraceSink, ResultCache, TelemetryBus,
                      follow_trace)
from .protocol import (ProtocolError, create_listener, read_json_line,
                       send_json_line)
from .socket_backend import SocketBackend

__all__ = [
    "CampaignDaemon", "STATE_CANCELLED", "STATE_DONE", "STATE_FAILED",
    "STATE_QUEUED", "STATE_RUNNING", "StudyRecord",
]

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: States a study never leaves.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED, STATE_CANCELLED})

_ID_RE = re.compile(r"^s(\d+)")
_SLUG_RE = re.compile(r"[^a-z0-9-]+")


@dataclass
class StudyRecord:
    """One submitted study's lifecycle state (persisted as ``.meta.json``)."""

    study_id: str
    name: str
    state: str = STATE_QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    #: Set when the study reaches a terminal state (``submit --wait``).
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False, compare=False)

    def to_jsonable(self) -> Dict[str, Any]:
        return {"id": self.study_id, "name": self.name, "state": self.state,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at, "error": self.error,
                "cancel_requested": self.cancel_requested}

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "StudyRecord":
        record = cls(study_id=data["id"], name=data.get("name", ""),
                     state=data.get("state", STATE_QUEUED),
                     submitted_at=data.get("submitted_at", 0.0),
                     started_at=data.get("started_at"),
                     finished_at=data.get("finished_at"),
                     error=data.get("error"),
                     cancel_requested=bool(data.get("cancel_requested")))
        if record.state in TERMINAL_STATES:
            record.done_event.set()
        return record


class _AttachStop:
    """``follow_trace`` stop probe: fires when the study is terminal (its
    writer is gone, so the drained trace is complete) or the daemon is
    shutting down."""

    def __init__(self, daemon: "CampaignDaemon", record: StudyRecord) -> None:
        self._daemon = daemon
        self._record = record

    def is_set(self) -> bool:
        return self._daemon._stopping.is_set() or \
            self._record.state in TERMINAL_STATES


class CampaignDaemon:
    """Long-lived multi-study campaign service.

    Parameters
    ----------
    state_dir:
        Root of everything persistent: study records, traces, results, the
        shared cache and the default socket paths.
    control:
        Control-socket address (``unix:``/``tcp:`` spec); defaults to
        ``unix:<state_dir>/control.sock``.  The resolved address is
        :attr:`control_address`.
    worker_socket:
        Where the socket backend listens for workers; defaults to
        ``unix:<state_dir>/workers.sock``.  Ignored with ``serial=True``.
    spawn_workers:
        Local worker subprocesses to launch immediately (they persist
        across runs; more can connect at any time).
    serial:
        Execute studies in-process on a :class:`SerialBackend` instead of
        the socket backend -- no worker management, same control protocol.
        This is also the fallback scheduler for tests and single-machine
        benchmarking of the warm-cache path.
    max_concurrent:
        Runner threads, i.e. studies executing simultaneously on the
        shared backend.
    cache_max_bytes / cache_max_age:
        Bounds of the shared result cache (see
        :class:`~repro.engine.ResultCache`).
    """

    def __init__(self, state_dir: str,
                 control: Optional[str] = None,
                 worker_socket: Optional[str] = None,
                 spawn_workers: int = 0,
                 serial: bool = False,
                 max_concurrent: int = 2,
                 cache_max_bytes: Optional[int] = None,
                 cache_max_age: Optional[float] = None,
                 task_timeout: Optional[float] = None) -> None:
        if max_concurrent < 1:
            raise EngineError(
                "max_concurrent must be >= 1, got %d" % max_concurrent)
        self.state_dir = os.path.abspath(state_dir)
        self.studies_dir = os.path.join(self.state_dir, "studies")
        os.makedirs(self.studies_dir, exist_ok=True)
        self.cache = ResultCache(os.path.join(self.state_dir, "cache"),
                                 namespace="calibration",
                                 max_bytes=cache_max_bytes,
                                 max_age=cache_max_age)
        if serial:
            from ..engine import SerialBackend
            self.backend: Any = SerialBackend()
            self.worker_address: Optional[str] = None
        else:
            self.backend = SocketBackend(
                worker_socket or
                "unix:%s" % os.path.join(self.state_dir, "workers.sock"),
                spawn_workers=spawn_workers,
                task_timeout=task_timeout)
            self.worker_address = self.backend.address

        self._lock = threading.Lock()
        self._records: Dict[str, StudyRecord] = {}
        self._next_serial = 0
        self._run_queue: "queue.Queue[str]" = queue.Queue()
        self._stopping = threading.Event()

        try:
            self._listener, self.control_address = create_listener(
                control or
                "unix:%s" % os.path.join(self.state_dir, "control.sock"))
        except BaseException:
            self._close_backend()
            raise

        self._resume_unfinished()

        self._threads = [threading.Thread(target=self._accept_loop,
                                          name="daemon-control",
                                          daemon=True)]
        self._threads += [threading.Thread(target=self._runner_loop,
                                           name="daemon-runner-%d" % i,
                                           daemon=True)
                          for i in range(max_concurrent)]
        for thread in self._threads:
            thread.start()

    # --------------------------------------------------------------- layout
    def _spec_path(self, study_id: str) -> str:
        return os.path.join(self.studies_dir, study_id + ".spec.json")

    def _meta_path(self, study_id: str) -> str:
        return os.path.join(self.studies_dir, study_id + ".meta.json")

    def trace_path(self, study_id: str) -> str:
        return os.path.join(self.studies_dir, study_id + ".trace.jsonl")

    def result_path(self, study_id: str) -> str:
        return os.path.join(self.studies_dir, study_id + ".result.json")

    def _write_json(self, path: str, payload: Any) -> None:
        """Atomic JSON write, so a killed daemon never leaves torn state."""
        fd, tmp_path = tempfile.mkstemp(dir=self.studies_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _persist(self, record: StudyRecord) -> None:
        self._write_json(self._meta_path(record.study_id),
                         record.to_jsonable())

    # --------------------------------------------------------------- resume
    def _resume_unfinished(self) -> None:
        """Reload persisted records; re-queue everything non-terminal.

        The resumed run recompiles the spec and replays every task already
        in the shared cache, so only the unfinished suffix re-executes.
        """
        for filename in sorted(os.listdir(self.studies_dir)):
            if not filename.endswith(".meta.json"):
                continue
            try:
                with open(os.path.join(self.studies_dir, filename),
                          encoding="utf-8") as handle:
                    record = StudyRecord.from_jsonable(json.load(handle))
            except (OSError, ValueError, KeyError):
                continue  # torn or foreign file; never fatal on startup
            match = _ID_RE.match(record.study_id)
            if match:
                self._next_serial = max(self._next_serial,
                                        int(match.group(1)))
            self._records[record.study_id] = record
        for study_id in sorted(self._records,
                               key=lambda sid:
                               self._records[sid].submitted_at):
            record = self._records[study_id]
            if record.state in TERMINAL_STATES:
                continue
            record.state = STATE_QUEUED
            record.started_at = None
            self._persist(record)
            self._run_queue.put(study_id)

    # --------------------------------------------------------------- submit
    def submit(self, spec_jsonable: Dict[str, Any]) -> str:
        """Queue one study (already-validated JSONable spec); return its id."""
        from ..engine import StudySpec
        spec = StudySpec.from_jsonable(spec_jsonable).validated()
        slug = _SLUG_RE.sub("-", spec.name.lower()).strip("-") or "study"
        with self._lock:
            if self._stopping.is_set():
                raise EngineError("daemon is shutting down")
            self._next_serial += 1
            study_id = "s%04d-%s" % (self._next_serial, slug)
            record = StudyRecord(study_id=study_id, name=spec.name,
                                 submitted_at=time.time())
            self._records[study_id] = record
        self._write_json(self._spec_path(study_id), spec.to_jsonable())
        self._persist(record)
        self._run_queue.put(study_id)
        return study_id

    def record(self, study_id: str) -> StudyRecord:
        with self._lock:
            try:
                return self._records[study_id]
            except KeyError:
                raise EngineError("unknown study id %r" % study_id) from None

    def records(self) -> List[StudyRecord]:
        with self._lock:
            return sorted(self._records.values(),
                          key=lambda r: r.submitted_at)

    def cancel(self, study_id: str) -> str:
        """Request cooperative cancellation; return the state seen."""
        record = self.record(study_id)
        with self._lock:
            record.cancel_requested = True
            state = record.state
        self._persist(record)
        return state

    def wait(self, study_id: str,
             timeout: Optional[float] = None) -> StudyRecord:
        record = self.record(study_id)
        record.done_event.wait(timeout)
        return record

    # --------------------------------------------------------------- runner
    def _runner_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                study_id = self._run_queue.get(timeout=0.2)
            except queue.Empty:
                continue
            record = self._records.get(study_id)
            if record is None or record.state != STATE_QUEUED:
                continue
            if record.cancel_requested:
                self._finish(record, STATE_CANCELLED)
                continue
            self._execute(record)

    def _execute(self, record: StudyRecord) -> None:
        from ..engine import StudySpec, build_study
        from ..engine.cli import study_payload

        with self._lock:
            record.state = STATE_RUNNING
            record.started_at = time.time()
        self._persist(record)
        try:
            with open(self._spec_path(record.study_id),
                      encoding="utf-8") as handle:
                spec = StudySpec.from_jsonable(json.load(handle))
            plan = build_study(spec)
            # A resumed study may leave a partial trace behind; the sink
            # appends, so start each attempt from a clean file.
            try:
                os.unlink(self.trace_path(record.study_id))
            except OSError:
                pass
            bus = TelemetryBus(
                [JsonlTraceSink(self.trace_path(record.study_id))])
            try:
                outcome = plan.run(
                    backend=self.backend, cache=self.cache, telemetry=bus,
                    cancel=lambda: (record.cancel_requested or
                                    self._stopping.is_set()))
            finally:
                bus.close()
        except ReproError as exc:
            self._conclude_failed(record, str(exc))
            return
        except Exception as exc:  # a bug, not a study problem -- still record
            self._conclude_failed(record,
                                  "%s: %s" % (type(exc).__name__, exc))
            return
        if self._stopping.is_set() and not record.cancel_requested:
            # Shutdown interrupted the run: leave it non-terminal so the
            # next daemon resumes it from the cache.
            with self._lock:
                record.state = STATE_QUEUED
                record.started_at = None
            self._persist(record)
            return
        if record.cancel_requested or outcome.pipeline.run.cancelled:
            self._finish(record, STATE_CANCELLED)
            return
        self._write_json(self.result_path(record.study_id),
                         study_payload(spec, plan, outcome,
                                       workers=self.backend.workers))
        self._finish(record, STATE_DONE)

    def _conclude_failed(self, record: StudyRecord, error: str) -> None:
        if record.cancel_requested:
            # A cancelled run may surface as an assembly/engine error;
            # the user asked for the stop, so report "cancelled".
            self._finish(record, STATE_CANCELLED)
            return
        if self._stopping.is_set():
            with self._lock:
                record.state = STATE_QUEUED
                record.started_at = None
            self._persist(record)
            return
        record.error = error
        self._finish(record, STATE_FAILED)

    def _finish(self, record: StudyRecord, state: str) -> None:
        with self._lock:
            record.state = state
            record.finished_at = time.time()
        self._persist(record)
        record.done_event.set()

    # -------------------------------------------------------------- control
    def _accept_loop(self) -> None:
        # Polling accept: closing a listener does not reliably wake a
        # thread blocked in accept(), so a blocking loop would stall
        # close() for its whole join timeout.
        self._listener.settimeout(0.25)
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            if self._stopping.is_set():
                sock.close()
                return
            sock.settimeout(None)  # control reads block; see _handle_control
            threading.Thread(target=self._handle_control, args=(sock,),
                             name="daemon-control-conn", daemon=True).start()

    def _handle_control(self, sock: socket.socket) -> None:
        stream = sock.makefile("rb")
        try:
            request = read_json_line(stream)
            if not isinstance(request, dict):
                return
            try:
                self._dispatch(sock, request)
            except ReproError as exc:
                send_json_line(sock, {"ok": False, "error": str(exc)})
            except Exception as exc:
                send_json_line(sock, {
                    "ok": False,
                    "error": "%s: %s" % (type(exc).__name__, exc)})
        except (ProtocolError, OSError):
            pass  # client vanished or sent garbage; drop the connection
        finally:
            try:
                stream.close()
                sock.close()
            except OSError:
                pass

    def _dispatch(self, sock: socket.socket,
                  request: Dict[str, Any]) -> None:
        op = request.get("op")
        if op == "ping":
            send_json_line(sock, {"ok": True, "pong": True,
                                  "workers": self.backend.workers,
                                  "worker_socket": self.worker_address})
        elif op == "submit":
            spec = request.get("spec")
            if not isinstance(spec, dict):
                raise EngineError("submit needs a JSON study spec")
            study_id = self.submit(spec)
            if request.get("wait"):
                record = self.wait(study_id)
                send_json_line(sock, {"ok": True, "id": study_id,
                                      **self._status_of(record,
                                                        with_result=True)})
            else:
                send_json_line(sock, {"ok": True, "id": study_id,
                                      "state": STATE_QUEUED})
        elif op == "status":
            study_id = request.get("id")
            if study_id:
                payload = self._status_of(self.record(study_id),
                                          with_result=bool(
                                              request.get("result")))
                send_json_line(sock, {"ok": True, **payload})
            else:
                send_json_line(sock, {
                    "ok": True,
                    "studies": [self._status_of(r) for r in self.records()]})
        elif op == "attach":
            self._attach(sock, self.record(str(request.get("id"))))
        elif op == "cancel":
            state = self.cancel(str(request.get("id")))
            send_json_line(sock, {"ok": True, "id": request.get("id"),
                                  "state": state})
        elif op == "shutdown":
            send_json_line(sock, {"ok": True, "stopping": True})
            self._stopping.set()
        else:
            raise EngineError("unknown control op %r" % op)

    def _status_of(self, record: StudyRecord,
                   with_result: bool = False) -> Dict[str, Any]:
        payload = record.to_jsonable()
        payload["trace"] = self.trace_path(record.study_id)
        result_path = self.result_path(record.study_id)
        payload["result_path"] = result_path \
            if os.path.exists(result_path) else None
        if with_result and payload["result_path"]:
            with open(result_path, encoding="utf-8") as handle:
                payload["result"] = json.load(handle)
        elif with_result:
            payload["result"] = None
        return payload

    def _attach(self, sock: socket.socket, record: StudyRecord) -> None:
        """Stream the study's telemetry events live, then a done line.

        Each line is one :class:`~repro.engine.TelemetryEvent` in the
        existing JSONL trace schema -- attach *is* a remote
        ``JsonlTraceSink`` consumer.
        """
        send_json_line(sock, {"ok": True, "id": record.study_id,
                              "state": record.state})
        stop = _AttachStop(self, record)
        try:
            for event in follow_trace(self.trace_path(record.study_id),
                                      stop=stop):
                send_json_line(sock, event.to_jsonable())
        except OSError:
            return  # client went away mid-stream
        # The record may flip terminal between the last event and here;
        # give the state a moment to settle so the done line is accurate.
        record.done_event.wait(timeout=5.0)
        try:
            send_json_line(sock, {"done": True, "state": record.state,
                                  "error": record.error})
        except OSError:
            pass

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until ``shutdown`` or SIGTERM/SIGINT, then clean up."""
        if install_signals:
            def _stop_signal(signum: int, frame: Any) -> None:
                self._stopping.set()
            try:
                signal.signal(signal.SIGTERM, _stop_signal)
                signal.signal(signal.SIGINT, _stop_signal)
            except ValueError:
                pass  # not the main thread (embedded/test usage)
        try:
            self._stopping.wait()
        finally:
            self.close()

    def request_stop(self) -> None:
        self._stopping.set()

    def _close_backend(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        """Stop accepting, stop the backend, release the sockets.

        Running studies are interrupted cooperatively and persisted as
        ``queued`` so the next daemon resumes them; nothing is lost because
        completed tasks already live in the cache.
        """
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self.control_address.startswith("unix:"):
            try:
                os.unlink(self.control_address[len("unix:"):])
            except OSError:
                pass
        # Let runner threads notice the stop and persist their records.
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        self._close_backend()

    def __enter__(self) -> "CampaignDaemon":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
