"""Wire protocol for the campaign service.

Two channels, two encodings:

* the **worker channel** carries pickled engine objects (work items, task
  results, the shipped campaign context) as length-prefixed frames --
  an 8-byte little-endian payload length followed by the pickle bytes,
  mirroring the header layout of
  :class:`repro.engine.backends._SharedObject`;
* the **control channel** carries newline-delimited JSON: one request
  object per line from the client, one (or, for ``attach``, many)
  response objects per line from the daemon.  JSON keeps the control
  plane inspectable with ``nc``/``socat`` and safe to expose beyond the
  local user.

Addresses are written ``unix:/path/to.sock`` or ``tcp:HOST:PORT``; a
bare path is treated as a Unix-domain socket for convenience.
"""

from __future__ import annotations

import errno
import json
import os
import pickle
import socket
import struct
import time
from typing import Any, Optional, Tuple

from ..circuit.errors import EngineError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "connect",
    "create_listener",
    "encode_frame",
    "format_address",
    "parse_address",
    "read_json_line",
    "recv_frame",
    "send_frame",
    "send_json_line",
]

#: Bumped when the frame or control schema changes incompatibly.  Workers
#: and clients send their version in the hello/request; the server side
#: rejects mismatches instead of mis-parsing them.
PROTOCOL_VERSION = 1

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Frame header: payload length as an unsigned 64-bit little-endian int.
_HEADER = struct.Struct("<Q")

#: Upper bound on a single frame, as a guard against a corrupted or
#: malicious header asking us to allocate petabytes.  1 GiB comfortably
#: fits any shipped campaign context seen in practice.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(EngineError):
    """A malformed or truncated message on a service socket."""


# ---------------------------------------------------------------------------
# Pickle frames (worker channel)
# ---------------------------------------------------------------------------

def encode_frame(obj: Any) -> bytes:
    """Serialize *obj* into a single length-prefixed frame.

    Raises :class:`ProtocolError` when *obj* cannot be pickled -- the
    same contract the pool backends enforce on shipped payloads, surfaced
    as an engine error instead of a raw pickle exception.
    """

    try:
        payload = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
    except Exception as exc:
        raise ProtocolError(
            f"cannot pickle service message {type(obj).__name__}: "
            f"{exc}") from exc
    return _HEADER.pack(len(payload)) + payload


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle *obj* and write it as one frame.

    Callers that share a socket between threads must serialize sends
    themselves (the backend keeps a per-connection send lock).
    """

    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes.

    Returns None on EOF *before the first byte* (a clean close at a frame
    boundary); raises :class:`ProtocolError` on EOF mid-buffer, which can
    only mean the peer died with a frame half-written.
    """

    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ProtocolError(
                "socket closed mid-frame (%d of %d bytes missing)"
                % (remaining, n)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame and unpickle it.

    Returns None when the peer closed the connection cleanly between
    frames.  (None is never a legal frame payload: every service message
    is a tuple.)  Raises :class:`ProtocolError` for truncated frames or
    absurd lengths.
    """

    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame length %d exceeds the %d-byte cap; stream is corrupt"
            % (length, MAX_FRAME_BYTES)
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("socket closed between frame header and payload")
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# JSON lines (control channel)
# ---------------------------------------------------------------------------

def send_json_line(sock: socket.socket, obj: Any) -> None:
    """Write *obj* as one newline-terminated JSON document."""

    data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    sock.sendall(data)


def read_json_line(stream) -> Optional[Any]:
    """Read one JSON document from a file-like line stream.

    *stream* is a ``sock.makefile("rb")`` handle.  Returns None on EOF;
    raises :class:`ProtocolError` on undecodable lines.
    """

    line = stream.readline()
    if not line:
        return None
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ProtocolError("undecodable control line: %r" % line[:200]) from exc


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def parse_address(spec: str) -> Tuple[int, Any]:
    """Parse ``unix:PATH`` / ``tcp:HOST:PORT`` / bare path into
    ``(family, sockaddr)``."""

    if not isinstance(spec, str) or not spec.strip():
        raise EngineError("empty socket address")
    spec = spec.strip()
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise EngineError("unix: address needs a path")
        return socket.AF_UNIX, path
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise EngineError(
                "tcp: address must be tcp:HOST:PORT, got %r" % spec
            )
        try:
            return socket.AF_INET, (host, int(port))
        except ValueError:
            raise EngineError("tcp: port must be an integer, got %r" % port)
    # Bare path convenience: "run/workers.sock" == "unix:run/workers.sock".
    return socket.AF_UNIX, spec


def format_address(family: int, sockaddr: Any) -> str:
    """Inverse of :func:`parse_address`, for logs and CLI output."""

    if family == socket.AF_UNIX:
        return "unix:%s" % sockaddr
    host, port = sockaddr[0], sockaddr[1]
    return "tcp:%s:%d" % (host, port)


def create_listener(spec: str, backlog: int = 32) -> Tuple[socket.socket, str]:
    """Bind and listen on *spec*.

    Returns ``(listener, resolved_spec)``.  For Unix sockets a stale
    socket file from a dead process is removed before binding (a live
    listener is detected by a successful connect and refused).  For TCP,
    port 0 is resolved to the kernel-assigned port in the returned spec.
    """

    family, sockaddr = parse_address(spec)
    if family == socket.AF_UNIX:
        if os.path.exists(sockaddr):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(sockaddr)
            except OSError:
                os.unlink(sockaddr)  # stale leftover from a dead process
            else:
                probe.close()
                raise EngineError(
                    "address %s is already in use by a live process" % spec
                )
            finally:
                probe.close()
        parent = os.path.dirname(sockaddr)
        if parent:
            os.makedirs(parent, exist_ok=True)
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        if family != socket.AF_UNIX:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(sockaddr)
        sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock, format_address(family, sock.getsockname())


def connect(
    spec: str,
    timeout: Optional[float] = None,
    retry_for: float = 0.0,
) -> socket.socket:
    """Connect to *spec*, optionally retrying for *retry_for* seconds.

    Retrying covers the worker-starts-before-the-listener race without
    callers hand-rolling sleep loops.  *timeout* applies to the returned
    socket's subsequent blocking calls (None = block forever).
    """

    family, sockaddr = parse_address(spec)
    deadline = time.monotonic() + retry_for
    while True:
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.connect(sockaddr)
        except OSError as exc:
            sock.close()
            transient = exc.errno in (
                errno.ECONNREFUSED, errno.ENOENT, errno.EAGAIN
            )
            if transient and time.monotonic() < deadline:
                time.sleep(0.05)
                continue
            raise EngineError(
                "cannot connect to %s: %s" % (spec, exc)
            ) from exc
        sock.settimeout(timeout)
        return sock
